"""Tests for the chaos-testing subsystem (repro.chaos)."""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    DEFAULT_ZOO,
    ChaosSchedule,
    FaultEvent,
    ensure_fixture_registered,
    generate_schedule,
    is_fixture,
    load_artifact,
    replay_artifact,
    run_chaos_campaign,
    run_schedule,
    shrink_failure,
    write_artifact,
)
from repro.core.registry import available_schedulers, make_scheduler
from repro.experiments import ACCEPTS_SEED, REGISTRY
from repro.experiments.campaign import run_campaign


# ---------------------------------------------------------------------------
# Schedule generation
# ---------------------------------------------------------------------------


def test_generate_schedule_is_pure_function_of_seed():
    a = generate_schedule(42)
    b = generate_schedule(42)
    assert a.to_payload() == b.to_payload()
    assert generate_schedule(43).to_payload() != a.to_payload()


def test_schedule_payload_roundtrip_lossless():
    schedule = generate_schedule(7)
    clone = ChaosSchedule.from_payload(
        json.loads(json.dumps(schedule.to_payload()))
    )
    assert clone.to_payload() == schedule.to_payload()
    assert clone == schedule


def test_generated_schedules_are_well_formed():
    for seed in range(10):
        schedule = generate_schedule(seed)
        assert 2 <= len(schedule.flows) <= 4
        assert schedule.flows[0].start == 0.0
        assert all(f.start > 0.0 for f in schedule.flows[1:])
        assert schedule.events == sorted(
            schedule.events, key=lambda e: (e.at, e.kind)
        )
        assert schedule.events_of("stall"), "every schedule has stalls"
        assert schedule.events_of("outage"), "every schedule has outages"
        # outages never overlap each other
        outages = schedule.events_of("outage")
        for first, second in zip(outages, outages[1:]):
            assert float(first.params["up"]) < second.at


def test_fault_event_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultEvent("meteor", 1.0)
    with pytest.raises(ValueError):
        ChaosSchedule.from_payload({"schema": "something-else/9"})
    with pytest.raises(ValueError):
        generate_schedule(0, duration=0.0)


def test_schedule_replace_does_not_share_lists():
    schedule = generate_schedule(0)
    copy = schedule.replace(duration=1.0)
    copy.events.pop()
    assert len(schedule.events) == len(copy.events) + 1
    assert copy.duration == 1.0
    assert copy.seed == schedule.seed


# ---------------------------------------------------------------------------
# Runner: stock zoo is clean, fixtures are caught
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["SFQ", "SCFQ", "WF2Q", "FIFO"])
def test_stock_zoo_runs_clean(algorithm):
    for seed in (0, 1):
        report = run_schedule(generate_schedule(seed), algorithm)
        assert report.ok, report.violations[:1]
        assert report.transmitted > 0
        assert report.algorithm == algorithm


def test_sfq_fairness_strictly_checked_without_reweights():
    # Schedules without reweight events check Theorem 1 with
    # bound_factor=1.0 on SFQ; schedules with reweights must not.
    seen = set()
    for seed in range(12):
        schedule = generate_schedule(seed)
        report = run_schedule(schedule, "SFQ")
        assert report.ok
        has_reweight = bool(schedule.events_of("reweight"))
        assert report.fairness_checked == (not has_reweight)
        seen.add(has_reweight)
    assert seen == {True, False}, "generator should mix both regimes"


def test_broken_sfq_fixture_is_caught():
    assert is_fixture("BrokenSFQ") and not is_fixture("SFQ")
    report = run_schedule(generate_schedule(0), "BrokenSFQ")
    assert not report.ok
    assert report.first_violation("virtual-time") is not None


def test_fixture_registration_on_demand_and_idempotent():
    assert ensure_fixture_registered("SFQ") is False
    assert ensure_fixture_registered("BrokenSFQ") is True
    assert ensure_fixture_registered("BrokenSFQ") is True  # no re-register
    assert "BrokenSFQ" in available_schedulers()
    scheduler = make_scheduler("BrokenSFQ", capacity=1e6, auto_register=False)
    assert scheduler.algorithm == "BrokenSFQ"


def test_chaos_run_is_deterministic():
    schedule = generate_schedule(5)
    a = run_schedule(schedule, "SFQ")
    b = run_schedule(schedule, "SFQ")
    assert (a.transmitted, a.dropped, a.max_gap, a.counts) == (
        b.transmitted, b.dropped, b.max_gap, b.counts
    )


# ---------------------------------------------------------------------------
# Shrinker + artifacts
# ---------------------------------------------------------------------------


def test_shrink_refuses_passing_schedule():
    with pytest.raises(ValueError):
        shrink_failure(generate_schedule(0), "SFQ")


def test_shrink_minimizes_broken_sfq_failure(tmp_path):
    schedule = generate_schedule(0)
    result = shrink_failure(schedule, "BrokenSFQ")
    assert result.invariant == "virtual-time"
    # Acceptance bound: the reproducer keeps at most 20% of the events.
    assert result.minimized_events <= 0.2 * max(1, result.original_events)
    assert result.minimized_flows <= result.original_flows
    assert result.schedule.duration <= schedule.duration
    # Shrinking is itself deterministic.
    again = shrink_failure(schedule, "BrokenSFQ")
    assert again.schedule.to_payload() == result.schedule.to_payload()
    assert again.violation == result.violation

    path = write_artifact(result, tmp_path / "repro.json")
    payload = load_artifact(path)
    assert payload["schema"] == "chaos-repro/1"
    outcome = replay_artifact(path)
    assert outcome.reproduced and outcome.exact


def test_load_artifact_rejects_unknown_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "chaos-repro/999"}))
    with pytest.raises(ValueError):
        load_artifact(bad)


def test_committed_known_bad_artifact_replays(tmp_path):
    # The repository ships a minimized BrokenSFQ reproducer; replay must
    # reproduce the recorded invariant violation (CI runs this too).
    from pathlib import Path

    artifact = Path(__file__).parent / "reference" / "chaos" / "known_bad.json"
    outcome = replay_artifact(artifact)
    assert outcome.reproduced
    assert outcome.artifact["algorithm"] == "BrokenSFQ"
    assert outcome.artifact["invariant"] == "virtual-time"


# ---------------------------------------------------------------------------
# Campaign mode
# ---------------------------------------------------------------------------


def test_chaos_registered_as_experiment():
    assert REGISTRY["chaos"] == "repro.chaos.experiment:run_chaos_case"
    assert "chaos" in ACCEPTS_SEED


def test_chaos_campaign_clean_zoo_and_jobs_identical(tmp_path):
    def run(jobs, where):
        result = run_chaos_campaign(
            ["SFQ", "FIFO"], seeds=2, jobs=jobs, cache=False,
            results_dir=str(where),
        )
        assert result.ok, result.describe()
        return [o.result.to_payload() for o in result.campaign.outcomes]

    serial = run(1, tmp_path / "j1")
    parallel = run(2, tmp_path / "j2")
    assert serial == parallel
    assert run(1, tmp_path / "j1b") == serial  # re-run, same seed grid


def test_chaos_campaign_catches_and_shrinks_fixture(tmp_path):
    result = run_chaos_campaign(
        ["BrokenSFQ"], seeds=1, jobs=1, cache=False,
        results_dir=str(tmp_path),
    )
    assert not result.ok
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.invariant == "virtual-time"
    assert failure.artifact is not None and failure.artifact.exists()
    assert failure.shrink_events <= 0.2 * max(1, failure.original_events)
    outcome = replay_artifact(failure.artifact)
    assert outcome.reproduced


def test_chaos_campaign_no_shrink_mode(tmp_path):
    result = run_chaos_campaign(
        ["BrokenSFQ"], seeds=1, jobs=1, cache=False, shrink=False,
        results_dir=str(tmp_path),
    )
    assert not result.ok
    assert result.failures[0].artifact is None
    assert not (tmp_path / "chaos").exists()


def test_default_zoo_names_are_registered():
    registered = available_schedulers()
    for name in DEFAULT_ZOO:
        assert name in registered


# ---------------------------------------------------------------------------
# Composed-injector determinism (outage + churn + packet faults at once)
# ---------------------------------------------------------------------------


def test_composed_faults_bit_identical_across_jobs_and_reruns():
    targets = {"composed": "repro.chaos.experiment:run_composed_faults"}
    accepts = frozenset({"composed"})

    def digests(jobs):
        campaign = run_campaign(
            ["composed"], seeds=3, jobs=jobs, cache=False,
            targets=targets, accepts_seed=accepts,
        )
        assert campaign.stats["failed"] == 0
        return [o.result.data["trace_digest"] for o in campaign.outcomes]

    serial = digests(1)
    assert digests(4) == serial  # worker count cannot leak into traces
    assert digests(1) == serial  # re-run with the same seed grid
    assert len(set(serial)) == 3  # distinct seeds give distinct traces


def test_composed_faults_exercise_every_injector():
    from repro.chaos.experiment import run_composed_faults

    result = run_composed_faults(seed=0)
    row = dict(zip(result.headers, result.rows[0]))
    assert row["outages"] > 0
    assert row["joins"] > 0
    assert row["lost"] > 0
    assert row["reordered"] > 0
    assert result.data["violations"] == []
