"""Tests for the WF2Q extension baseline."""

from __future__ import annotations

import pytest

from tests.helpers import drive_greedy, run_schedule, service_order
from repro.analysis.fairness import empirical_fairness_measure, sfq_fairness_bound
from repro.core import Packet
from repro.core.wf2q import WF2Q
from repro.servers import ConstantCapacity


def test_wf2q_weighted_shares():
    link = drive_greedy(
        WF2Q(assumed_capacity=3000.0),
        ConstantCapacity(3000.0),
        [("a", 1000.0, 100, 600), ("b", 2000.0, 100, 600)],
        until=10.0,
    )
    wa = link.tracer.work_in_interval("a", 0, 10)
    wb = link.tracer.work_in_interval("b", 0, 10)
    assert wb / wa == pytest.approx(2.0, rel=0.05)


def test_wf2q_eligibility_blocks_ahead_of_schedule_packets():
    """WF2Q's defining behaviour: a flow's *second* packet is not
    eligible until the fluid system would have started it, even if its
    finish tag is the global minimum."""
    wf2q = WF2Q(assumed_capacity=100.0)
    wf2q.add_flow("fast", 90.0)
    wf2q.add_flow("slow", 10.0)
    # Both flows burst at t=0. fast's packets: S=0,F=1.11; S=1.11,F=2.22...
    # slow's packet: S=0, F=10.
    for i in range(3):
        wf2q.enqueue(Packet("fast", 100, seqno=i), 0.0)
    wf2q.enqueue(Packet("slow", 100, seqno=0), 0.0)
    first = wf2q.dequeue(0.0)
    assert first.flow == "fast"  # F=1.11 < 10, eligible (S=0 <= v=0)
    # At t=0 (no wall time elapsed) v is still ~0: fast's second packet
    # (S=1.11) is NOT eligible, so slow (S=0, F=10) must be served even
    # though its finish tag is larger — WFQ would pick fast again.
    second = wf2q.dequeue(0.0)
    assert second.flow == "slow"


def test_wfq_would_reorder_where_wf2q_does_not():
    from repro.core import WFQ

    wfq = WFQ(assumed_capacity=100.0)
    wfq.add_flow("fast", 90.0)
    wfq.add_flow("slow", 10.0)
    for i in range(3):
        wfq.enqueue(Packet("fast", 100, seqno=i), 0.0)
    wfq.enqueue(Packet("slow", 100, seqno=0), 0.0)
    wfq.dequeue(0.0)
    assert wfq.dequeue(0.0).flow == "fast"  # WFQ bursts the fast flow


def test_wf2q_fairness_within_sfq_bound_constant_rate():
    link = drive_greedy(
        WF2Q(assumed_capacity=2000.0),
        ConstantCapacity(2000.0),
        [("f", 1000.0, 400, 200), ("m", 500.0, 250, 200)],
    )
    h = empirical_fairness_measure(link.tracer, "f", "m", 1000.0, 500.0)
    assert h <= sfq_fairness_bound(400, 1000.0, 250, 500.0) + 1e-9


def test_wf2q_work_conserving_fallback():
    # Real server faster than the assumed capacity: packets may become
    # servable before the fluid system reaches them; the scheduler must
    # still hand one out (never idle while backlogged).
    link = drive_greedy(
        WF2Q(assumed_capacity=100.0),  # 10x slower than reality
        ConstantCapacity(1000.0),
        [("a", 50.0, 100, 50), ("b", 50.0, 100, 50)],
    )
    assert len(link.tracer.departed()) == 100
    # Strictly serialized, no idling: total time = 100 * 0.1s.
    last = max(r.departure for r in link.tracer.departed())
    assert last == pytest.approx(10.0)


def test_wf2q_per_flow_fifo():
    link = run_schedule(
        WF2Q(assumed_capacity=1000.0),
        ConstantCapacity(1000.0),
        [(0.0, "a", 100), (0.1, "a", 300), (0.2, "a", 200)],
        weights={"a": 1000.0},
    )
    assert [s for _f, s in service_order(link)] == [0, 1, 2]


def test_wf2q_peek_matches_dequeue():
    wf2q = WF2Q(assumed_capacity=100.0)
    wf2q.add_flow("a", 50.0)
    wf2q.add_flow("b", 50.0)
    wf2q.enqueue(Packet("a", 100, seqno=0), 0.0)
    wf2q.enqueue(Packet("b", 60, seqno=0), 0.0)
    peeked = wf2q.peek(0.0)
    assert wf2q.dequeue(0.0) is peeked
