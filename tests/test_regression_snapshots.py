"""Deterministic regression snapshots.

Every experiment is a pure function of its seed, so exact outputs are
stable across refactors; these tests pin a handful so behavioural
regressions (tag computation, event ordering, RNG stream wiring) fail
loudly rather than drifting the reproduced numbers.

If a change *intentionally* alters scheduling behaviour, update the
pinned values — the diff will show exactly what moved.
"""

from __future__ import annotations

import pytest

from repro.core import SFQ, Packet
from repro.servers import ConstantCapacity, Link
from repro.simulation import RandomStreams, Simulator
from repro.traffic import PoissonSource, VBRVideoSource


def test_example2_exact_counts():
    from repro.experiments.examples_1_2 import run_example2

    counts = run_example2(c=10.0).data["counts"]
    assert counts["WFQ"] == (9, 0)
    assert counts["SFQ"] == (4, 5)


def test_figure1_snapshot_seed1():
    from repro.experiments.figure1 import run_figure1_variant

    wfq = run_figure1_variant("WFQ", seed=1)
    sfq = run_figure1_variant("SFQ", seed=1)
    assert (wfq.src2_last_half, wfq.src3_last_half) == (381, 22)
    assert wfq.src3_first_435ms == 1
    assert (sfq.src2_last_half, sfq.src3_last_half) == (204, 200)
    assert sfq.src3_first_435ms == 164


def test_random_streams_snapshot():
    streams = RandomStreams(42)
    values = [round(streams.stream("x").random(), 12) for _ in range(3)]
    assert values == [0.041570368977, 0.665143832092, 0.03181564141]


def test_poisson_arrival_snapshot():
    sim = Simulator()
    times = []
    PoissonSource(
        sim,
        "f",
        lambda p: times.append(round(p.arrival, 9)),
        rate=10_000.0,
        packet_length=100,
        rng=RandomStreams(7).stream("poisson"),
        max_packets=5,
    ).start()
    sim.run()
    assert times == [
        0.005568171,
        0.031863188,
        0.062332056,
        0.07872704,
        0.085106001,
    ]


def test_vbr_frame_sizes_snapshot():
    src = VBRVideoSource(
        Simulator(),
        "v",
        lambda p: None,
        mean_rate=1_210_000.0,
        rng=RandomStreams(7).stream("video"),
    )
    sizes = [src.next_frame_bits() for _ in range(4)]
    assert sizes == [110105, 23014, 20815, 53133]


def test_sfq_tag_snapshot_mixed_workload():
    sim = Simulator()
    sfq = SFQ()
    sfq.add_flow("a", 100.0)
    sfq.add_flow("b", 300.0)
    link = Link(sim, sfq, ConstantCapacity(400.0))
    tags = []

    def record(packet, now):
        tags.append((packet.flow, packet.seqno, packet.start_tag, round(now, 6)))

    link.departure_hooks.append(record)
    sim.at(0.0, lambda: [link.send(Packet("a", 100, seqno=i)) for i in range(3)])
    sim.at(0.1, lambda: [link.send(Packet("b", 300, seqno=i)) for i in range(3)])
    sim.run()
    assert tags == [
        ("a", 0, 0.0, 0.25),
        ("b", 0, 0.0, 1.0),
        ("a", 1, 1.0, 1.25),
        ("b", 1, 1.0, 2.0),
        ("a", 2, 2.0, 2.25),
        ("b", 2, 2.0, 3.0),
    ]
