"""Tests for traffic sources."""

from __future__ import annotations

import random

import pytest

from repro.core import Packet
from repro.simulation import Simulator
from repro.traffic import (
    BulkSource,
    CBRSource,
    LeakyBucketShaper,
    OnOffSource,
    PacedWindowSource,
    PoissonSource,
    TraceSource,
    VBRVideoSource,
    conforms,
)


class Collector:
    def __init__(self):
        self.packets = []

    def __call__(self, packet: Packet):
        self.packets.append(packet)

    def arrivals(self):
        return [(p.arrival, p.length) for p in self.packets]


# ----------------------------------------------------------------------
# CBR / bulk / paced
# ----------------------------------------------------------------------
def test_cbr_rate_and_spacing():
    sim, out = Simulator(), Collector()
    CBRSource(sim, "f", out, rate=1000.0, packet_length=100, stop_time=0.95).start()
    sim.run(until=2.0)
    assert len(out.packets) == 10
    times = [p.arrival for p in out.packets]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(0.1) for g in gaps)


def test_cbr_max_packets():
    sim, out = Simulator(), Collector()
    CBRSource(sim, "f", out, rate=1000.0, packet_length=100, max_packets=3).start()
    sim.run()
    assert len(out.packets) == 3


def test_cbr_start_time():
    sim, out = Simulator(), Collector()
    CBRSource(
        sim, "f", out, rate=1000.0, packet_length=100, start_time=5.0, max_packets=1
    ).start()
    sim.run()
    assert out.packets[0].arrival == 5.0


def test_cbr_seqnos_monotone():
    sim, out = Simulator(), Collector()
    CBRSource(sim, "f", out, rate=1000.0, packet_length=100, max_packets=5).start()
    sim.run()
    assert [p.seqno for p in out.packets] == list(range(5))


def test_bulk_dumps_all_at_start():
    sim, out = Simulator(), Collector()
    BulkSource(sim, "f", out, packet_length=100, n_packets=7, start_time=2.0).start()
    sim.run()
    assert len(out.packets) == 7
    assert all(p.arrival == 2.0 for p in out.packets)


def test_paced_window_respects_window():
    sim, out = Simulator(), Collector()
    src = PacedWindowSource(sim, "f", out, packet_length=100, window=3, max_packets=10)
    src.start()
    sim.run()
    assert len(out.packets) == 3  # no departures -> no refill
    for p in list(out.packets):  # snapshot: refills append to the list
        src.on_departure(p, sim.now)
    assert len(out.packets) == 6


def test_paced_window_ignores_other_flows():
    sim, out = Simulator(), Collector()
    src = PacedWindowSource(sim, "f", out, packet_length=100, window=1, max_packets=5)
    src.start()
    sim.run()
    src.on_departure(Packet("other", 100), 0.0)
    assert len(out.packets) == 1


# ----------------------------------------------------------------------
# Poisson / OnOff
# ----------------------------------------------------------------------
def test_poisson_mean_rate():
    sim, out = Simulator(), Collector()
    PoissonSource(
        sim, "f", out, rate=10_000.0, packet_length=100,
        rng=random.Random(9), stop_time=50.0,
    ).start()
    sim.run(until=50.0)
    bits = sum(p.length for p in out.packets)
    assert bits / 50.0 == pytest.approx(10_000.0, rel=0.1)


def test_poisson_interarrivals_exponential():
    sim, out = Simulator(), Collector()
    PoissonSource(
        sim, "f", out, rate=10_000.0, packet_length=100,
        rng=random.Random(10), max_packets=2000,
    ).start()
    sim.run()
    times = [p.arrival for p in out.packets]
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(0.01, rel=0.1)
    # CV of an exponential is 1.
    var = sum((g - mean_gap) ** 2 for g in gaps) / (len(gaps) - 1)
    assert var**0.5 / mean_gap == pytest.approx(1.0, rel=0.15)


def test_onoff_average_rate():
    sim, out = Simulator(), Collector()
    src = OnOffSource(
        sim, "f", out, peak_rate=10_000.0, packet_length=100,
        mean_on=0.5, mean_off=0.5, rng=random.Random(11), stop_time=100.0,
    )
    assert src.average_rate == pytest.approx(5000.0)
    src.start()
    sim.run(until=100.0)
    bits = sum(p.length for p in out.packets)
    assert bits / 100.0 == pytest.approx(5000.0, rel=0.2)


# ----------------------------------------------------------------------
# VBR video
# ----------------------------------------------------------------------
def test_vbr_mean_rate_calibrated():
    sim, out = Simulator(), Collector()
    VBRVideoSource(
        sim, "v", out, mean_rate=1_210_000.0, rng=random.Random(12),
        stop_time=60.0,
    ).start()
    sim.run(until=60.0)
    bits = sum(p.length for p in out.packets)
    assert bits / 60.0 == pytest.approx(1_210_000.0, rel=0.25)


def test_vbr_uses_fixed_packet_size():
    sim, out = Simulator(), Collector()
    VBRVideoSource(
        sim, "v", out, mean_rate=1_210_000.0, rng=random.Random(13),
        packet_length=400, stop_time=1.0,
    ).start()
    sim.run(until=1.0)
    assert all(p.length == 400 for p in out.packets)


def test_vbr_i_frames_larger_than_b_frames_on_average():
    src = VBRVideoSource(
        Simulator(), "v", lambda p: None, mean_rate=1_000_000.0,
        rng=random.Random(14),
    )
    sizes = {"I": [], "P": [], "B": []}
    for _ in range(240):
        ftype = src.gop[src._frame_index % len(src.gop)]
        sizes[ftype].append(src.next_frame_bits())
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(sizes["I"]) > mean(sizes["P"]) > mean(sizes["B"])


def test_vbr_offline_trace_matches_rate():
    src = VBRVideoSource(
        Simulator(), "v", lambda p: None, mean_rate=1_000_000.0,
        rng=random.Random(15),
    )
    trace = src.offline_trace(30.0)
    bits = sum(l for _t, l in trace)
    assert bits / 30.0 == pytest.approx(1_000_000.0, rel=0.25)


def test_vbr_rejects_bad_gop():
    with pytest.raises(ValueError):
        VBRVideoSource(
            Simulator(), "v", lambda p: None, mean_rate=1.0,
            rng=random.Random(0), gop="IXB",
        )


# ----------------------------------------------------------------------
# Trace source
# ----------------------------------------------------------------------
def test_trace_source_replays_schedule():
    sim, out = Simulator(), Collector()
    TraceSource(sim, "f", out, [(0.5, 100), (0.5, 200), (2.0, 300)]).start()
    sim.run()
    assert out.arrivals() == [(0.5, 100), (0.5, 200), (2.0, 300)]


def test_trace_source_sorts_schedule():
    sim, out = Simulator(), Collector()
    TraceSource(sim, "f", out, [(2.0, 300), (0.5, 100)]).start()
    sim.run()
    assert out.arrivals() == [(0.5, 100), (2.0, 300)]


# ----------------------------------------------------------------------
# Leaky bucket
# ----------------------------------------------------------------------
def test_shaper_passes_conforming_traffic_unchanged():
    sim, out = Simulator(), Collector()
    shaper = LeakyBucketShaper(sim, out, sigma=1000.0, rho=1000.0)
    src = CBRSource(sim, "f", shaper.send, rate=500.0, packet_length=100, max_packets=5)
    src.start()
    sim.run()
    # CBR at half the bucket rate: no delay added.
    assert [p.arrival for p in out.packets] == pytest.approx(
        [0.0, 0.2, 0.4, 0.6, 0.8]
    )


def test_shaper_delays_bursts_to_conform():
    sim, out = Simulator(), Collector()
    shaper = LeakyBucketShaper(sim, out, sigma=200.0, rho=100.0)
    BulkSource(sim, "f", shaper.send, packet_length=100, n_packets=5).start()
    sim.run()
    assert conforms(out.arrivals(), sigma=200.0, rho=100.0)
    # Two packets pass immediately (bucket full), then one per second.
    assert [p.arrival for p in out.packets] == pytest.approx(
        [0.0, 0.0, 1.0, 2.0, 3.0]
    )


def test_shaper_rejects_oversized_packet():
    shaper = LeakyBucketShaper(Simulator(), lambda p: None, sigma=50.0, rho=10.0)
    with pytest.raises(ValueError):
        shaper.send(Packet("f", 100))


def test_conforms_checker():
    assert conforms([(0.0, 100), (1.0, 100)], sigma=100.0, rho=100.0)
    assert not conforms([(0.0, 100), (0.0, 100)], sigma=100.0, rho=100.0)
    with pytest.raises(ValueError):
        conforms([(1.0, 10), (0.0, 10)], sigma=100.0, rho=1.0)
