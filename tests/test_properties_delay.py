"""Property-based verification of Theorem 4 and discard_tail support.

Theorem 4's delay bound is checked for random admissible flow sets and
random burst patterns on a constant-rate server — any counterexample
hypothesis can find is a real bug in the tag machinery.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.delay_bounds import expected_arrival_times, sfq_delay_bound
from repro.core import FIFO, SCFQ, SFQ, Packet
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator

CAPACITY = 10_000.0

flow_specs = st.lists(
    st.tuples(
        st.floats(min_value=500.0, max_value=3000.0),  # rate
        st.sampled_from([200, 400, 800]),  # packet length
        st.integers(min_value=1, max_value=6),  # burst size
    ),
    min_size=2,
    max_size=4,
)


@settings(max_examples=25, deadline=None)
@given(specs=flow_specs, horizon=st.floats(min_value=3.0, max_value=8.0))
def test_theorem4_random_admissible_workloads(specs, horizon):
    # Normalize rates so the admission condition holds with headroom.
    total = sum(rate for rate, _l, _b in specs)
    scale = 0.9 * CAPACITY / total
    specs = [(rate * scale, length, burst) for rate, length, burst in specs]

    sim = Simulator()
    sfq = SFQ(auto_register=False)
    for i, (rate, _length, _burst) in enumerate(specs):
        sfq.add_flow(f"f{i}", rate)
    link = Link(sim, sfq, ConstantCapacity(CAPACITY))
    for i, (rate, length, burst) in enumerate(specs):
        gap = burst * length / rate
        t, seq = 0.0, 0
        while t < horizon:
            for _ in range(burst):
                sim.at(
                    t,
                    lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)),
                    f"f{i}", seq, length,
                )
                seq += 1
            t += gap
    sim.run(until=horizon * 3)

    lmax = {f"f{i}": length for i, (_r, length, _b) in enumerate(specs)}
    for i, (rate, length, _burst) in enumerate(specs):
        flow = f"f{i}"
        records = sorted(link.tracer.departed(flow), key=lambda r: r.seqno)
        eats = expected_arrival_times(
            [r.arrival for r in records],
            [r.length for r in records],
            [rate] * len(records),
        )
        sum_lmax_others = sum(l for f2, l in lmax.items() if f2 != flow)
        for record, eat in zip(records, eats):
            bound = sfq_delay_bound(eat, sum_lmax_others, record.length, CAPACITY, 0.0)
            assert record.departure <= bound + 1e-9


# ----------------------------------------------------------------------
# Theorem 2 under random FC square-wave servers
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    weights=st.lists(
        st.floats(min_value=500.0, max_value=4000.0), min_size=2, max_size=4
    ),
    phase=st.floats(min_value=0.2, max_value=2.0),
)
def test_theorem2_random_fc_servers(weights, phase):
    """Throughput floor (eq. 22) for greedy flows on a random-phase FC
    square wave whose exact delta is known in closed form."""
    from repro.analysis.delay_bounds import sfq_throughput_lower_bound
    from repro.servers import TwoRateSquareWave

    total = sum(weights)
    scale = CAPACITY / total
    rates = [w * scale for w in weights]
    length = 400
    capacity = TwoRateSquareWave(2 * CAPACITY, phase, 0.0, phase)

    sim = Simulator()
    sfq = SFQ(auto_register=False)
    for i, rate in enumerate(rates):
        sfq.add_flow(f"f{i}", rate)
    link = Link(sim, sfq, capacity)
    horizon = 12.0
    n = int(horizon * CAPACITY / length)
    for i in range(len(rates)):
        sim.at(0.0, lambda fl=f"f{i}": [
            link.send(Packet(fl, length, seqno=s)) for s in range(n)
        ])
    sim.run(until=horizon)
    sum_lmax = length * len(rates)
    for i, rate in enumerate(rates):
        for t1, t2 in ((0.0, horizon), (phase / 2, horizon - phase / 2)):
            work = link.tracer.work_in_interval(f"f{i}", t1, t2)
            floor = sfq_throughput_lower_bound(
                rate, t2 - t1, sum_lmax, CAPACITY, capacity.delta, length
            )
            assert work >= floor - 1e-6


# ----------------------------------------------------------------------
# discard_tail across supporting schedulers
# ----------------------------------------------------------------------
discard_schedule = st.lists(
    st.tuples(
        st.sampled_from(["a", "b"]),
        st.booleans(),  # True = discard after this enqueue
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=30, deadline=None)
@given(schedule=discard_schedule, which=st.sampled_from(["SFQ", "SCFQ", "FIFO"]))
def test_discard_tail_preserves_invariants(schedule, which):
    makers = {"SFQ": SFQ, "SCFQ": SCFQ, "FIFO": FIFO}
    sched = makers[which]()
    sched.add_flow("a", 100.0)
    sched.add_flow("b", 200.0)
    alive = {"a": [], "b": []}
    seq = {"a": 0, "b": 0}
    for flow, do_discard in schedule:
        packet = Packet(flow, 100, seqno=seq[flow])
        seq[flow] += 1
        sched.enqueue(packet, 0.0)
        alive[flow].append(packet.seqno)
        if do_discard:
            victim = sched.discard_tail(flow)
            if victim is not None:
                alive[flow].remove(victim.seqno)
    expected_total = len(alive["a"]) + len(alive["b"])
    assert sched.backlog_packets == expected_total
    served = {"a": [], "b": []}
    while True:
        packet = sched.dequeue(0.0)
        if packet is None:
            break
        served[packet.flow].append(packet.seqno)
        sched.on_service_complete(packet, 0.0)
    for flow in ("a", "b"):
        assert served[flow] == alive[flow]  # survivors, in FIFO order
    assert sched.backlog_packets == 0
    assert sched.backlog_bits == 0
