"""Tests for the Pareto source, Gilbert-Elliott capacity, and
networkx-routed multi-switch topologies."""

from __future__ import annotations

import random

import pytest

from repro.analysis.servers import measure_fc_delta
from repro.core import SFQ, Packet
from repro.network import RoutedNetwork
from repro.servers import ConstantCapacity, GilbertElliottCapacity
from repro.servers.base import CapacityError
from repro.simulation import Simulator
from repro.traffic import ParetoOnOffSource, pareto_sample


# ----------------------------------------------------------------------
# Pareto source
# ----------------------------------------------------------------------
def test_pareto_sample_minimum_and_mean():
    rng = random.Random(8)
    samples = [pareto_sample(rng, alpha=1.5, minimum=2.0) for _ in range(20000)]
    assert min(samples) >= 2.0
    mean = sum(samples) / len(samples)
    # E[X] = alpha/(alpha-1) * minimum = 6; heavy tail -> loose check.
    assert 4.5 <= mean <= 8.5


def test_pareto_source_average_rate():
    sim = Simulator()
    packets = []
    src = ParetoOnOffSource(
        sim,
        "p",
        packets.append,
        peak_rate=10_000.0,
        packet_length=100,
        rng=random.Random(9),
        alpha=1.6,
        min_on=0.05,
        min_off=0.05,
        stop_time=200.0,
    )
    assert src.average_rate == pytest.approx(5_000.0)
    src.start()
    sim.run(until=200.0)
    measured = sum(p.length for p in packets) / 200.0
    assert measured == pytest.approx(5_000.0, rel=0.35)  # heavy tail


def test_pareto_source_bursts_are_heavy_tailed():
    sim = Simulator()
    packets = []
    ParetoOnOffSource(
        sim, "p", packets.append, peak_rate=10_000.0, packet_length=100,
        rng=random.Random(10), alpha=1.3, min_on=0.05, min_off=0.05,
        stop_time=300.0,
    ).start()
    sim.run(until=300.0)
    # Burst lengths (consecutive packets at peak spacing) should include
    # both tiny and very large runs.
    gaps = [
        b.arrival - a.arrival for a, b in zip(packets, packets[1:])
    ]
    peak_gap = 100 / 10_000.0
    runs, current = [], 1
    for gap in gaps:
        if gap <= peak_gap * 1.01:
            current += 1
        else:
            runs.append(current)
            current = 1
    runs.append(current)
    assert max(runs) > 10 * (sum(runs) / len(runs))


def test_pareto_source_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ParetoOnOffSource(sim, "p", print, 0.0, 100, random.Random(0))
    with pytest.raises(ValueError):
        ParetoOnOffSource(sim, "p", print, 1.0, 100, random.Random(0), alpha=1.0)


# ----------------------------------------------------------------------
# Gilbert-Elliott capacity
# ----------------------------------------------------------------------
def test_ge_stationary_mean_rate():
    cap = GilbertElliottCapacity(
        good_rate=2000.0, bad_rate=0.0, p_gb=0.1, p_bg=0.1, slot=0.01,
        rng=random.Random(11),
    )
    assert cap.stationary_good == pytest.approx(0.5)
    assert cap.average_rate == pytest.approx(1000.0)
    assert cap.work(0.0, 100.0) == pytest.approx(100_000.0, rel=0.1)


def test_ge_sojourn_times():
    cap = GilbertElliottCapacity(2000.0, 100.0, p_gb=0.2, p_bg=0.5, slot=0.01)
    assert cap.mean_good_sojourn == pytest.approx(0.05)
    assert cap.mean_bad_sojourn == pytest.approx(0.02)


def test_ge_deficit_is_bounded_in_practice():
    cap = GilbertElliottCapacity(
        2000.0, 0.0, p_gb=0.2, p_bg=0.4, slot=0.01, rng=random.Random(12)
    )
    # Use a conservative guarantee rate: the 10th-percentile long-run
    # rate; the measured deficit must be modest (EBF behaviour).
    delta = measure_fc_delta(cap, cap.average_rate * 0.8, horizon=60.0, step=0.01)
    assert delta < cap.average_rate * 2.0  # < 2 seconds' worth of work


def test_ge_validation():
    with pytest.raises(CapacityError):
        GilbertElliottCapacity(100.0, 200.0, 0.1, 0.1, 0.01)  # bad > good
    with pytest.raises(CapacityError):
        GilbertElliottCapacity(200.0, 100.0, 0.0, 0.1, 0.01)


# ----------------------------------------------------------------------
# Routed multi-switch network
# ----------------------------------------------------------------------
def build_diamond(sim):
    """s -> {a, b} -> d diamond; the a-path is shorter by weight."""
    net = RoutedNetwork(
        sim,
        scheduler_factory=lambda: SFQ(),
        capacity_factory=lambda: ConstantCapacity(10_000.0),
    )
    for node in ("s", "a", "b", "d"):
        net.add_node(node)
    net.add_edge("s", "a", propagation_delay=0.001, weight=1.0)
    net.add_edge("a", "d", propagation_delay=0.001, weight=1.0)
    net.add_edge("s", "b", propagation_delay=0.001, weight=5.0)
    net.add_edge("b", "d", propagation_delay=0.001, weight=5.0)
    return net


def test_shortest_path_routing():
    sim = Simulator()
    net = build_diamond(sim)
    path = net.add_flow("f", "s", "d")
    assert path == ["s", "a", "d"]
    assert net.path_propagation_delay("f") == pytest.approx(0.002)


def test_packets_traverse_routed_path():
    sim = Simulator()
    net = build_diamond(sim)
    net.add_flow("f", "s", "d")
    for i in range(5):
        sim.at(0.0, lambda s: net.inject(Packet("f", 1000, seqno=s)), i)
    sim.run()
    assert net.sink.count("f") == 5
    # Both hops saw the packets.
    assert len(net.links[("s", "a")].tracer.departed("f")) == 5
    assert len(net.links[("a", "d")].tracer.departed("f")) == 5
    # End-to-end time >= 2 transmissions + 2 propagation delays.
    delays = net.sink.end_to_end_delays["f"]
    assert min(delays) >= 2 * (1000 / 10_000.0) + 0.002 - 1e-9


def test_flows_share_common_links_fairly():
    sim = Simulator()
    net = build_diamond(sim)
    net.add_flow("f1", "s", "d", weight=1.0)
    net.add_flow("f2", "s", "d", weight=3.0)
    for i in range(400):
        sim.at(0.0, lambda s: net.inject(Packet("f1", 500, seqno=s)), i)
        sim.at(0.0, lambda s: net.inject(Packet("f2", 500, seqno=s)), i)
    sim.run(until=15.0)
    first_link = net.links[("s", "a")].tracer
    w1 = first_link.work_in_interval("f1", 0, 15)
    w2 = first_link.work_in_interval("f2", 0, 15)
    assert w2 / w1 == pytest.approx(3.0, rel=0.1)


def test_duplicate_edge_and_flow_rejected():
    sim = Simulator()
    net = build_diamond(sim)
    with pytest.raises(ValueError):
        net.add_edge("s", "a")
    net.add_flow("f", "s", "d")
    with pytest.raises(ValueError):
        net.add_flow("f", "s", "d")
    with pytest.raises(ValueError):
        net.inject(Packet("ghost", 100))


def test_bound_ingress_validates_flow():
    sim = Simulator()
    net = build_diamond(sim)
    net.add_flow("f", "s", "d")
    send = net.ingress("f")
    send(Packet("f", 100, seqno=0))
    with pytest.raises(ValueError):
        send(Packet("other", 100, seqno=0))


def test_single_node_path_goes_straight_to_sink():
    sim = Simulator()
    net = build_diamond(sim)
    net.add_flow("local", "s", "s")
    net.inject(Packet("local", 100, seqno=0))
    assert net.sink.count("local") == 1
