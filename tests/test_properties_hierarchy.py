"""Property-based tests for hierarchical scheduling and Fair Airport /
WF2Q conservation under random workloads."""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import HierarchicalScheduler, Packet
from repro.core.wf2q import WF2Q
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator

# Random two-level trees: root -> classes -> flows.
tree_shapes = st.lists(
    st.integers(min_value=1, max_value=3),  # flows per class
    min_size=1,
    max_size=4,
)

arrivals = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.integers(min_value=0, max_value=11),  # flow index (mod #flows)
        st.integers(min_value=50, max_value=500),
    ),
    min_size=1,
    max_size=50,
)


def build_tree(shape: List[int]) -> Tuple[HierarchicalScheduler, List[str]]:
    hs = HierarchicalScheduler()
    flows: List[str] = []
    for c, n_flows in enumerate(shape):
        hs.add_class("root", f"c{c}", weight=float(c + 1))
        for f in range(n_flows):
            flow = f"c{c}f{f}"
            hs.attach_flow(flow, f"c{c}", weight=1.0)
            flows.append(flow)
    return hs, flows


@settings(max_examples=30, deadline=None)
@given(shape=tree_shapes, schedule=arrivals)
def test_hierarchy_conserves_packets(shape, schedule):
    sim = Simulator()
    hs, flows = build_tree(shape)
    link = Link(sim, hs, ConstantCapacity(1000.0))
    sent = {flow: 0 for flow in flows}
    for t, fidx, length in sorted(schedule):
        flow = flows[fidx % len(flows)]
        seq = sent[flow]
        sent[flow] += 1
        sim.at(t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)), flow, seq, length)
    sim.run()
    for flow in flows:
        records = link.tracer.departed(flow)
        assert len(records) == sent[flow]
        # Per-flow FIFO through the whole tree.
        by_start = sorted(records, key=lambda r: r.start_service)
        assert [r.seqno for r in by_start] == sorted(r.seqno for r in records)
    assert hs.backlog_packets == 0
    assert link.bits_transmitted == sum(
        l for _t, fidx, l in schedule
    )


@settings(max_examples=20, deadline=None)
@given(shape=tree_shapes, schedule=arrivals)
def test_hierarchy_class_accounting_consistent(shape, schedule):
    sim = Simulator()
    hs, flows = build_tree(shape)
    link = Link(sim, hs, ConstantCapacity(1000.0))
    counters = {flow: 0 for flow in flows}
    for t, fidx, length in sorted(schedule):
        flow = flows[fidx % len(flows)]
        seq = counters[flow]
        counters[flow] += 1
        sim.at(t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)), flow, seq, length)
    sim.run()
    bits = hs.class_bits_served()
    # Root accounts every transmitted bit; classes sum to the root.
    assert bits["root"] == link.bits_transmitted
    class_sum = sum(v for name, v in bits.items() if name.startswith("c") and "f" not in name)
    assert class_sum == bits["root"]


@settings(max_examples=25, deadline=None)
@given(schedule=arrivals)
def test_wf2q_conservation(schedule):
    sim = Simulator()
    sched = WF2Q(assumed_capacity=1000.0)
    sched.add_flow("f", 500.0)
    sched.add_flow("m", 250.0)
    link = Link(sim, sched, ConstantCapacity(1000.0))
    counters = {"f": 0, "m": 0}
    for t, fidx, length in sorted(schedule):
        flow = "f" if fidx % 2 == 0 else "m"
        seq = counters[flow]
        counters[flow] += 1
        sim.at(t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)), flow, seq, length)
    sim.run()
    for flow, count in counters.items():
        records = link.tracer.departed(flow)
        assert len(records) == count
        by_start = sorted(records, key=lambda r: r.start_service)
        assert [r.seqno for r in by_start] == sorted(r.seqno for r in records)


@settings(max_examples=25, deadline=None)
@given(
    sigma=st.floats(min_value=200.0, max_value=2000.0),
    rho=st.floats(min_value=100.0, max_value=1000.0),
    burst_sizes=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=10),
)
def test_shaper_output_always_conforms(sigma, rho, burst_sizes):
    """Property: whatever goes in, the leaky bucket's output conforms."""
    from repro.traffic import LeakyBucketShaper, conforms

    sim = Simulator()
    out = []
    shaper = LeakyBucketShaper(
        sim, lambda p: out.append((sim.now, p.length)), sigma, rho
    )
    length = max(50, int(sigma // 4))
    t = 0.0
    seq = 0
    for burst in burst_sizes:
        for _ in range(burst):
            sim.at(t, lambda s: shaper.send(Packet("f", length, seqno=s)), seq)
            seq += 1
        t += 0.3
    sim.run()
    assert len(out) == seq  # nothing lost
    # Allow the shaper's epsilon release slack.
    assert conforms(out, sigma * (1 + 1e-6) + 1e-6, rho)
