"""Every numeric claim in the paper that is analytically computable,
asserted in one place.

Where our exact arithmetic differs from the paper's rounded prose
(e.g. its "24.4 ms"), the test pins OUR exact value and the comment
records the paper's; EXPERIMENTS.md discusses each discrepancy.
"""

from __future__ import annotations

import pytest

from repro.analysis.delay_bounds import (
    scfq_sfq_delay_delta,
    wfq_sfq_delay_delta,
    wfq_sfq_delta_positive_condition,
)
from repro.analysis.fairness import (
    drr_fairness_bound,
    golestani_lower_bound,
    sfq_fairness_bound,
)
from repro.core.packet import bits, kbps, mbps


class TestSection12:
    """Numbers from the related-work discussion."""

    def test_drr_example_r100_l1(self):
        # "if r_f = r_m = 100 and l_f^max = l_m^max = 1, then H(f,m) for
        # DRR is 1.02, which is 50 times larger than the corresponding
        # 0.02 value for SCFQ."
        assert drr_fairness_bound(1, 100.0, 1, 100.0) == pytest.approx(1.02)
        assert sfq_fairness_bound(1, 100.0, 1, 100.0) == pytest.approx(0.02)

    def test_sfq_bound_is_twice_lower_bound(self):
        # Theorem 1 vs Golestani: "only a factor of two away".
        for lf, rf, lm, rm in ((1600, 64e3, 800, 32e3), (400, 100.0, 250, 75.0)):
            assert sfq_fairness_bound(lf, rf, lm, rm) == pytest.approx(
                2 * golestani_lower_bound(lf, rf, lm, rm)
            )


class TestSection23:
    """Numbers from the delay-guarantee discussion (eq. 56-60)."""

    C = mbps(100)
    L = bits(200)  # 200-byte packets

    def test_scfq_gap_64kbps(self):
        # Paper: "when r=64Kb/s, l=200 bytes and C=100Mb/s, the
        # difference is 24.4ms." Exact eq. 57: l/r - l/C = 24.984 ms.
        delta = scfq_sfq_delay_delta(self.L, kbps(64), self.C)
        assert delta == pytest.approx(0.024984, rel=1e-4)

    def test_scfq_gap_k5(self):
        # Paper: "the difference increases to 122ms for K = 5."
        # Exact: 5 x 24.984 = 124.92 ms.
        assert 5 * scfq_sfq_delay_delta(self.L, kbps(64), self.C) == pytest.approx(
            0.12492, rel=1e-4
        )

    def test_mixed_population_example(self):
        # Paper: 70 x 1 Mb/s + 200 x 64 Kb/s flows on 100 Mb/s:
        # "the maximum delay of the packets of flow with rate 64 Kb/s
        # reduces by 20.39ms in SFQ, the maximum delay of 1Mb/s flows
        # increases by 2.48 ms." Exact eq. 58: 20.696 / 2.696 ms.
        q = 70 + 200
        audio = wfq_sfq_delay_delta(
            self.L, kbps(64), self.L, (q - 1) * self.L, self.C
        )
        video = wfq_sfq_delay_delta(
            self.L, mbps(1), self.L, (q - 1) * self.L, self.C
        )
        assert audio == pytest.approx(0.020696, rel=1e-3)
        assert -video == pytest.approx(0.002704, rel=1e-3)

    def test_eq60_crossover(self):
        # "maximum delay ... smaller than in WFQ if the fraction of the
        # link bandwidth used by the flow is at most 1/(|Q|-1)".
        q = 201
        boundary_rate = self.C / (q - 1)
        assert wfq_sfq_delta_positive_condition(q, boundary_rate, self.C)
        assert not wfq_sfq_delta_positive_condition(q, boundary_rate * 1.01, self.C)


class TestSection1Figure1:
    """Workload constants of the Figure 1 experiment, as encoded."""

    def test_experiment_constants_match_paper(self):
        from repro.experiments import figure1

        assert figure1.LINK_RATE == mbps(2.5)
        assert figure1.VIDEO_RATE == mbps(1.21)
        assert figure1.VIDEO_PACKET == bits(50)
        assert figure1.TCP_SEGMENT_BYTES == 200
        assert figure1.SRC3_START == 0.5
        assert figure1.DURATION == 1.0


class TestSection4Figure3:
    """Workload constants of the Figure 3 experiment, as encoded."""

    def test_experiment_constants_match_paper(self):
        from repro.experiments import figure3

        assert figure3.LINK_RATE == mbps(48)  # measured interface rate
        assert figure3.PACKET == bits(4096)  # 4 KB packets


class TestFigure2b:
    """Workload constants of the Figure 2(b) experiment."""

    def test_experiment_constants_match_paper(self):
        from repro.experiments import figure2b

        assert figure2b.LINK == mbps(1)
        assert figure2b.PACKET == bits(200)
        assert figure2b.HIGH_RATE == kbps(100)
        assert figure2b.LOW_RATE == kbps(32)
        assert figure2b.N_HIGH == 7
