"""Failure injection and protocol-misuse tests.

A library gets adopted when it fails loudly and precisely; these tests
pin the error behaviour on bad inputs, mid-run perturbations, and
adversarial (malicious-source) conditions the paper's isolation
property is supposed to withstand.
"""

from __future__ import annotations

import pytest

from repro.core import FIFO, SFQ, Packet
from repro.core.priority import PriorityBands
from repro.servers import ConstantCapacity, Link, PiecewiseCapacity
from repro.servers.base import CapacityError
from repro.simulation import Simulator
from repro.simulation.engine import SimulationError


# ----------------------------------------------------------------------
# Malicious / misbehaving sources: the isolation property
# ----------------------------------------------------------------------
def test_flooding_flow_cannot_degrade_a_conforming_flow():
    """Section 2.3: the delay guarantee 'is independent of the behavior
    of other sources at the server' — flood one flow 20x its rate, the
    conforming flow's bound must be untouched."""
    from repro.analysis.delay_bounds import expected_arrival_times, sfq_delay_bound

    for flood_factor in (1, 20):
        sim = Simulator()
        sfq = SFQ(auto_register=False)
        sfq.add_flow("good", 400.0)
        sfq.add_flow("evil", 600.0)
        link = Link(sim, sfq, ConstantCapacity(1000.0))
        # Conforming CBR at its reserved rate.
        for i in range(100):
            sim.at(i * 0.25, lambda s: link.send(Packet("good", 100, seqno=s)), i)
        # Misbehaving flow floods at flood_factor x its reservation.
        n_evil = int(100 * flood_factor * 0.25 * 600 / 100)
        sim.at(0.0, lambda n=n_evil: [
            link.send(Packet("evil", 100, seqno=i)) for i in range(n)
        ])
        sim.run(until=60.0)
        records = sorted(link.tracer.departed("good"), key=lambda r: r.seqno)
        eats = expected_arrival_times(
            [r.arrival for r in records], [r.length for r in records],
            [400.0] * len(records),
        )
        for record, eat in zip(records, eats):
            bound = sfq_delay_bound(eat, 100, record.length, 1000.0, 0.0)
            assert record.departure <= bound + 1e-9, flood_factor


def test_zero_length_packet_rejected_at_creation():
    with pytest.raises(ValueError):
        Packet("f", 0)


def test_duplicate_service_complete_is_harmless():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    sfq.enqueue(Packet("f", 100), 0.0)
    p = sfq.dequeue(0.0)
    sfq.on_service_complete(p, 1.0)
    sfq.on_service_complete(p, 1.0)  # double notify: no crash, no drift
    assert sfq.backlog_packets == 0


# ----------------------------------------------------------------------
# Capacity process failure modes
# ----------------------------------------------------------------------
def test_link_surfaces_stalled_capacity():
    """A capacity that goes dark forever must raise, not hang."""
    sim = Simulator()
    capacity = PiecewiseCapacity.from_list([(0.0, 100.0), (1.0, 0.0)])
    link = Link(sim, FIFO(), capacity)
    sim.at(0.0, lambda: link.send(Packet("f", 500, seqno=0)))
    with pytest.raises(CapacityError):
        sim.run()


def test_capacity_rejects_queries_before_time_zero():
    cap = PiecewiseCapacity.from_list([(0.0, 100.0)])
    with pytest.raises(CapacityError):
        cap.rate_at(-1.0)
    with pytest.raises(CapacityError):
        cap.work(2.0, 1.0)


# ----------------------------------------------------------------------
# Engine misuse
# ----------------------------------------------------------------------
def test_callback_exception_stops_loop_cleanly():
    sim = Simulator()
    fired = []

    def bad():
        raise RuntimeError("injected")

    sim.at(1.0, bad)
    sim.at(2.0, fired.append, "later")
    with pytest.raises(RuntimeError):
        sim.run()
    # The loop is reusable after the failure; pending events survive.
    sim.run()
    assert fired == ["later"]


def test_cancelling_event_from_another_event_same_time():
    sim = Simulator()
    fired = []
    victim = sim.at(1.0, fired.append, "victim", priority=1)
    sim.at(1.0, victim.cancel, priority=0)
    sim.run()
    assert fired == []


def test_massive_cancellation_does_not_leak_heap():
    sim = Simulator()
    events = [sim.at(float(i % 7) + 1.0, lambda: None) for i in range(5000)]
    for event in events[:4999]:
        event.cancel()
    sim.run()
    assert sim.events_processed == 1


# ----------------------------------------------------------------------
# Composite scheduler misuse
# ----------------------------------------------------------------------
def test_priority_bands_empty_list_rejected():
    from repro.core.base import SchedulerError

    with pytest.raises(SchedulerError):
        PriorityBands([])


def test_link_drop_hooks_do_not_fire_for_accepted_packets():
    sim = Simulator()
    link = Link(sim, FIFO(), ConstantCapacity(1000.0), buffer_packets=1)
    dropped = []
    link.drop_hooks.append(lambda p, t: dropped.append(p.seqno))
    sim.at(0.0, lambda: [link.send(Packet("f", 100, seqno=i)) for i in range(3)])
    sim.run()
    assert dropped == [2]
    assert link.packets_transmitted == 2
