"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulation import Simulator
from repro.simulation.engine import SimulationError


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.at(3.0, fired.append, "c")
    sim.at(1.0, fired.append, "a")
    sim.at(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_equal_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.at(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_priority_orders_equal_time_events():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, "late", priority=1)
    sim.at(1.0, fired.append, "early", priority=-1)
    sim.run()
    assert fired == ["early", "late"]


def test_after_schedules_relative():
    sim = Simulator()
    times = []
    sim.after(2.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [2.0]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.at(5.0, lambda: sim.at(1.0, lambda: None))
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().after(-1.0, lambda: None)


def test_nan_time_rejected():
    with pytest.raises(SimulationError):
        Simulator().at(float("nan"), lambda: None)


def test_run_until_advances_clock_exactly():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    end = sim.run(until=10.0)
    assert end == 10.0
    assert sim.now == 10.0


def test_run_until_does_not_fire_later_events():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, "in")
    sim.at(20.0, fired.append, "out")
    sim.run(until=10.0)
    assert fired == ["in"]
    # A later run picks the event up.
    sim.run()
    assert fired == ["in", "out"]


def test_event_scheduled_at_now_fires_in_same_run():
    sim = Simulator()
    fired = []
    sim.at(1.0, lambda: sim.at(sim.now, fired.append, "nested"))
    sim.run()
    assert fired == ["nested"]


def test_cancelled_event_skipped():
    sim = Simulator()
    fired = []
    event = sim.at(1.0, fired.append, "x")
    sim.at(0.5, event.cancel)
    sim.run()
    assert fired == []
    assert not event.pending


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    event = sim.at(1.0, lambda: None)
    sim.run()
    event.cancel()  # must not raise
    assert event.fired


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, 1)
    sim.at(2.0, sim.stop)
    sim.at(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, 1)
    sim.at(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_peek_returns_next_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.at(4.0, lambda: None)
    sim.at(2.0, lambda: None)
    assert sim.peek() == 2.0


def test_max_events_limits_run():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.at(float(i), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_truncated_flag_set_when_work_remains():
    sim = Simulator()
    for i in range(10):
        sim.at(float(i), lambda: None)
    sim.run(max_events=3)
    assert sim.truncated


def test_truncated_flag_clear_on_complete_run():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    sim.run()
    assert not sim.truncated


def test_truncated_flag_clear_when_remaining_events_beyond_until():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    sim.at(50.0, lambda: None)
    sim.run(until=10.0, max_events=1)
    # The only pending event lies past the horizon; the run within
    # [0, until] is complete, not truncated.
    assert not sim.truncated


def test_truncated_flag_reset_by_next_run():
    sim = Simulator()
    for i in range(5):
        sim.at(float(i), lambda: None)
    sim.run(max_events=2)
    assert sim.truncated
    sim.run()
    assert not sim.truncated


def test_peek_skips_cancelled_events():
    sim = Simulator()
    first = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    first.cancel()
    assert sim.peek() == 2.0


def test_step_skips_cancelled_events():
    sim = Simulator()
    fired = []
    victim = sim.at(1.0, fired.append, "cancelled")
    sim.at(2.0, fired.append, "kept")
    victim.cancel()
    assert sim.step()
    assert fired == ["kept"]
    assert sim.now == 2.0
    assert not sim.step()


def test_equal_time_insertion_order_is_deterministic():
    # Same schedule built twice fires identically: ties broken by
    # insertion sequence, independent of callback identity.
    def build_and_run():
        sim = Simulator()
        fired = []
        for i in (3, 1, 4, 1, 5, 9, 2, 6):
            sim.at(1.0, fired.append, i)
        sim.at(1.0, lambda: fired.append("tail"))
        sim.run()
        return fired

    assert build_and_run() == build_and_run() == [3, 1, 4, 1, 5, 9, 2, 6, "tail"]


def test_not_reentrant():
    sim = Simulator()

    def recurse():
        with pytest.raises(SimulationError):
            sim.run()

    sim.at(1.0, recurse)
    sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.at(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_run_for_runs_relative_duration():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, 1)
    sim.at(5.0, fired.append, 5)
    sim.run_for(2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run_for(3.0)
    assert fired == [1, 5]
