"""Tests for DRR, WRR and FIFO."""

from __future__ import annotations

import pytest

from tests.helpers import drive_greedy, run_schedule, service_order
from repro.core import DRR, FIFO, WRR, Packet
from repro.core.base import SchedulerError
from repro.servers import ConstantCapacity


# ----------------------------------------------------------------------
# DRR
# ----------------------------------------------------------------------
def test_drr_weighted_shares():
    link = drive_greedy(
        DRR(quantum_scale=100.0),
        ConstantCapacity(3000.0),
        [("a", 1.0, 100, 600), ("b", 2.0, 100, 600)],
        until=10.0,
    )
    wa = link.tracer.work_in_interval("a", 0, 10)
    wb = link.tracer.work_in_interval("b", 0, 10)
    assert wb / wa == pytest.approx(2.0, rel=0.05)


def test_drr_deficit_carries_for_large_packets():
    # Quantum 60 < packet 100: the flow needs two rounds per packet but
    # must not starve.
    link = drive_greedy(
        DRR(quantum_scale=60.0),
        ConstantCapacity(1000.0),
        [("a", 1.0, 100, 50), ("b", 1.0, 100, 50)],
        until=10.0,
    )
    assert link.tracer.work_in_interval("a", 0, 10) == pytest.approx(
        link.tracer.work_in_interval("b", 0, 10), rel=0.1
    )


def test_drr_deficit_reset_when_queue_empties():
    drr = DRR(quantum_scale=1000.0)
    drr.add_flow("a", 1.0)
    drr.enqueue(Packet("a", 100, seqno=0), 0.0)
    assert drr.dequeue(0.0) is not None
    # The flow left the active list with deficit reset: a new burst must
    # not inherit leftover credit beyond one quantum.
    state = drr.flows["a"]
    assert state.user.deficit == 0.0


def test_drr_burst_within_quantum_served_consecutively():
    link = run_schedule(
        DRR(quantum_scale=300.0),
        ConstantCapacity(100.0),
        [(0.0, "a", 100), (0.0, "a", 100), (0.0, "a", 100), (0.0, "b", 100)],
        weights={"a": 1.0, "b": 1.0},
    )
    order = service_order(link)
    # a's quantum of 300 covers 3 packets before b's visit.
    assert order == [("a", 0), ("a", 1), ("a", 2), ("b", 0)]


def test_drr_unfairness_grows_with_quantum():
    """Section 1.2: H(f,m) for DRR scales with the quantum size."""
    from repro.analysis.fairness import empirical_fairness_measure

    measures = []
    for scale in (100.0, 1600.0):
        link = drive_greedy(
            DRR(quantum_scale=scale),
            ConstantCapacity(1000.0),
            [("f", 1.0, 100, 300), ("m", 1.0, 100, 300)],
        )
        measures.append(empirical_fairness_measure(link.tracer, "f", "m", 1.0, 1.0))
    assert measures[1] > 2 * measures[0]


def test_drr_rejects_bad_quantum():
    with pytest.raises(SchedulerError):
        DRR(quantum_scale=0.0)


def test_drr_peek_unsupported():
    with pytest.raises(NotImplementedError):
        DRR().peek(0.0)


def test_drr_empty_dequeue():
    assert DRR().dequeue(0.0) is None


# ----------------------------------------------------------------------
# WRR
# ----------------------------------------------------------------------
def test_wrr_integer_weighted_rounds():
    link = run_schedule(
        WRR(),
        ConstantCapacity(100.0),
        # Blocker occupies the server while a and b queue up.
        [(0.0, "z", 100)] + [(0.0, "a", 100)] * 4 + [(0.0, "b", 100)] * 4,
        weights={"z": 1.0, "a": 1.0, "b": 3.0},
    )
    order = [f for f, _s in service_order(link)]
    # After the blocker: a's visit (1 credit), then b's (3 credits).
    assert order[1:5] == ["a", "b", "b", "b"]


def test_wrr_shares():
    link = drive_greedy(
        WRR(),
        ConstantCapacity(1000.0),
        [("a", 1.0, 100, 200), ("b", 2.0, 100, 200)],
        until=10.0,
    )
    wa = link.tracer.work_in_interval("a", 0, 10)
    wb = link.tracer.work_in_interval("b", 0, 10)
    assert wb / wa == pytest.approx(2.0, rel=0.1)


def test_wrr_empty_dequeue():
    assert WRR().dequeue(0.0) is None


# ----------------------------------------------------------------------
# FIFO
# ----------------------------------------------------------------------
def test_fifo_serves_in_arrival_order_across_flows():
    link = run_schedule(
        FIFO(),
        ConstantCapacity(100.0),
        [(0.0, "a", 100), (0.0, "b", 100), (0.0, "a", 100)],
        weights={"a": 1.0, "b": 1.0},
    )
    assert service_order(link) == [("a", 0), ("b", 0), ("a", 1)]


def test_fifo_has_no_isolation():
    # One aggressive flow starves the other: the null hypothesis the
    # fair schedulers fix.
    link = run_schedule(
        FIFO(),
        ConstantCapacity(100.0),
        [(0.0, "hog", 100)] * 50 + [(1.0, "meek", 100)],
        weights={"hog": 1.0, "meek": 1.0},
    )
    meek = link.tracer.for_flow("meek")[0]
    assert meek.departure - meek.arrival > 40.0


def test_fifo_peek():
    fifo = FIFO()
    fifo.add_flow("a", 1.0)
    p = Packet("a", 100, seqno=0)
    fifo.enqueue(p, 0.0)
    assert fifo.peek(0.0) is p
