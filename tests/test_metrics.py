"""repro.metrics: instruments, hub, session wiring, snapshots, campaign.

Covers the telemetry subsystem end to end:

* instrument semantics (exact moments, lossless payload round-trip,
  shard merge rules: counters sum, gauges max, histograms bucket-wise,
  rate meters window-wise);
* the hub's create-on-first-use registry, kind-conflict detection, and
  the NullTracer-style ``enabled`` guard contract;
* ambient session wiring — a Link constructed inside a
  ``MetricsSession`` reports exactly what its tracer saw, one
  constructed outside is wired to ``NULL_METRICS`` and records nothing;
* snapshot schema, JSON/CSV artifacts, lossless reload, and merge;
* the acceptance number: metrics-enabled Figure 1 per-flow throughput
  within 1% of the trace(sink)-derived value;
* campaign integration: per-shard snapshots merge into
  ``summary.data["metrics_snapshot"]`` and survive the result cache.
"""

from __future__ import annotations

import csv
import json

import pytest

from repro.core import Packet, make_scheduler
from repro.metrics import (
    DEFAULT_RATE_WINDOW,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsHub,
    MetricsSession,
    RateMeter,
    Snapshot,
    active_session,
    decode_label,
    encode_label,
    hub_for,
)
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------


def test_counter_add_merge_roundtrip():
    c = Counter()
    c.add()
    c.add(2.5)
    assert c.value == 3.5
    other = Counter.from_payload(c.to_payload())
    assert other.value == 3.5
    c.merge(other)
    assert c.value == 7.0


def test_gauge_tracks_high_watermark_and_merges_by_max():
    g = Gauge()
    g.set(4.0)
    g.set(9.0)
    g.set(2.0)
    assert g.value == 2.0 and g.high == 9.0
    h = Gauge()
    h.set(11.0)
    h.set(1.0)
    g.merge(h)
    assert g.high == 11.0
    restored = Gauge.from_payload(g.to_payload())
    assert (restored.value, restored.high) == (g.value, g.high)


def test_histogram_exact_moments_and_quantiles():
    h = Histogram(1e-3, 1e3, 24)
    values = [0.002, 0.01, 0.01, 0.5, 7.0]
    for v in values:
        h.observe(v)
    assert h.count == len(values)
    assert h.total == pytest.approx(sum(values))
    assert h.vmin == 0.002 and h.vmax == 7.0
    assert h.mean == pytest.approx(sum(values) / len(values))
    # Quantiles are bucket-resolution but must be monotone and bounded.
    q50, q99 = h.quantile(0.5), h.quantile(0.99)
    assert h.vmin <= q50 <= q99 <= h.vmax * 1.5


def test_histogram_under_overflow_and_lossless_roundtrip():
    h = Histogram(1.0, 100.0, 8)
    h.observe(0.01)   # underflow bucket
    h.observe(1e6)    # overflow bucket
    h.observe(10.0)
    restored = Histogram.from_payload(h.to_payload())
    assert restored.to_payload() == h.to_payload()
    assert restored.count == 3
    assert restored.vmin == 0.01 and restored.vmax == 1e6


def test_histogram_merge_requires_identical_layout():
    a = Histogram(1.0, 100.0, 8)
    b = Histogram(1.0, 100.0, 16)
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_merge_is_bucketwise():
    a = Histogram(1.0, 100.0, 8)
    b = Histogram(1.0, 100.0, 8)
    a.observe(2.0)
    b.observe(2.0)
    b.observe(50.0)
    a.merge(b)
    assert a.count == 3
    assert a.total == pytest.approx(54.0)


def test_rate_meter_windows_and_merge():
    m = RateMeter(0.1)
    m.add(0.05, 100.0)
    m.add(0.07, 50.0)
    m.add(0.25, 10.0)
    series = m.series()
    assert series[0] == (0.0, pytest.approx(1500.0))  # 150 bits / 0.1 s
    assert m.total == pytest.approx(160.0)
    assert m.last_time == pytest.approx(0.25)
    other = RateMeter(0.1)
    other.add(0.05, 1.0)
    m.merge(other)
    assert m.series()[0] == (0.0, pytest.approx(1510.0))
    with pytest.raises(ValueError):
        m.merge(RateMeter(0.2))
    restored = RateMeter.from_payload(m.to_payload())
    assert restored.to_payload() == m.to_payload()


@pytest.mark.parametrize(
    "label", [None, "flow", 7, ("a", 1), ("nested", ("x", 2))]
)
def test_label_codec_roundtrip(label):
    assert decode_label(encode_label(label)) == label


# ----------------------------------------------------------------------
# MetricsHub
# ----------------------------------------------------------------------


def test_hub_create_on_first_use_and_kind_conflict():
    hub = MetricsHub("srv")
    c = hub.counter("drops", "f1")
    assert hub.counter("drops", "f1") is c
    with pytest.raises(ValueError):
        hub.gauge("drops", "f1")


def test_hub_standard_catalog_via_hot_path_hooks():
    hub = MetricsHub("srv")
    hub.on_arrival("f", 800.0, 0.0)
    hub.on_served("f", 800.0, 0.02, 0.02)
    hub.on_dropped("g", 400.0, 0.03)
    hub.on_queue_sample(3, 2400.0)
    assert hub.counter("packets_arrived", "f").value == 1
    assert hub.counter("bits_served", "f").value == 800.0
    assert hub.counter("packets_dropped", "g").value == 1
    assert hub.gauge("queue_depth").high == 3
    assert hub.get("link_throughput").total == pytest.approx(800.0)
    delay = hub.get("delay", "f")
    assert isinstance(delay, Histogram) and delay.count == 1


def test_hub_payload_roundtrip_is_lossless():
    hub = MetricsHub("srv", rate_window=0.25)
    hub.on_arrival(("tup", 1), 100.0, 0.0)
    hub.on_served(("tup", 1), 100.0, 0.5, 0.5)
    hub.counter("custom").add(5)
    restored = MetricsHub.from_payload(hub.to_payload())
    assert restored.to_payload() == hub.to_payload()
    assert restored.rate_window == 0.25
    assert restored.labels("packets_served") == [("tup", 1)]


def test_hub_merge_sums_counters_and_copies_missing():
    a = MetricsHub("srv")
    b = MetricsHub("srv")
    a.on_served("f", 100.0, 0.1, 0.1)
    b.on_served("f", 300.0, 0.2, 0.2)
    b.on_served("only-b", 50.0, 0.3, 0.3)
    a.merge(b)
    assert a.counter("bits_served", "f").value == 400.0
    assert a.counter("packets_served", "only-b").value == 1
    # The source hub must be untouched.
    assert b.counter("bits_served", "f").value == 300.0


def test_null_hub_is_disabled_but_fully_functional():
    assert NULL_METRICS.enabled is False
    assert MetricsHub("x").enabled is True
    # Unguarded writes must not raise (and are simply never exported).
    NULL_METRICS.counter("whatever").add()
    NULL_METRICS.on_arrival("f", 1.0, 0.0)


# ----------------------------------------------------------------------
# Session wiring
# ----------------------------------------------------------------------


def test_hub_for_returns_null_outside_session():
    assert active_session() is None
    assert hub_for("srv") is NULL_METRICS


def test_session_hands_out_live_hubs_and_restores_on_exit():
    with MetricsSession() as session:
        hub = hub_for("srv")
        assert hub is not NULL_METRICS and hub.enabled
        assert active_session() is session
        dup = hub_for("srv")
        assert dup is not hub and dup.name == "srv#2"
    assert active_session() is None
    assert hub_for("srv") is NULL_METRICS
    assert [h.name for h in session.hubs] == ["srv", "srv#2"]


def test_sessions_nest_by_shadowing():
    with MetricsSession() as outer:
        hub_for("a")
        with MetricsSession() as inner:
            hub_for("b")
            assert active_session() is inner
        assert active_session() is outer
    assert [h.name for h in outer.hubs] == ["a"]
    assert [h.name for h in inner.hubs] == ["b"]


def _run_greedy_link(buffer_packets=None):
    """Two bulk flows through a 1000 b/s link; returns the Link."""
    sim = Simulator()
    sched = make_scheduler("SFQ", auto_register=False)
    sched.add_flow("f", 600.0)
    sched.add_flow("m", 400.0)
    link = Link(
        sim,
        sched,
        ConstantCapacity(1000.0),
        name="m-link",
        buffer_packets=buffer_packets,
    )

    def inject():
        for flow, count in (("f", 30), ("m", 20)):
            for i in range(count):
                link.send(Packet(flow, 100, seqno=i))

    sim.at(0.0, inject)
    sim.run()
    return link


def test_link_reports_into_active_session():
    with MetricsSession() as session:
        link = _run_greedy_link()
    snap = session.snapshot({"experiment": "unit"})
    hub = snap.hubs["m-link"]
    served = sum(
        hub.counter("packets_served", f).value for f in ("f", "m")
    )
    assert served == link.packets_transmitted == 50
    assert hub.counter("bits_served", "f").value == 3000.0
    assert hub.get("link_throughput").total == pytest.approx(5000.0)
    assert hub.gauge("queue_depth").high > 0
    # Delay histogram saw every departure exactly once.
    assert sum(hub.get("delay", f).count for f in ("f", "m")) == 50


def test_link_drops_are_counted():
    with MetricsSession() as session:
        link = _run_greedy_link(buffer_packets=5)
    hub = session.snapshot().hubs["m-link"]
    dropped = sum(
        hub.counter("packets_dropped", f).value for f in ("f", "m")
    )
    assert dropped == link.packets_dropped > 0
    arrived = sum(
        hub.counter("packets_arrived", f).value for f in ("f", "m")
    )
    assert arrived == 50 - dropped  # rejects never count as arrivals


def test_link_outside_session_records_nothing():
    link = _run_greedy_link()
    assert link.metrics is NULL_METRICS
    # The hot-path guard skipped every update: whatever instruments
    # other (unguarded) callers may have created on the shared null hub,
    # nothing from this run's 50 departures landed in them.
    served = NULL_METRICS.get("packets_served", "f")
    assert served is None or served.value == 0


# ----------------------------------------------------------------------
# Snapshot
# ----------------------------------------------------------------------


def test_snapshot_schema_and_lossless_reload(tmp_path):
    with MetricsSession() as session:
        _run_greedy_link()
    snap = session.snapshot({"experiment": "unit", "seed": 3})
    payload = snap.to_payload()
    assert payload["schema"] == "metrics-snapshot/1"
    assert all(h["schema"] == "metrics-hub/1" for h in payload["hubs"])

    json_path, csv_path = snap.write(tmp_path, "unit")
    reloaded = Snapshot.from_json(json_path.read_text())
    assert reloaded.to_payload() == payload
    assert reloaded.meta == {"experiment": "unit", "seed": 3}

    with csv_path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == ["server", "family", "label", "field", "value"]
    families = {row[1] for row in rows[1:]}
    assert {"packets_served", "delay", "link_throughput"} <= families


def test_snapshot_rejects_unknown_schema():
    with pytest.raises(ValueError):
        Snapshot.from_payload({"schema": "metrics-snapshot/999", "hubs": []})


def test_snapshot_merge_combines_hubs_and_meta_variants():
    def one(seed):
        with MetricsSession() as session:
            _run_greedy_link()
        return session.snapshot({"experiment": "unit", "seed": seed})

    a, b = one(1), one(2)
    base_served = a.hubs["m-link"].counter("packets_served", "f").value
    a.merge(b)
    assert a.meta["experiment"] == "unit"
    assert a.meta["seed"] == [1, 2]
    assert (
        a.hubs["m-link"].counter("packets_served", "f").value
        == 2 * base_served
    )


def test_flow_summary_matches_counters():
    with MetricsSession() as session:
        _run_greedy_link()
    snap = session.snapshot()
    summary = snap.flow_summary("m-link")
    hub = snap.hubs["m-link"]
    span = hub.get("link_throughput").last_time
    for flow in ("f", "m"):
        assert summary[flow]["packets_served"] == hub.counter(
            "packets_served", flow
        ).value
        expected = hub.counter("bits_served", flow).value / span
        assert summary[flow]["throughput"] == pytest.approx(expected)


def test_summary_lines_render():
    with MetricsSession() as session:
        _run_greedy_link()
    lines = session.snapshot({"experiment": "unit"}).summary_lines()
    text = "\n".join(lines)
    assert "server m-link:" in text
    assert "link throughput" in text


# ----------------------------------------------------------------------
# Acceptance: figure1 under metrics vs trace-derived numbers
# ----------------------------------------------------------------------


def test_figure1_metrics_match_sink_within_one_percent():
    from repro.experiments.figure1 import run_figure1_variant

    with MetricsSession() as session:
        run = run_figure1_variant("SFQ", seed=1)
    snap = session.snapshot()
    hub = snap.hubs["fig1-SFQ"]
    # Served packet counts must match the sink exactly: both observe
    # the same departure events.
    assert hub.counter("packets_served", "tcp2").value == run.src2_total
    assert hub.counter("packets_served", "tcp3").value == run.src3_total
    assert hub.counter("packets_served", "video").value == run.video_packets
    # Per-flow throughput from the snapshot within 1% of trace-derived.
    summary = snap.flow_summary("fig1-SFQ")
    span = hub.get("link_throughput").last_time
    for flow, total in (("tcp2", run.src2_total), ("tcp3", run.src3_total)):
        trace_rate = total * 200 * 8 / span
        assert summary[flow]["throughput"] == pytest.approx(
            trace_rate, rel=0.01
        )


def test_metrics_collection_does_not_change_scheduling():
    """Enabling metrics must be observation-only: the same workload
    produces the identical service trace with and without a session."""

    def trace():
        link = _run_greedy_link()
        return [
            (r.flow, r.seqno, r.arrival, r.start_service, r.departure)
            for r in link.tracer.records
        ]

    baseline = trace()
    with MetricsSession():
        instrumented = trace()
    assert instrumented == baseline


# ----------------------------------------------------------------------
# Fault monitors export violations as counters
# ----------------------------------------------------------------------


def test_monitor_violations_surface_as_counters():
    from repro.experiments.fault_tolerance import run_outage_scenario

    with MetricsSession() as session:
        _received, monitors, _info = run_outage_scenario("WFQ", seed=1)
    assert monitors.fairness is not None and monitors.fairness.violations
    snap = session.snapshot()
    hub = snap.hubs["faults-WFQ"]
    counted = hub.counter("invariant_violations", "fairness").value
    assert counted == len(monitors.fairness.violations) > 0


# ----------------------------------------------------------------------
# Campaign integration
# ----------------------------------------------------------------------


def test_campaign_merges_shard_snapshots(tmp_path):
    from repro.experiments.campaign import run_campaign

    campaign = run_campaign(
        ["figure1"],
        seeds=2,
        jobs=1,
        cache=False,
        results_dir=str(tmp_path),
        metrics=True,
    )
    summary = campaign.summaries["figure1"]
    payload = summary.data["metrics_snapshot"]
    snap = Snapshot.from_payload(payload)
    assert "fig1-SFQ" in snap.hubs and "fig1-WFQ" in snap.hubs
    # Two seeds contributed; meta collected both derived seeds.
    assert isinstance(snap.meta["seed"], list) and len(snap.meta["seed"]) == 2
    # Shard results no longer carry raw payloads (lifted pre-aggregate).
    for outcome in campaign.outcomes:
        assert "metrics_snapshot" not in outcome.result.data


def test_campaign_snapshot_survives_result_cache(tmp_path):
    from repro.experiments.campaign import run_campaign

    kwargs = dict(
        seeds=1, jobs=1, cache=True, results_dir=str(tmp_path), metrics=True
    )
    first = run_campaign(["figure1"], **kwargs)
    second = run_campaign(["figure1"], **kwargs)
    assert all(o.from_cache for o in second.outcomes)
    assert (
        second.summaries["figure1"].data["metrics_snapshot"]
        == first.summaries["figure1"].data["metrics_snapshot"]
    )
    # A metrics-off run must not be served the instrumented entries.
    off = run_campaign(
        ["figure1"], seeds=1, jobs=1, cache=True,
        results_dir=str(tmp_path), metrics=False,
    )
    assert not any(o.from_cache for o in off.outcomes)
    assert "metrics_snapshot" not in off.summaries["figure1"].data
