"""repro.core.registry: the unified scheduler-construction API.

* every registered discipline constructs through ``make_scheduler`` and
  round-trips ``scheduler_spec``/``available_schedulers``;
* ``capacity`` follows the uniform-ladder contract (required by
  rate-proportional disciplines, accepted-and-ignored elsewhere);
* the ``auto_register`` default is normalized to True for *every*
  discipline (the raw ``DelayEDD``/``JitterEDD`` constructors default
  False — the registry removes that inconsistency);
* unknown names/params fail with the errors a CLI user should see;
* the pre-registry ``fault_tolerance._make_scheduler`` shim warns;
* and a lint-style sweep asserts ``make_scheduler`` is the only
  construction path left in ``src/repro/experiments`` and ``examples``.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro import available_schedulers, make_scheduler, scheduler_spec
from repro.core import ALGORITHMS, Packet, Scheduler
from repro.core.delay_edd import DelayEDD
from repro.core.registry import ParamSpec, SchedulerSpec, register_scheduler

CAPACITY = 1e6

#: Disciplines that emulate a fluid reference and must be told the rate.
#: Derived from the spec's ``needs_capacity`` flag — the single source of
#: truth for the uniform-ladder capacity contract.
RATE_PROPORTIONAL = {
    name for name in available_schedulers()
    if scheduler_spec(name).needs_capacity
}


def test_available_schedulers_cover_the_comparison_ladder():
    names = available_schedulers()
    assert names[0] == "SFQ"  # the paper's algorithm leads Table 1
    assert set(names) >= {
        "SFQ", "SCFQ", "WFQ", "FQS", "WF2Q", "VirtualClock",
        "DRR", "WRR", "FIFO", "DelayEDD", "JitterEDD", "FairAirport",
    }


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_make_scheduler_round_trips_every_name(name):
    spec = scheduler_spec(name)
    assert spec.cls is ALGORITHMS[name]
    sched = make_scheduler(name, capacity=CAPACITY)
    assert isinstance(sched, spec.cls)
    assert isinstance(sched, Scheduler)
    # Case-insensitive lookup resolves to the same spec.
    assert scheduler_spec(name.lower()) is spec
    assert isinstance(make_scheduler(name.lower(), capacity=CAPACITY), spec.cls)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_every_discipline_serves_a_registered_flow(name):
    sched = make_scheduler(name, capacity=CAPACITY)
    if hasattr(sched, "add_flow_with_deadline"):
        sched.add_flow_with_deadline("f", CAPACITY / 4, deadline=0.05)
    else:
        sched.add_flow("f", CAPACITY / 4)
    sched.enqueue(Packet("f", 8000), now=0.0)
    packet = sched.dequeue(now=0.0)
    assert packet is not None and packet.flow == "f"


@pytest.mark.parametrize("name", sorted(RATE_PROPORTIONAL))
def test_rate_proportional_disciplines_require_capacity(name):
    with pytest.raises(TypeError, match="rate-proportional"):
        make_scheduler(name)
    sched = make_scheduler(name, capacity=CAPACITY)
    assert sched.gps.capacity == CAPACITY


def test_self_clocked_disciplines_ignore_capacity():
    a = make_scheduler("SFQ", capacity=CAPACITY)
    b = make_scheduler("SFQ")
    assert type(a) is type(b)


def test_unknown_name_lists_available():
    with pytest.raises(ValueError, match="SFQ"):
        make_scheduler("GPS-2000")


def test_unknown_param_lists_accepted():
    with pytest.raises(TypeError, match="quantum_scale"):
        make_scheduler("DRR", quantum=8000)
    with pytest.raises(TypeError, match="does not accept"):
        make_scheduler("FIFO", tie_break=None)


def test_discipline_params_pass_through():
    drr = make_scheduler("DRR", quantum_scale=2.5)
    assert drr.quantum_scale == 2.5
    sfq = make_scheduler("SFQ", default_weight=42.0)
    assert sfq.default_weight == 42.0


def test_auto_register_default_is_normalized():
    # Raw constructors disagree (the inconsistency the registry fixes):
    assert DelayEDD().auto_register is False
    # Through the registry, every discipline defaults to True ...
    for name in available_schedulers():
        sched = make_scheduler(name, capacity=CAPACITY)
        assert sched.auto_register is True, name
    # ... and the caller can still opt out uniformly.
    for name in available_schedulers():
        sched = make_scheduler(name, capacity=CAPACITY, auto_register=False)
        assert sched.auto_register is False, name


def test_param_schema_is_introspectable():
    spec = scheduler_spec("DRR")
    assert "quantum_scale" in spec.param_names()
    by_name = {p.name: p for p in spec.params}
    assert isinstance(by_name["quantum_scale"], ParamSpec)
    assert by_name["quantum_scale"].kind == "float"
    assert scheduler_spec("WFQ").needs_capacity is True
    assert scheduler_spec("SFQ").needs_capacity is False


def test_register_scheduler_extends_the_registry():
    class Toy(Scheduler):
        def _do_enqueue(self, packet, now):  # pragma: no cover - unused
            raise NotImplementedError

        def _do_dequeue(self, now):  # pragma: no cover - unused
            return None

    spec = SchedulerSpec("UnitTestToy", Toy, "registry extension test")
    try:
        register_scheduler(spec)
        assert "UnitTestToy" in available_schedulers()
        assert isinstance(make_scheduler("unittesttoy"), Toy)
    finally:
        from repro.core import registry

        registry._REGISTRY.pop("UnitTestToy", None)
        registry._ALIASES.pop("unittesttoy", None)


def test_fault_tolerance_shim_warns_and_delegates():
    from repro.core.wfq import WFQ
    from repro.experiments.fault_tolerance import _make_scheduler

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sched = _make_scheduler("WFQ")
    assert any(w.category is DeprecationWarning for w in caught)
    assert isinstance(sched, WFQ)


# ----------------------------------------------------------------------
# Lint-style sweep: the registry is the only construction path
# ----------------------------------------------------------------------

_CONSTRUCTORS = frozenset(ALGORITHMS) | {"WF2Q"}


def _violations(root: Path):
    """AST sweep: real ``SFQ(...)``-style call sites (strings, comments
    and docstrings mentioning scheduler names don't count)."""
    import ast

    hits = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _CONSTRUCTORS:
                hits.append(f"{path.relative_to(root.parent)}:{node.lineno}")
    return hits


def test_experiments_and_examples_construct_only_via_registry():
    repo = Path(__file__).resolve().parent.parent
    hits = _violations(repo / "src" / "repro" / "experiments")
    hits += _violations(repo / "examples")
    hits += _violations(repo / "benchmarks")
    assert not hits, (
        "direct scheduler constructor calls (use make_scheduler): "
        + ", ".join(hits)
    )
