"""Tests for ``repro.lint`` — rules, suppressions, CLI, self-check.

Each rule gets at least one *catching* fixture (the violation is
reported) and one *passing* fixture (the disciplined spelling is not).
The final test lints the repo's own ``src/`` tree through the real CLI
and asserts it is clean — the tree must stay lintable at all times.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    LintUsageError,
    PROJECT_RULES,
    RULES,
    all_project_rule_codes,
    all_rule_codes,
    lint_source,
    parse_suppressions,
    resolve_rules,
)
from repro.lint.cli import main as lint_main, render_json, render_text

from tests.helpers import run_lint_on_source

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(findings) -> list:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# DET001 — unseeded / module-level random
# ---------------------------------------------------------------------------


def test_det001_catches_module_level_random():
    findings = run_lint_on_source("import random\nx = random.random()\n")
    assert "DET001" in codes(findings)


def test_det001_catches_numpy_random():
    findings = run_lint_on_source("import numpy as np\nv = np.random.rand()\n")
    assert "DET001" in codes(findings)


def test_det001_catches_from_import():
    findings = run_lint_on_source("from random import random\n")
    assert "DET001" in codes(findings)


def test_det001_passes_seeded_generator():
    findings = run_lint_on_source(
        "import random\nrng = random.Random(42)\nx = rng.random()\n"
    )
    assert "DET001" not in codes(findings)


def test_det001_exempts_the_stream_module():
    findings = run_lint_on_source(
        "import random\nx = random.random()\n",
        path="src/repro/simulation/random.py",
    )
    assert "DET001" not in codes(findings)


# ---------------------------------------------------------------------------
# DET002 — wall-clock reads
# ---------------------------------------------------------------------------

_WALL_CLOCK_SRC = "import time\nstart = time.perf_counter()\n"


def test_det002_catches_wall_clock_in_simulation_code():
    findings = run_lint_on_source(_WALL_CLOCK_SRC)
    assert "DET002" in codes(findings)


def test_det002_catches_from_import_alias():
    findings = run_lint_on_source(
        "from time import monotonic as clock\nt = clock()\n"
    )
    assert "DET002" in codes(findings)


def test_det002_passes_in_benchmarks_dir():
    findings = run_lint_on_source(_WALL_CLOCK_SRC, path="benchmarks/bench_x.py")
    assert findings == []


def test_det002_passes_in_bench_py():
    findings = run_lint_on_source(
        _WALL_CLOCK_SRC, path="src/repro/experiments/bench.py"
    )
    assert findings == []


# ---------------------------------------------------------------------------
# DET003 — unordered iteration feeding scheduling
# ---------------------------------------------------------------------------


def test_det003_catches_set_iteration_feeding_heappush():
    findings = run_lint_on_source(
        "from heapq import heappush\n"
        "def f(items, heap):\n"
        "    for x in set(items):\n"
        "        heappush(heap, x)\n"
    )
    assert "DET003" in codes(findings)


def test_det003_catches_dict_view_feeding_add_flow():
    findings = run_lint_on_source(
        "def f(weights, sched):\n"
        "    for flow in weights.keys():\n"
        "        sched.add_flow(flow, 1.0)\n"
    )
    assert "DET003" in codes(findings)


def test_det003_passes_with_sorted():
    findings = run_lint_on_source(
        "from heapq import heappush\n"
        "def f(items, heap):\n"
        "    for x in sorted(set(items)):\n"
        "        heappush(heap, x)\n"
    )
    assert "DET003" not in codes(findings)


def test_det003_ignores_loops_without_scheduling_sinks():
    findings = run_lint_on_source(
        "def f(items):\n"
        "    total = 0\n"
        "    for x in set(items):\n"
        "        total += x\n"
        "    return total\n"
    )
    assert "DET003" not in codes(findings)


# ---------------------------------------------------------------------------
# DET004 — id()-based tie-breaking
# ---------------------------------------------------------------------------


def test_det004_catches_id_in_comparator():
    findings = run_lint_on_source(
        "class T:\n"
        "    def __lt__(self, other):\n"
        "        return id(self) < id(other)\n"
    )
    assert "DET004" in codes(findings)


def test_det004_catches_id_in_key_lambda():
    findings = run_lint_on_source("def f(xs):\n    xs.sort(key=lambda p: id(p))\n")
    assert "DET004" in codes(findings)


def test_det004_passes_uid_tiebreak():
    findings = run_lint_on_source(
        "class T:\n"
        "    def __lt__(self, other):\n"
        "        return self.uid < other.uid\n"
    )
    assert "DET004" not in codes(findings)


# ---------------------------------------------------------------------------
# PERF002 — direct heapq surgery on the simulator event queue
# ---------------------------------------------------------------------------


def test_perf002_catches_heapq_in_simulation_package():
    findings = run_lint_on_source(
        "import heapq\n"
        "def f(queue, entry):\n"
        "    heapq.heappush(queue, entry)\n",
        path="src/repro/simulation/engine.py",
    )
    assert "PERF002" in codes(findings)


def test_perf002_catches_from_import_alias_in_simulation():
    findings = run_lint_on_source(
        "from heapq import heappop as _pop\n"
        "def f(queue):\n"
        "    return _pop(queue)\n",
        path="src/repro/simulation/process.py",
    )
    assert "PERF002" in codes(findings)


def test_perf002_allows_eventq_itself():
    findings = run_lint_on_source(
        "import heapq\n"
        "def f(heap, entry):\n"
        "    heapq.heappush(heap, entry)\n",
        path="src/repro/simulation/eventq.py",
    )
    assert "PERF002" not in codes(findings)


def test_perf002_catches_event_heap_receiver_outside_simulation():
    findings = run_lint_on_source(
        "import heapq\n"
        "def f(sim, entry):\n"
        "    heapq.heappush(sim._heap, entry)\n",
        path="src/repro/servers/thing.py",
    )
    assert "PERF002" in codes(findings)
    findings = run_lint_on_source(
        "import heapq\n"
        "class S:\n"
        "    __slots__ = ('sim',)\n"
        "    def f(self, entry):\n"
        "        heapq.heappush(self.sim._queue._heap, entry)\n",
        path="src/repro/core/thing.py",
    )
    assert "PERF002" in codes(findings)


def test_perf002_allows_scheduler_internal_heaps():
    findings = run_lint_on_source(
        "import heapq\n"
        "class Sched:\n"
        "    __slots__ = ('_head_heap', '_gsq_heap')\n"
        "    def f(self, entry):\n"
        "        heapq.heappush(self._head_heap, entry)\n"
        "        heap = self._gsq_heap\n"
        "        return heapq.heappop(heap)\n",
        path="src/repro/core/thing.py",
    )
    assert "PERF002" not in codes(findings)


def test_perf002_ignores_non_mutating_heapq_reads():
    findings = run_lint_on_source(
        "import heapq\n"
        "def f(sim):\n"
        "    return heapq.nsmallest(3, sim._heap)\n",
        path="src/repro/servers/thing.py",
    )
    assert "PERF002" not in codes(findings)


# ---------------------------------------------------------------------------
# DET005 — fault/chaos seed provenance
# ---------------------------------------------------------------------------

_CHAOS_PATH = "repro/chaos/schedule.py"


def test_det005_catches_raw_random_in_chaos_code():
    findings = run_lint_on_source(
        "import random\nrng = random.Random(3)\n", path=_CHAOS_PATH
    )
    assert "DET005" in codes(findings)


def test_det005_catches_literal_streams_seed_in_faults_code():
    findings = run_lint_on_source(
        "from repro.simulation.random import RandomStreams\n"
        "streams = RandomStreams(1234)\n",
        path="repro/faults/injectors.py",
    )
    assert "DET005" in codes(findings)


def test_det005_passes_derived_seed():
    findings = run_lint_on_source(
        "from repro.simulation.random import RandomStreams, derive_seed\n"
        "def make(seed):\n"
        "    return RandomStreams(derive_seed('chaos', seed))\n",
        path=_CHAOS_PATH,
    )
    assert "DET005" not in codes(findings)


def test_det005_ignores_code_outside_chaos_and_faults():
    findings = run_lint_on_source(
        "import random\nrng = random.Random(3)\n",
        path="repro/traffic/cbr.py",
    )
    assert "DET005" not in codes(findings)


# ---------------------------------------------------------------------------
# TAG001 — float equality on tag expressions
# ---------------------------------------------------------------------------


def test_tag001_catches_tag_equality():
    findings = run_lint_on_source(
        "def f(a, b):\n    return a.start_tag == b.start_tag\n"
    )
    assert "TAG001" in codes(findings)


def test_tag001_catches_virtual_time_inequality():
    findings = run_lint_on_source(
        "def f(sched, v):\n    return sched.virtual_time != v\n"
    )
    assert "TAG001" in codes(findings)


def test_tag001_passes_ordering_comparison():
    findings = run_lint_on_source(
        "def f(a, b):\n    return a.start_tag <= b.start_tag\n"
    )
    assert "TAG001" not in codes(findings)


def test_tag001_passes_none_sentinel_check():
    findings = run_lint_on_source(
        "def f(p):\n    return p.start_tag == None\n"  # noqa: E711
    )
    assert "TAG001" not in codes(findings)


# ---------------------------------------------------------------------------
# PERF001 — hot-path classes without __slots__
# ---------------------------------------------------------------------------

_UNSLOTTED = "class Hot:\n    def __init__(self):\n        self.x = 1\n"


def test_perf001_catches_unslotted_hot_path_class():
    findings = run_lint_on_source(_UNSLOTTED, path="src/repro/core/thing.py")
    assert "PERF001" in codes(findings)


def test_perf001_passes_with_slots():
    findings = run_lint_on_source(
        "class Hot:\n"
        "    __slots__ = ('x',)\n"
        "    def __init__(self):\n"
        "        self.x = 1\n",
        path="src/repro/core/thing.py",
    )
    assert findings == []


def test_perf001_passes_outside_hot_path():
    findings = run_lint_on_source(_UNSLOTTED, path="src/repro/analysis/thing.py")
    assert "PERF001" not in codes(findings)


def test_perf001_exempts_slotted_dataclass_and_exceptions():
    findings = run_lint_on_source(
        "from dataclasses import dataclass\n"
        "@dataclass(slots=True)\n"
        "class Rec:\n"
        "    x: int = 0\n"
        "class BadThing(ValueError):\n"
        "    def __init__(self, msg):\n"
        "        self.msg = msg\n",
        path="src/repro/core/thing.py",
    )
    assert findings == []


# ---------------------------------------------------------------------------
# PERF003 — allocation / uncached attribute chains in `# lint: hot` functions
# ---------------------------------------------------------------------------

_HOT_COMPREHENSION = (
    "def drain(self, out):  # lint: hot\n"
    "    out.extend([e.item for e in self._heap])\n"
)


def test_perf003_catches_comprehension_in_hot_function():
    findings = run_lint_on_source(_HOT_COMPREHENSION)
    assert "PERF003" in codes(findings)


def test_perf003_catches_display_inside_hot_loop():
    findings = run_lint_on_source(
        "def pump(self, events):  # lint: hot\n"
        "    for e in events:\n"
        "        self.log.append({'t': e.t, 'id': e.id})\n"
    )
    assert "PERF003" in codes(findings)


def test_perf003_passes_preallocated_loop():
    findings = run_lint_on_source(
        "def drain(self, out):  # lint: hot\n"
        "    heap = self._heap\n"
        "    while heap:\n"
        "        out.append(heap.pop())\n"
    )
    assert "PERF003" not in codes(findings)


def test_perf003_ignores_unmarked_functions():
    findings = run_lint_on_source(
        "def cold(self, out):\n"
        "    out.extend([e.item for e in self._heap])\n"
    )
    assert "PERF003" not in codes(findings)


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def test_inline_disable_suppresses_matching_rule():
    findings = run_lint_on_source(
        "import time\n"
        "t = time.perf_counter()  # lint: disable=DET002  timing harness\n"
    )
    assert findings == []


def test_inline_disable_with_justification_after_code_list():
    # The justification is free-form text; it must not leak into codes.
    sup = parse_suppressions(
        "x = 1  # lint: disable=TAG001  exact copy, not recomputed arithmetic\n"
    )
    assert sup == {1: frozenset({"TAG001"})}


def test_inline_disable_multiple_codes():
    sup = parse_suppressions("x = 1  # lint: disable=DET002, TAG001\n")
    assert sup == {1: frozenset({"DET002", "TAG001"})}


def test_inline_disable_all():
    findings = run_lint_on_source(
        "import time\nt = time.time()  # lint: disable=all\n"
    )
    assert findings == []


def test_disable_for_other_rule_does_not_suppress():
    findings = run_lint_on_source(
        "import time\nt = time.time()  # lint: disable=TAG001\n"
    )
    assert "DET002" in codes(findings)


# ---------------------------------------------------------------------------
# Rule selection, findings model, CLI
# ---------------------------------------------------------------------------


def test_resolve_rules_select_and_ignore():
    only = resolve_rules(select=["DET001"])
    assert [r.code for r in only] == ["DET001"]
    rest = resolve_rules(ignore=["DET001"])
    assert "DET001" not in [r.code for r in rest]


def test_resolve_rules_rejects_unknown_codes():
    with pytest.raises(LintUsageError, match="NOPE42"):
        resolve_rules(select=["NOPE42"])


def test_registry_is_complete():
    assert set(all_rule_codes()) == set(RULES) == {
        "DET001", "DET002", "DET003", "DET004", "DET005", "TAG001",
        "PERF001", "PERF002", "PERF003",
    }
    assert set(all_project_rule_codes()) == set(PROJECT_RULES) == {
        "CACHE001", "TAG002", "DET006",
    }
    # The two families must never share a code: engine dedup keys on
    # (path, line, rule) across both registries.
    assert not set(RULES) & set(PROJECT_RULES)
    for rule in RULES.values():
        assert rule.summary
    for cls in PROJECT_RULES.values():
        assert cls.summary


# Registry-wide fixture sweep: every rule (module and project) must
# have a catching fixture and a passing fixture in the test suite.
# Adding a rule without them fails here, not silently in production.
_CATCHING = {
    "DET001": "test_det001_catches_module_level_random",
    "DET002": "test_det002_catches_wall_clock_in_simulation_code",
    "DET003": "test_det003_catches_set_iteration_feeding_heappush",
    "DET004": "test_det004_catches_id_in_comparator",
    "DET005": "test_det005_catches_raw_random_in_chaos_code",
    "DET006": "test_det006_catches_wallclock_through_helper_into_call_at",
    "TAG001": "test_tag001_catches_tag_equality",
    "TAG002": "test_tag002_catches_inline_eq4",
    "PERF001": "test_perf001_catches_unslotted_hot_path_class",
    "PERF002": "test_perf002_catches_heapq_in_simulation_package",
    "PERF003": "test_perf003_catches_comprehension_in_hot_function",
    "CACHE001": "test_cache001_catches_env_read_in_entry",
}
_PASSING = {
    "DET001": "test_det001_passes_seeded_generator",
    "DET002": "test_det002_passes_in_benchmarks_dir",
    "DET003": "test_det003_passes_with_sorted",
    "DET004": "test_det004_passes_uid_tiebreak",
    "DET005": "test_det005_passes_derived_seed",
    "DET006": "test_det006_passes_simulation_derived_time",
    "TAG001": "test_tag001_passes_ordering_comparison",
    "TAG002": "test_tag002_passes_disciplined_call",
    "PERF001": "test_perf001_passes_with_slots",
    "PERF002": "test_perf002_allows_eventq_itself",
    "PERF003": "test_perf003_passes_preallocated_loop",
    "CACHE001": "test_cache001_passes_pure_entry",
}


def test_every_rule_has_catching_and_passing_fixtures():
    import tests.test_lint as module_suite
    import tests.test_lint_project as project_suite

    every_code = set(all_rule_codes()) | set(all_project_rule_codes())
    assert set(_CATCHING) == set(_PASSING) == every_code
    for table in (_CATCHING, _PASSING):
        for code, test_name in table.items():
            assert hasattr(module_suite, test_name) or hasattr(
                project_suite, test_name
            ), f"{code}: fixture test {test_name} not found"


def test_syntax_error_reported_not_raised():
    findings = lint_source("def broken(:\n", path="x.py")
    assert codes(findings) == ["SYNTAX"]


def test_finding_format_and_sort_order():
    findings = run_lint_on_source("import random\nx = random.random()\n")
    line = findings[0].format()
    assert line.startswith("repro/core/fixture.py:")
    assert "DET001" in line
    assert findings == sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )


def test_render_text_and_json():
    findings = [Finding("DET001", "msg", "a.py", 3, 7)]
    text = render_text(findings)
    assert "a.py:3:7: DET001 msg" in text and "1 finding(s)" in text
    payload = json.loads(render_json(findings))
    assert payload["stats"]["total"] == 1
    assert payload["findings"][0]["rule"] == "DET001"
    assert render_text([]) == ""


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n")
    assert lint_main([str(bad)]) == 1
    capsys.readouterr()
    bad.write_text("x = 1\n")
    assert lint_main([str(bad)]) == 0
    assert lint_main([str(bad), "--select", "BOGUS"]) == 2


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in all_rule_codes():
        assert code in out
    for code in all_project_rule_codes():
        assert code in out


@pytest.mark.parametrize("code,source,subdir", [
    ("DET001", "import random\nx = random.random()\n", "core"),
    ("DET002", "import time\nt = time.time()\n", "core"),
    ("DET003", (
        "from heapq import heappush\n"
        "def f(items, heap):\n"
        "    for x in set(items):\n"
        "        heappush(heap, x)\n"
    ), "core"),
    ("DET004", "def sort_key(p):\n    return id(p)\n", "core"),
    ("DET005", "import random\nrng = random.Random(3)\n", "chaos"),
    ("TAG001", "def f(a, b):\n    return a.finish_tag == b.finish_tag\n", "core"),
    ("PERF001", _UNSLOTTED, "core"),
    ("PERF002", (
        "import heapq\n"
        "def f(queue, entry):\n"
        "    heapq.heappush(queue, entry)\n"
    ), "simulation"),
    ("PERF003", _HOT_COMPREHENSION, "core"),
    ("TAG002", (
        "def f(v, last_finish, length, rate):\n"
        "    return max(v, last_finish) + length / rate\n"
    ), "core"),
    ("DET006", (
        "import time\n"
        "def arm(sim, handler):\n"
        "    sim.call_at(time.time(), handler)\n"
    ), "simulation"),
])
def test_cli_nonzero_on_each_rules_catching_fixture(
    tmp_path, capsys, code, source, subdir
):
    fixture = tmp_path / "repro" / subdir / "fixture.py"
    fixture.parent.mkdir(parents=True, exist_ok=True)
    fixture.write_text(source)
    assert lint_main([str(fixture), "--select", code]) == 1
    out = capsys.readouterr().out
    assert code in out


# ---------------------------------------------------------------------------
# Self-check: the repo's own tree must lint clean
# ---------------------------------------------------------------------------


def test_repo_source_tree_lints_clean():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, (
        "the tree must lint clean; findings:\n" + proc.stdout + proc.stderr
    )
