"""Tests for Self-Clocked Fair Queuing."""

from __future__ import annotations

import pytest

from tests.helpers import drive_greedy, run_schedule, service_order
from repro.analysis.fairness import empirical_fairness_measure, scfq_fairness_bound
from repro.core import SCFQ, Packet
from repro.servers import ConstantCapacity, TwoRateSquareWave


def test_schedules_in_finish_tag_order():
    # A blocker occupies the server while a and b queue up; then SCFQ
    # must pick b (F=5) before a (F=10) despite a arriving first.
    link = run_schedule(
        SCFQ(),
        ConstantCapacity(100.0),
        [(0.0, "z", 100), (0.0, "a", 1000), (0.0, "b", 500)],
        weights={"z": 100.0, "a": 100.0, "b": 100.0},
    )
    assert service_order(link) == [("z", 0), ("b", 0), ("a", 0)]


def test_virtual_time_is_finish_tag_of_packet_in_service():
    scfq = SCFQ()
    scfq.add_flow("f", 100.0)
    scfq.enqueue(Packet("f", 200, seqno=0), 0.0)
    p = scfq.dequeue(0.0)
    assert scfq.virtual_time == p.finish_tag == 2.0


def test_arrival_during_service_starts_at_v():
    scfq = SCFQ()
    scfq.add_flow("a", 100.0)
    scfq.add_flow("b", 100.0)
    scfq.enqueue(Packet("a", 200, seqno=0), 0.0)
    scfq.dequeue(0.0)  # v = 2.0 (finish tag)
    pb = Packet("b", 100, seqno=0)
    scfq.enqueue(pb, 1.0)
    # SCFQ: S = max(v=2, F_prev=0) = 2 (SFQ would have used v = 0).
    assert pb.start_tag == 2.0
    assert pb.finish_tag == 3.0


def test_weighted_shares():
    link = drive_greedy(
        SCFQ(),
        ConstantCapacity(3000.0),
        [("a", 1000.0, 100, 600), ("b", 2000.0, 100, 600)],
        until=10.0,
    )
    wa = link.tracer.work_in_interval("a", 0, 10)
    wb = link.tracer.work_in_interval("b", 0, 10)
    assert wb / wa == pytest.approx(2.0, rel=0.05)


def test_fairness_bound_holds_on_variable_rate():
    link = drive_greedy(
        SCFQ(),
        TwoRateSquareWave(4000.0, 1.0, 0.0, 1.0),
        [("f", 1000.0, 400, 200), ("m", 500.0, 250, 200)],
    )
    h = empirical_fairness_measure(link.tracer, "f", "m", 1000.0, 500.0)
    assert h <= scfq_fairness_bound(400, 1000.0, 250, 500.0) + 1e-9


def test_scfq_delays_low_rate_flow_more_than_sfq():
    """The paper's core SCFQ critique: a freshly backlogged low-rate
    flow waits ~l/r under SCFQ vs ~l/C under SFQ."""
    from repro.core import SFQ

    schedule = [(0.0, "big", 100)] * 50 + [(2.05, "slow", 100)]
    delays = {}
    for name, sched in (("SCFQ", SCFQ()), ("SFQ", SFQ())):
        link = run_schedule(
            sched,
            ConstantCapacity(100.0),
            schedule,
            weights={"big": 90.0, "slow": 10.0},
        )
        record = link.tracer.for_flow("slow")[0]
        delays[name] = record.departure - record.arrival
    assert delays["SFQ"] < delays["SCFQ"]


def test_peek_matches_dequeue():
    scfq = SCFQ()
    scfq.add_flow("a", 1.0)
    scfq.enqueue(Packet("a", 100, seqno=0), 0.0)
    assert scfq.dequeue(0.0) is not None
    assert scfq.peek(0.0) is None
