"""Integration tests: each experiment module runs (scaled down where
needed) and its headline qualitative claim from the paper holds."""

from __future__ import annotations

import pytest

from repro.experiments.delay_bounds_exp import run_delay_bounds
from repro.experiments.delay_edd_exp import run_delay_edd
from repro.experiments.delay_shifting import run_delay_shifting
from repro.experiments.end_to_end_exp import run_end_to_end
from repro.experiments.examples_1_2 import run_example1, run_example2
from repro.experiments.fair_airport_exp import run_fair_airport
from repro.experiments.figure1 import run_figure1_variant
from repro.experiments.figure2a import run_figure2a
from repro.experiments.figure2b import run_point
from repro.experiments.figure3 import run_figure3
from repro.experiments.harness import ExperimentResult
from repro.experiments.link_sharing_exp import run_link_sharing
from repro.experiments.table1 import run_table1
from repro.experiments.throughput_bounds import run_throughput_bounds


def test_harness_table_rendering():
    result = ExperimentResult("X", "desc", headers=["a", "b"])
    result.add_row(1, 2.5)
    result.note("n")
    text = result.render()
    assert "X" in text and "2.5" in text and "n" in text
    with pytest.raises(ValueError):
        result.add_row(1)


def test_example1_gap_reaches_twice_lower_bound():
    result = run_example1()
    assert result.data["gap"] == pytest.approx(2 * result.data["lower_bound"])


def test_example2_wfq_starves_newcomer_sfq_splits():
    result = run_example2(c=10.0)
    wfq_f, wfq_m = result.data["counts"]["WFQ"]
    sfq_f, sfq_m = result.data["counts"]["SFQ"]
    assert wfq_m <= 1  # paper: W_m(1,2) <= 1
    assert wfq_f >= 9  # paper: W_f(1,2) >= C-1
    assert abs(sfq_f - sfq_m) <= 1  # SFQ splits evenly


def test_table1_claims():
    result = run_table1()
    rows = result.data["rows"]
    bound = result.data["sfq_bound"]
    # Theorem 1: SFQ and SCFQ within bound on both server kinds.
    for algo in ("SFQ", "SCFQ"):
        assert rows[algo]["const"] <= bound + 1e-9
        assert rows[algo]["variable"] <= bound + 1e-9
    # WFQ/FQS blow past the bound on the variable-rate server.
    assert rows["WFQ"]["variable"] > 2 * bound
    assert rows["FQS"]["variable"] > 2 * bound
    # DRR unfairness grows with the quantum.
    assert (
        rows["DRR (quantum=16xlmax)"]["const"]
        > 4 * rows["DRR (quantum=1xlmax)"]["const"]
    )


def test_figure1_wfq_starves_late_tcp_flow_sfq_does_not():
    wfq = run_figure1_variant("WFQ")
    sfq = run_figure1_variant("SFQ")
    # Paper: src3 got 2 pkts in its first 435 ms under WFQ, 145 under SFQ.
    assert wfq.src3_first_435ms <= 15
    assert sfq.src3_first_435ms >= 80
    # Paper: SFQ splits the last 500 ms nearly evenly (189 vs 190).
    assert sfq.src3_last_half == pytest.approx(sfq.src2_last_half, rel=0.15)
    # Paper: WFQ gives src2 a large advantage.
    assert wfq.src2_last_half > 3 * wfq.src3_last_half


def test_figure2a_crossover_and_mixed_example():
    result = run_figure2a()
    # Low-rate flows gain, high-rate flows in crowded systems lose.
    series = result.data["series"]
    assert series[200][0] > 0  # 16 Kb/s, |Q|=200: SFQ wins
    assert series[400][-1] < 0  # 1 Mb/s, |Q|=400: WFQ wins
    # The paper's numeric example: ~20.4 ms gain / ~2.5 ms loss.
    assert result.data["audio_delta"] == pytest.approx(0.0204, rel=0.05)
    assert -result.data["video_delta"] == pytest.approx(0.0025, rel=0.15)


def test_figure2b_wfq_delay_higher_for_low_throughput_flows():
    wfq = run_point("WFQ", n_low=4, duration=60.0)
    sfq = run_point("SFQ", n_low=4, duration=60.0)
    assert wfq.utilization == pytest.approx(0.828, abs=1e-3)
    assert wfq.avg_delay_low > 1.2 * sfq.avg_delay_low


def test_figure3_phase_ratios():
    result = run_figure3(packets_per_connection=1500)
    p1 = result.data["phases"]["p1"]
    assert p1["w2"] / p1["w1"] == pytest.approx(2.0, rel=0.05)
    assert p1["w3"] / p1["w1"] == pytest.approx(3.0, rel=0.05)
    p2 = result.data["phases"]["p2"]
    assert p2["w3"] == 0
    assert p2["w2"] / p2["w1"] == pytest.approx(2.0, rel=0.05)
    p3 = result.data["phases"]["p3"]
    assert p3["w2"] == 0 and p3["w3"] == 0 and p3["w1"] > 0


def test_throughput_bounds_hold():
    result = run_throughput_bounds()
    for server, worst in result.data["worst_slack"].items():
        for flow, slack in worst.items():
            assert slack >= -1e-9, (server, flow)


def test_delay_bounds_hold_and_sfq_beats_scfq():
    result = run_delay_bounds(horizon=15.0)
    checks = result.data["checks"]
    for server, per_sched in checks.items():
        for sched, flows in per_sched.items():
            for flow, (slack, _maxd) in flows.items():
                assert slack >= -1e-9, (server, sched, flow)
    const = checks["constant"]
    assert const["SFQ"]["slow"][1] < const["SCFQ"]["slow"][1]


def test_end_to_end_bound_holds_and_gap_grows():
    result = run_end_to_end(max_hops=3, horizon=6.0)
    per_k = result.data["per_k"]
    for k, row in per_k.items():
        assert row["worst_slack"] >= -1e-9
    assert per_k[3]["scfq_gap"] == pytest.approx(3 * per_k[1]["scfq_gap"])


def test_link_sharing_phases():
    result = run_link_sharing()
    p1, p2, p3 = result.data["phases"]
    assert p1["fc"] == pytest.approx(p1["fb"], rel=0.05)
    assert p1["fd"] == 0
    assert p2["fc"] == pytest.approx(p2["fd"], rel=0.1)
    assert p2["fb"] == pytest.approx(p2["fc"] + p2["fd"], rel=0.1)
    assert p3["fc"] == pytest.approx(p3["fd"], rel=0.05)
    assert result.data["recursive_measured"] >= result.data["recursive_floor"]


def test_delay_shifting_condition_and_measurement():
    result = run_delay_shifting()
    assert result.data["condition"]
    assert result.data["part_bound"] < result.data["flat_bound"]
    measured = result.data["measured"]
    assert measured["part_fast"] < measured["flat_fast"]
    assert measured["part_slow"] >= measured["flat_slow"]


def test_delay_edd_bounds_hold():
    result = run_delay_edd()
    assert result.data["schedulable"]
    for server, checks in result.data["checks"].items():
        for flow, slack in checks.items():
            assert slack >= -1e-9, (server, flow)


def test_ebf_delay_tail_under_envelope():
    from repro.experiments.ebf_delay import run_ebf_delay

    result = run_ebf_delay(n_runs=3, horizon=12.0)
    for gamma, p in result.data["measured"].items():
        assert p <= result.data["envelope"][gamma] + 1e-9


def test_residual_is_fc_and_theorem4_applies():
    from repro.experiments.residual_exp import run_residual

    result = run_residual()
    assert result.data["residual_delta"] <= result.data["sigma"] + 1e-6
    assert min(result.data["worst_slack"].values()) >= -1e-9


def test_vbr_per_packet_rates():
    from repro.experiments.vbr_rates import run_vbr_rates

    result = run_vbr_rates()
    assert result.data["admission"]
    assert result.data["worst_slack"] >= -1e-9


def test_figure1_charts_attached():
    from repro.experiments.figure1 import run_figure1

    result = run_figure1()
    assert len(result.data["charts"]) == 2
    assert "tcp3" in result.data["charts"][0]


def test_example1_gap_depends_on_tie_breaking():
    """The paper's Example 1 needs its adversarial service order; with
    FIFO tie-breaking WFQ would not reach the full 2x gap — evidence
    that the bound is an 'at least', realized by *some* tie-break."""
    from repro.core import WFQ, Packet, TieBreak
    from repro.servers import ConstantCapacity, Link
    from repro.simulation import Simulator
    from repro.analysis.fairness import empirical_fairness_measure

    gaps = {}
    for name, rule in (
        ("adversarial", lambda st, p: (0 if p.flow == "m" else 1,)),
        ("fifo", TieBreak.fifo),
    ):
        sim = Simulator()
        wfq = WFQ(assumed_capacity=2000.0, tie_break=rule)
        wfq.add_flow("f", 1000.0)
        wfq.add_flow("m", 1000.0)
        link = Link(sim, wfq, ConstantCapacity(2000.0))

        def inject():
            link.send(Packet("f", 1000, seqno=0))
            link.send(Packet("f", 1000, seqno=1))
            link.send(Packet("m", 1000, seqno=0))
            link.send(Packet("m", 500, seqno=1))
            link.send(Packet("m", 500, seqno=2))

        sim.at(0.0, inject)
        sim.run()
        gaps[name] = empirical_fairness_measure(link.tracer, "f", "m", 1000.0, 1000.0)
    assert gaps["adversarial"] == pytest.approx(2.0)
    assert gaps["fifo"] < gaps["adversarial"]


def test_seed_sweep_statistics():
    from repro.experiments.robustness import seed_sweep

    mean, std, values = seed_sweep(lambda s: float(s), [1, 2, 3])
    assert mean == pytest.approx(2.0)
    assert std == pytest.approx(1.0)
    assert values == [1.0, 2.0, 3.0]
    mean1, std1, _ = seed_sweep(lambda s: 5.0, [9])
    assert (mean1, std1) == (5.0, 0.0)


def test_fair_airport_bounds_hold():
    result = run_fair_airport()
    for server, case in result.data["cases"].items():
        assert min(case["delays"].values()) >= -1e-6
        for pair, (measured, bound) in case["fairness"].items():
            assert measured <= bound + 1e-9
    # The variable-rate case must exercise the ASQ (work conservation).
    assert result.data["cases"]["variable >= C"]["asq"] > 0
