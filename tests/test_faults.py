"""Tests for the fault-injection subsystem and invariant monitors."""

from __future__ import annotations

import pytest

from repro.core.drr import DRR
from repro.core.packet import Packet
from repro.core.sfq import SFQ
from repro.faults import (
    FlowChurn,
    InvariantViolation,
    LinkOutage,
    PacketFaults,
    ServerStall,
    WeightReconfig,
    install_monitors,
)
from repro.faults.monitors import FairnessMonitor, VirtualTimeMonitor
from repro.network import Switch
from repro.servers.base import ConstantCapacity
from repro.servers.link import Link
from repro.simulation import Simulator
from repro.simulation.random import RandomStreams
from repro.traffic.cbr import BulkSource, CBRSource
from repro.transport.sink import PacketSink


def make_link(sim, capacity=1000.0, scheduler=None, name="link"):
    scheduler = scheduler if scheduler is not None else SFQ()
    return Link(sim, scheduler, ConstantCapacity(capacity), name=name)


def feed(sim, link, flow, times, length=1000):
    """Schedule one packet of ``flow`` per entry of ``times``."""
    for seqno, t in enumerate(times):
        def _send(t=t, seqno=seqno):
            link.send(Packet(flow, length, arrival=t, seqno=seqno))

        sim.at(t, _send)


# ----------------------------------------------------------------------
# Link pause / resume
# ----------------------------------------------------------------------
def test_pause_aborts_in_flight_and_replay_retransmits():
    sim = Simulator()
    link = make_link(sim)  # 1000 b/s, 1000 b packets: 1 s service
    sink = PacketSink()
    link.departure_hooks.append(sink.on_packet)
    feed(sim, link, "f", [0.0])
    sim.at(0.5, link.pause)
    sim.at(2.0, link.resume)  # replay: full retransmission from t=2
    sim.run()
    assert sink.received["f"] == [(3.0, 0)]
    assert link.packets_transmitted == 1
    assert link.packets_dropped == 0


def test_resume_drop_discards_in_flight_and_serves_next():
    sim = Simulator()
    link = make_link(sim)
    sink = PacketSink()
    dropped = []
    link.departure_hooks.append(sink.on_packet)
    link.drop_hooks.append(lambda p, t: dropped.append((p, t)))
    feed(sim, link, "f", [0.0, 0.1])
    sim.at(0.5, link.pause)
    sim.at(2.0, link.resume, "drop")
    sim.run()
    # Packet 0 was on the wire at the outage and is lost; packet 1 is
    # served from t=2.
    assert sink.received["f"] == [(3.0, 1)]
    assert link.packets_dropped == 1
    assert dropped[0][0].seqno == 0
    assert dropped[0][0].meta.get("outage_drop") is True
    assert link.scheduler.is_empty


def test_arrivals_during_outage_queue_and_drain_on_resume():
    sim = Simulator()
    link = make_link(sim)
    sink = PacketSink()
    link.departure_hooks.append(sink.on_packet)
    link.pause()
    feed(sim, link, "f", [0.0, 0.2, 0.4])
    sim.at(5.0, link.resume)
    sim.run()
    assert [t for t, _ in sink.received["f"]] == [6.0, 7.0, 8.0]
    assert not link.paused


def test_pause_resume_counted_semantics():
    sim = Simulator()
    link = make_link(sim)
    link.resume()  # resume of an up link: no-op
    assert link.pause_depth == 0
    link.pause()
    link.pause()  # second hold stacks (composed injectors)
    assert link.paused
    assert link.pause_depth == 2
    link.resume()
    assert link.paused  # one hold still outstanding
    link.resume()
    assert not link.paused
    link.resume()  # extra resume stays a no-op
    assert link.pause_depth == 0
    with pytest.raises(ValueError):
        link.resume(recovery="retry")


def test_overlapping_holds_keep_in_flight_packet():
    # Outage A hits mid-transmission; outage B opens and closes *inside*
    # A's window with recovery="drop". The in-flight packet belongs to
    # the outer hold: it must survive B's release and be replayed when A
    # finally resumes — not double-aborted, not destroyed by B's drop.
    sim = Simulator()
    link = make_link(sim)  # 1000 b/s, 1000 b packets: 1 s service
    sink = PacketSink()
    link.departure_hooks.append(sink.on_packet)
    feed(sim, link, "f", [0.0])
    sim.at(0.5, link.pause)  # A down, packet aborted mid-wire
    sim.at(1.0, link.pause)  # B down (overlapping)
    sim.at(2.0, link.resume, "drop")  # B up: inner release, no recovery yet
    sim.at(3.0, link.resume)  # A up: replay from scratch
    sim.run()
    assert sink.received["f"] == [(4.0, 0)]
    assert link.packets_transmitted == 1
    assert link.packets_dropped == 0


def test_back_to_back_outages_from_two_injectors():
    # Injector A owns [1, 2], injector B owns [2, 3]. At t=2 the event
    # order may interleave B's down before A's up; counted holds make
    # the link stay continuously dark over [1, 3] either way, and the
    # packet interrupted at t=1 is replayed exactly once at t=3.
    sim = Simulator()
    link = make_link(sim)
    sink = PacketSink()
    link.departure_hooks.append(sink.on_packet)
    feed(sim, link, "f", [0.5])  # in service over [0.5, 1.5) — interrupted
    a = LinkOutage(sim, link, schedule=[(1.0, 2.0)])
    b = LinkOutage(sim, link, schedule=[(2.0, 3.0)])
    b.start()  # started first so B's _down fires before A's _up at t=2
    a.start()
    states = []
    for t in (0.5, 1.5, 2.5, 3.5):
        sim.at(t, lambda: states.append(link.paused))
    sim.run()
    assert states == [False, True, True, False]
    assert a.outages == 1 and b.outages == 1
    assert sink.received["f"] == [(4.0, 0)]
    assert link.packets_transmitted == 1
    assert link.packets_dropped == 0
    assert a.downtime == pytest.approx(1.0)
    assert b.downtime == pytest.approx(1.0)


def test_zero_capacity_episode_cannot_deadlock():
    # A link that is down for the whole horizon still terminates the
    # run, and the queue survives to drain in a later run.
    sim = Simulator()
    link = make_link(sim)
    sink = PacketSink()
    link.departure_hooks.append(sink.on_packet)
    feed(sim, link, "f", [0.0, 0.5])
    sim.at(0.1, link.pause)
    sim.run(until=10.0)
    assert sink.received.get("f", []) == []
    link.resume()
    sim.run()
    assert len(sink.received["f"]) == 2


# ----------------------------------------------------------------------
# LinkOutage injector
# ----------------------------------------------------------------------
def test_outage_schedule_validation():
    sim = Simulator()
    link = make_link(sim)
    with pytest.raises(ValueError):
        LinkOutage(sim, link, schedule=[(2.0, 1.0)])  # inverted
    with pytest.raises(ValueError):
        LinkOutage(sim, link, schedule=[(1.0, 3.0), (2.0, 4.0)])  # overlap
    with pytest.raises(ValueError):
        LinkOutage(sim, link)  # neither schedule nor streams
    with pytest.raises(ValueError):
        LinkOutage(
            sim, link, schedule=[(1.0, 2.0)], streams=RandomStreams(0),
            mean_time_to_failure=1.0, mean_outage=1.0,
        )  # both
    with pytest.raises(ValueError):
        LinkOutage(sim, link, streams=RandomStreams(0))  # missing means
    with pytest.raises(ValueError):
        LinkOutage(sim, link, schedule=[(1.0, 2.0)], recovery="retry")


def test_deterministic_outage_schedule_drives_link():
    sim = Simulator()
    link = make_link(sim)
    outage = LinkOutage(sim, link, schedule=[(1.0, 2.0), (4.0, 4.5)])
    outage.start()
    states = []
    for t in (0.5, 1.5, 3.0, 4.2, 5.0):
        sim.at(t, lambda: states.append(link.paused))
    sim.run()
    assert states == [False, True, False, True, False]
    assert outage.outages == 2
    assert outage.downtime == pytest.approx(1.5)


def test_seeded_outage_is_reproducible():
    def run(seed):
        sim = Simulator()
        link = make_link(sim)
        outage = LinkOutage(
            sim, link, streams=RandomStreams(seed),
            mean_time_to_failure=1.0, mean_outage=0.5, stop_time=20.0,
        )
        outage.start()
        sim.run(until=30.0)
        return outage.outages, outage.downtime

    assert run(3) == run(3)
    assert run(3) != run(4)


# ----------------------------------------------------------------------
# FlowChurn injector
# ----------------------------------------------------------------------
def test_churn_joins_and_removes_flows():
    sim = Simulator()
    link = make_link(sim, capacity=1e6, scheduler=SFQ(auto_register=False))
    link.scheduler.add_flow("base", 1.0)
    CBRSource(sim, "base", link.send, 3e5, 8000).start()

    def make_source(fid, start, stop):
        return CBRSource(
            sim, fid, link.send, 3e5, 8000, start_time=start, stop_time=stop
        )

    churn = FlowChurn(
        sim, link, make_source, streams=RandomStreams(1),
        flow_ids=["c1", "c2"], mean_on=1.0, mean_off=0.5,
        weight=1.0, stop_time=20.0,
    )
    churn.start()
    sim.run(until=30.0)
    assert churn.joins > 1
    assert churn.leaves == churn.joins  # horizon leaves time to drain
    # Every churn flow left drained and deregistered.
    assert set(link.scheduler.flows) == {"base"}
    assert churn.active == set()


def test_churn_removal_waits_for_backlog_drain():
    sim = Simulator()
    link = make_link(sim)  # 1000 b/s: slow enough to hold a backlog
    churn = FlowChurn(
        sim, link,
        lambda fid, start, stop: BulkSource(
            sim, fid, link.send, 1000, 5, start_time=start
        ),
        streams=RandomStreams(2),
        flow_ids=["c"], mean_on=0.001, mean_off=0.001, stop_time=0.05,
    )
    churn.start()
    # The flow joins almost immediately, dumps its bulk burst and
    # leaves; stop_time prevents any re-join. The burst outlives the
    # tiny on-period, so the flow must linger (backlogged) well past
    # its leave time.
    sim.run(until=2.0)
    assert churn.joins == 1
    assert churn.leaves == 0
    assert "c" in link.scheduler.flows
    sim.run(until=10.0)  # 5 packets x 1 s each: drained by t=5
    assert churn.leaves == 1
    assert "c" not in link.scheduler.flows


def test_rejoining_flow_restarts_tags_at_current_virtual_time():
    # SFQ's restart rule: after remove_flow/add_flow the tag chain
    # restarts at v(t), not at the flow's stale last finish tag.
    sim = Simulator()
    scheduler = SFQ(auto_register=False)
    scheduler.add_flow("a", 1.0)
    scheduler.add_flow("b", 1.0)
    link = make_link(sim, scheduler=scheduler)
    feed(sim, link, "a", [0.0])
    feed(sim, link, "b", [0.0, 0.1, 0.2, 0.3])
    sim.run(until=4.5)  # a drained long ago; b advanced v
    scheduler.remove_flow("a")
    scheduler.add_flow("a", 1.0)
    packet = Packet("a", 1000, arrival=sim.now, seqno=1)
    link.send(packet)
    assert packet.start_tag == pytest.approx(scheduler.virtual_time)


# ----------------------------------------------------------------------
# PacketFaults injector
# ----------------------------------------------------------------------
def test_packet_faults_loss():
    sim = Simulator()
    link = make_link(sim)
    faults = PacketFaults(
        sim, link.send, streams=RandomStreams(0), p_loss=1.0
    )
    feed(sim, faults, "f", [0.0, 0.1, 0.2])
    sim.run()
    assert faults.lost == 3
    assert faults.delivered == 0
    assert link.packets_transmitted == 0


def test_packet_faults_misroute_hits_switch_drop_policy():
    sim = Simulator()
    switch = Switch(sim, no_route_policy="drop")
    link = make_link(sim, capacity=1e6)
    switch.add_port("out", link)
    switch.add_route("f", "out")
    no_route = []
    switch.drop_hooks.append(lambda p, t: no_route.append(p))
    faults = PacketFaults(
        sim, switch.receive, streams=RandomStreams(0), p_misroute=1.0
    )
    feed(sim, faults, "f", [0.0, 0.1])
    sim.run()
    assert faults.misrouted == 2
    assert switch.packets_dropped_no_route == 2
    assert switch.packets_forwarded == 0
    assert no_route[0].flow == "__misrouted__"
    assert no_route[0].meta["misrouted_from"] == "f"


def test_packet_faults_reordering_delays_delivery():
    sim = Simulator()
    delivered = []
    faults = PacketFaults(
        sim,
        lambda p: delivered.append((sim.now, p.seqno)),
        streams=RandomStreams(5),
        p_reorder=1.0,
        max_reorder_delay=0.5,
    )
    feed(sim, faults, "f", [0.0, 0.01, 0.02, 0.03])
    sim.run()
    assert faults.reordered == 4
    assert faults.delivered == 4
    assert all(t > 0.0 for t, _ in delivered)
    # Seeded draws are deterministic, and at least one pair overtakes.
    seqnos = [s for _, s in delivered]
    assert seqnos != sorted(seqnos)


def test_packet_faults_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PacketFaults(sim, lambda p: None, streams=RandomStreams(0), p_loss=1.5)
    with pytest.raises(ValueError):
        PacketFaults(
            sim, lambda p: None, streams=RandomStreams(0), p_reorder=0.5
        )  # reorder without max_reorder_delay


# ----------------------------------------------------------------------
# Invariant monitors
# ----------------------------------------------------------------------
def overload_two_flows(sim, link, rate_each):
    for flow in ("a", "b"):
        link.scheduler.add_flow(flow, 1.0)
        CBRSource(sim, flow, link.send, rate_each, 1000).start()


def test_monitors_stay_clean_on_sfq():
    sim = Simulator()
    link = make_link(sim, capacity=1000.0, scheduler=SFQ(auto_register=False))
    monitors = install_monitors(link, mode="record")
    overload_two_flows(sim, link, 700.0)  # 1.4x overload
    sim.run(until=60.0)
    monitors.audit()
    assert monitors.ok
    assert monitors.violations == []
    # Both flows stayed backlogged; the observed gap respects Theorem 1.
    assert monitors.fairness.max_gap <= 2 * 1000.0 + 1e-6


class StarvingSFQ(SFQ):
    """Deliberately broken SFQ: flow 'a' always gets start tag 0.

    This is the mutation the monitors must catch — 'a' monopolizes the
    link while 'b' starves (fairness), and serving tag 0 after higher
    tags drags v(t) backwards (virtual-time monotonicity).
    """

    def _tag_packet(self, state, packet, now):
        if packet.flow != "a":
            return super()._tag_packet(state, packet, now)
        packet.start_tag = 0.0
        packet.finish_tag = packet.length / state.packet_rate(packet)
        return 0.0


def test_monitors_fire_on_broken_scheduler():
    sim = Simulator()
    link = make_link(
        sim, capacity=1000.0, scheduler=StarvingSFQ(auto_register=False)
    )
    monitors = install_monitors(link, mode="record")
    overload_two_flows(sim, link, 700.0)
    sim.run(until=60.0)
    assert not monitors.ok
    assert len(monitors.fairness.violations) > 0
    assert len(monitors.virtual_time.violations) > 0
    first = monitors.violations[0]
    assert first.window[0] <= first.time <= 60.0
    assert "SFQ" in str(first)


def test_monitor_raise_mode_aborts_run():
    sim = Simulator()
    link = make_link(
        sim, capacity=1000.0, scheduler=StarvingSFQ(auto_register=False)
    )
    install_monitors(link, mode="raise")
    overload_two_flows(sim, link, 700.0)
    with pytest.raises(InvariantViolation):
        sim.run(until=60.0)


def test_conservation_auditor_detects_silent_loss():
    sim = Simulator()
    link = make_link(sim)
    monitors = install_monitors(link, mode="record")
    link.pause()
    feed(sim, link, "f", [0.0, 0.1])
    sim.run(until=1.0)
    # Steal a queued packet behind the link's back: no hook fires.
    assert link.scheduler.dequeue(sim.now) is not None
    monitors.audit()
    assert not monitors.conservation.ok
    assert "unaccounted" in str(monitors.conservation.violations[0])


def test_virtual_time_monitor_rejects_untagged_scheduler():
    sim = Simulator()
    link = make_link(sim, scheduler=DRR())
    with pytest.raises(TypeError):
        VirtualTimeMonitor(link)
    # install_monitors auto-detects and simply skips it.
    monitors = install_monitors(link, mode="record")
    assert monitors.virtual_time is None
    assert monitors.fairness is not None


def test_fairness_monitor_infinite_bound_factor_only_measures():
    sim = Simulator()
    link = make_link(
        sim, capacity=1000.0, scheduler=StarvingSFQ(auto_register=False)
    )
    monitor = FairnessMonitor(link, mode="raise", bound_factor=float("inf"))
    overload_two_flows(sim, link, 700.0)
    sim.run(until=30.0)  # does not raise
    assert monitor.max_gap > 2 * 1000.0
    assert monitor.max_gap_pair == ("a", "b")


def test_monitors_clean_through_outage_and_churn():
    # The full fault cocktail on a correct SFQ link: monitors must not
    # produce false positives.
    from repro.experiments.fault_tolerance import run_churn_scenario

    stats, monitors = run_churn_scenario(seed=2)
    assert monitors.ok, [str(v) for v in monitors.violations]
    assert stats["joins"] > 0 and stats["outages"] > 0


def test_faulted_run_same_seed_identical_trace():
    from repro.experiments.fault_tolerance import run_outage_scenario

    _, _, a = run_outage_scenario("SFQ", seed=11)
    _, _, b = run_outage_scenario("SFQ", seed=11)
    assert a["receive_series"] == b["receive_series"]


# ----------------------------------------------------------------------
# Switch no-route policy (graceful degradation)
# ----------------------------------------------------------------------
def test_switch_no_route_drop_policy_counts_and_continues():
    sim = Simulator()
    switch = Switch(sim, no_route_policy="drop")
    link = make_link(sim, capacity=1e6)
    switch.add_port("out", link)
    switch.add_route("known", "out")
    switch.receive(Packet("known", 1000))
    switch.receive(Packet("ghost", 1000))
    switch.receive(Packet("ghost", 1000))
    assert switch.packets_forwarded == 1
    assert switch.packets_dropped_no_route == 2


def test_switch_no_route_policy_validation_and_route_removal():
    sim = Simulator()
    with pytest.raises(ValueError):
        Switch(sim, no_route_policy="ignore")
    switch = Switch(sim, no_route_policy="drop")
    link = make_link(sim, capacity=1e6)
    switch.add_port("out", link)
    switch.add_route("f", "out")
    switch.remove_route("f")
    switch.remove_route("never-installed")  # no-op
    switch.receive(Packet("f", 1000))
    assert switch.packets_dropped_no_route == 1


# ----------------------------------------------------------------------
# ServerStall
# ----------------------------------------------------------------------
def test_server_stall_defers_service_without_losing_work():
    sim = Simulator()
    link = make_link(sim)  # 1000 b/s, 1000 b packets: 1 s service
    sink = PacketSink()
    link.departure_hooks.append(sink.on_packet)
    feed(sim, link, "f", [0.0, 0.1])
    # Stall opens mid-service of packet 0: the in-flight packet
    # finishes on time, only packet 1's start is deferred.
    stall = ServerStall(sim, link, schedule=[(0.5, 2.0)])
    stall.start()
    sim.run()
    assert sink.received["f"] == [(1.0, 0), (3.5, 1)]
    assert link.packets_dropped == 0
    assert stall.stalls == 1
    assert not link.paused


def test_server_stall_schedule_validation():
    sim = Simulator()
    link = make_link(sim)
    with pytest.raises(ValueError):
        ServerStall(sim, link)  # neither mode
    with pytest.raises(ValueError):
        ServerStall(sim, link, schedule=[(0.0, 1.0)],
                    streams=RandomStreams(1))  # both modes
    with pytest.raises(ValueError):
        ServerStall(sim, link, schedule=[(0.0, 1.0), (0.5, 1.0)])  # overlap
    with pytest.raises(ValueError):
        ServerStall(sim, link, schedule=[(0.0, 0.0)])  # empty window
    with pytest.raises(ValueError):
        ServerStall(sim, link, streams=RandomStreams(1))  # missing means


def test_seeded_server_stalls_reproducible_and_clean():
    def run(seed):
        sim = Simulator()
        link = make_link(sim, capacity=4000.0)
        sink = PacketSink()
        link.departure_hooks.append(sink.on_packet)
        monitors = install_monitors(link, bound_factor=float("inf"))
        link.scheduler.add_flow("f", 1.0)
        CBRSource(sim, "f", link.send, rate=3000.0, packet_length=1000,
                  stop_time=4.0).start()
        stall = ServerStall(
            sim, link, streams=RandomStreams(seed),
            mean_time_between=0.4, mean_stall=0.1, stop_time=4.0,
        )
        stall.start()
        sim.run(until=6.0)
        monitors.audit()
        assert not monitors.violations
        assert stall.stalls > 0
        return sink.received["f"]

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_stall_spanning_outage_defers_next_service():
    sim = Simulator()
    link = make_link(sim)
    sink = PacketSink()
    link.departure_hooks.append(sink.on_packet)
    feed(sim, link, "f", [0.0, 0.1])
    # Outage [0.5, 2.0) aborts packet 0 mid-service; replay retransmits
    # it over [2.0, 3.0]. The stall window [1.0, 4.5) opens while that
    # packet is logically on the wire (replay pending), so the freeze
    # stays pending until the replayed transmission completes at t=3.0,
    # then holds the link until t=4.5: packet 1 is served over
    # [4.5, 5.5]. No hold is leaked and no work is lost.
    LinkOutage(sim, link, schedule=[(0.5, 2.0)]).start()
    stall = ServerStall(sim, link, schedule=[(1.0, 3.5)])
    stall.start()
    sim.run()
    assert sink.received["f"] == [(3.0, 0), (5.5, 1)]
    assert link.pause_depth == 0
    assert link.packets_dropped == 0


def test_stall_window_inside_outage_never_takes_hold():
    sim = Simulator()
    link = make_link(sim)
    sink = PacketSink()
    link.departure_hooks.append(sink.on_packet)
    feed(sim, link, "f", [0.0])
    # The entire stall window [1.0, 1.5) falls inside the outage
    # [0.5, 2.0) while packet 0 is replay-pending: the freeze defers to
    # the in-flight packet, the window closes first, and the stall must
    # release its pending state without ever pausing — the outage's own
    # recovery timeline is untouched.
    LinkOutage(sim, link, schedule=[(0.5, 2.0)]).start()
    stall = ServerStall(sim, link, schedule=[(1.0, 0.5)])
    stall.start()
    sim.run()
    assert sink.received["f"] == [(3.0, 0)]
    assert link.pause_depth == 0
    assert link.packets_dropped == 0


# ----------------------------------------------------------------------
# WeightReconfig
# ----------------------------------------------------------------------
def test_weight_reconfig_applies_and_skips():
    sim = Simulator()
    link = make_link(sim)
    observed = []
    link.scheduler.add_flow("a", 1.0)
    reconfig = WeightReconfig(
        sim, link,
        events=[(1.0, "a", 3.0), (2.0, "ghost", 1.0)],
        on_reweight=lambda flow, weight, now: observed.append(
            (flow, weight, now)
        ),
    )
    reconfig.start()
    sim.run()
    assert reconfig.applied == 1
    assert reconfig.skipped == 1  # 'ghost' is unknown: counted, not fatal
    assert observed == [("a", 3.0, 1.0)]
    assert link.scheduler.flows["a"].weight == 3.0


def test_weight_reconfig_validation():
    sim = Simulator()
    link = make_link(sim)
    with pytest.raises(ValueError):
        WeightReconfig(sim, link)  # neither mode
    with pytest.raises(ValueError):
        WeightReconfig(sim, link, events=[(1.0, "a", 0.0)])  # weight <= 0
    with pytest.raises(ValueError):
        WeightReconfig(sim, link, streams=RandomStreams(1))  # missing args


def test_weight_reconfig_shifts_service_shares():
    # Two persistently backlogged flows, equal weights; at t=0.5 flow
    # b's weight triples. Packets tagged before the event keep their
    # old spacing (per-packet rates, Section 2.3), so the event is
    # placed early — almost every packet served afterwards is tagged
    # under the new weights and the service split converges to ~3:1.
    sim = Simulator()
    link = make_link(sim, capacity=8000.0)
    sink = PacketSink()
    link.departure_hooks.append(sink.on_packet)
    for flow in ("a", "b"):
        link.scheduler.add_flow(flow, 1.0)
        CBRSource(sim, flow, link.send, rate=8000.0, packet_length=1000,
                  stop_time=20.0).start()
    reconfig = WeightReconfig(sim, link, events=[(0.5, "b", 3.0)])
    reconfig.start()
    sim.run(until=20.0)
    before = {f: sum(1 for t, _ in sink.received[f] if t <= 0.5)
              for f in ("a", "b")}
    after = {f: sum(1 for t, _ in sink.received[f] if t > 2.0)
             for f in ("a", "b")}
    assert reconfig.applied == 1
    assert abs(before["a"] - before["b"]) <= 1  # equal shares pre-event
    assert after["b"] > 2 * after["a"]  # ~3:1 split post-event


def test_seeded_weight_reconfig_reproducible():
    def run(seed):
        sim = Simulator()
        link = make_link(sim, capacity=8000.0)
        sink = PacketSink()
        link.departure_hooks.append(sink.on_packet)
        for flow in ("a", "b"):
            link.scheduler.add_flow(flow, 1.0)
            CBRSource(sim, flow, link.send, rate=6000.0, packet_length=1000,
                      stop_time=5.0).start()
        reconfig = WeightReconfig(
            sim, link, streams=RandomStreams(seed), flow_ids=("a", "b"),
            mean_interval=0.7, stop_time=5.0,
        )
        reconfig.start()
        sim.run(until=8.0)
        return reconfig.applied, dict(sink.received)

    assert run(11) == run(11)
    applied, _ = run(11)
    assert applied > 0
