"""Edge-path tests: long-horizon lazy capacity generation, utilization
on fluctuating servers, Karn RTT filtering, tracer aggregate filters."""

from __future__ import annotations

import pytest

from repro.core import FIFO, Packet
from repro.servers import ConstantCapacity, Link, PeriodicStall, TwoRateSquareWave
from repro.simulation import Simulator
from repro.transport import TcpReceiver, TcpSender


# ----------------------------------------------------------------------
# Lazy capacity generation far beyond the materialized horizon
# ----------------------------------------------------------------------
def test_piecewise_long_horizon_queries():
    sq = TwoRateSquareWave(2000.0, 0.5, 0.0, 0.5)
    # 10,000 periods ahead of anything generated so far.
    assert sq.rate_at(9_999.6) == 0.0
    assert sq.rate_at(10_000.2) == 2000.0
    assert sq.work(10_000.0, 10_002.0) == pytest.approx(2000.0)
    finish = sq.finish_time(9_999.9, 1000)
    assert sq.work(9_999.9, finish) == pytest.approx(1000.0)


def test_piecewise_interleaved_backward_reads():
    # The cursor must handle a later read followed by an earlier one.
    sq = TwoRateSquareWave(2000.0, 0.5, 0.0, 0.5)
    assert sq.work(100.0, 101.0) == pytest.approx(1000.0)
    assert sq.work(0.0, 1.0) == pytest.approx(1000.0)
    assert sq.rate_at(0.25) == 2000.0


# ----------------------------------------------------------------------
# Utilization on a fluctuating server
# ----------------------------------------------------------------------
def test_utilization_accounts_for_realizable_work():
    sim = Simulator()
    link = Link(sim, FIFO(), PeriodicStall(2000.0, 0.5, 1.0))
    # Offer exactly the server's mean rate for 4 s.
    sim.at(0.0, lambda: [link.send(Packet("f", 1000, seqno=i)) for i in range(4)])
    sim.run(until=4.0)
    # 4000 bits transmitted; realizable work over [0,4] is 4000 bits.
    assert link.utilization(0.0, 4.0) == pytest.approx(1.0, rel=0.05)
    assert link.utilization(4.0, 4.0) == 0.0


def test_busy_period_spans_stall():
    sim = Simulator()
    link = Link(sim, FIFO(), PeriodicStall(2000.0, 0.5, 1.0))
    sim.at(0.0, lambda: link.send(Packet("f", 1500, seqno=0)))
    sim.run()
    # 1000 bits by t=0.5, stall to 1.0, done at 1.25: ONE busy period.
    assert len(link.busy_periods) == 1
    assert link.busy_periods[0] == (0.0, pytest.approx(1.25))


# ----------------------------------------------------------------------
# TCP Karn filtering
# ----------------------------------------------------------------------
def test_rtt_sample_skipped_for_retransmitted_segment():
    sim = Simulator()
    receiver = TcpReceiver(sim, "t")
    sent = []
    sender = TcpSender(sim, "t", sent.append, receiver, segment_bytes=100)
    sender.start()
    sim.run(max_events=2)  # segment 0 sent
    # Pretend a timeout retransmitted it much later.
    sim._now = 10.0
    sender._transmit(0, is_retransmit=True)
    sim._now = 30.0
    sender.on_ack(1)
    # A 30-second "sample" from a retransmitted segment must be ignored.
    assert sender.srtt is None or sender.srtt < 5.0


def test_backoff_resets_on_new_ack():
    sim = Simulator()
    receiver = TcpReceiver(sim, "t")
    sender = TcpSender(sim, "t", lambda p: None, receiver, segment_bytes=100)
    sender.start()
    sim.run(max_events=2)
    sender._backoff = 16
    sender.on_ack(1)
    assert sender._backoff == 1


# ----------------------------------------------------------------------
# Tracer aggregate filters
# ----------------------------------------------------------------------
def test_tracer_aggregate_departed_and_dropped():
    sim = Simulator()
    link = Link(sim, FIFO(), ConstantCapacity(1000.0), buffer_packets=1)
    sim.at(0.0, lambda: [link.send(Packet("a", 100, seqno=i)) for i in range(2)])
    sim.at(0.0, lambda: [link.send(Packet("b", 100, seqno=i)) for i in range(2)])
    sim.run()
    tracer = link.tracer
    assert len(tracer.departed()) == 2  # across all flows
    assert len(tracer.dropped()) == 2
    assert len(tracer.delays()) == 2


def test_flow_weight_change_error_message_names_flow():
    from repro.core import SFQ, SchedulerError

    sfq = SFQ(auto_register=False)
    with pytest.raises(SchedulerError, match="ghost"):
        sfq.enqueue(Packet("ghost", 100), 0.0)
