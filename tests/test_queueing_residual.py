"""Tests for the queueing-theory reference formulas, the residual
capacity builder, and the simulator's M/D/1 cross-validation."""

from __future__ import annotations

import random

import pytest

from repro.analysis.queueing import (
    md1_mean_delay,
    md1_mean_wait,
    md1_p_wait_exceeds,
    mg1_mean_wait,
    mm1_mean_delay,
)
from repro.analysis.servers import measure_fc_delta
from repro.analysis.stats import mean
from repro.core import FIFO
from repro.servers import ConstantCapacity, Link, residual_from_demand
from repro.servers.base import CapacityError
from repro.simulation import RandomStreams, Simulator
from repro.traffic import PoissonSource


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------
def test_md1_formula_values():
    # rho = 0.5: W = 0.5*s/(2*0.5) = s/2.
    assert md1_mean_wait(50.0, 0.01) == pytest.approx(0.005)
    assert md1_mean_delay(50.0, 0.01) == pytest.approx(0.015)


def test_md1_is_half_mm1_wait():
    # Deterministic service halves the P-K waiting time vs exponential.
    lam, mu = 50.0, 100.0
    mm1_wait = mm1_mean_delay(lam, mu) - 1 / mu
    md1_wait = md1_mean_wait(lam, 1 / mu)
    assert md1_wait == pytest.approx(mm1_wait / 2)


def test_mg1_reduces_to_md1():
    lam, s = 50.0, 0.01
    assert mg1_mean_wait(lam, s, s * s) == pytest.approx(md1_mean_wait(lam, s))


def test_utilization_validation():
    with pytest.raises(ValueError):
        md1_mean_wait(100.0, 0.01)  # rho = 1
    with pytest.raises(ValueError):
        mm1_mean_delay(100.0, 100.0)
    with pytest.raises(ValueError):
        md1_p_wait_exceeds(50.0, 0.01, -1.0)


def test_md1_tail_decreasing():
    p1 = md1_p_wait_exceeds(80.0, 0.01, 0.01)
    p2 = md1_p_wait_exceeds(80.0, 0.01, 0.05)
    assert p2 < p1 <= 1.0


# ----------------------------------------------------------------------
# Simulator cross-validation: Poisson/FIFO/fixed packets ~ M/D/1
# ----------------------------------------------------------------------
def test_simulator_matches_md1_mean_delay():
    rate, packet, link_rate = 700_000.0, 1600, 1_000_000.0
    sim = Simulator()
    link = Link(sim, FIFO(), ConstantCapacity(link_rate))
    PoissonSource(
        sim, "f", link.send, rate=rate, packet_length=packet,
        rng=RandomStreams(99).stream("p"), stop_time=300.0,
    ).start()
    sim.run(until=305.0)
    measured = mean(link.tracer.delays("f"))
    analytic = md1_mean_delay(rate / packet, packet / link_rate)
    assert measured == pytest.approx(analytic, rel=0.1)


# ----------------------------------------------------------------------
# Residual capacity builder
# ----------------------------------------------------------------------
def test_residual_of_idle_priority_is_full_link():
    residual = residual_from_demand(1000.0, [], slot=0.1, horizon=10.0)
    assert residual.work(0.0, 10.0) == pytest.approx(10_000.0)


def test_residual_subtracts_demand_work():
    demand = [(1.0, 500.0), (2.0, 500.0)]
    residual = residual_from_demand(1000.0, demand, slot=0.1, horizon=10.0)
    assert residual.work(0.0, 10.0) == pytest.approx(9_000.0, rel=1e-6)


def test_residual_never_negative_under_overload_burst():
    # A burst bigger than a slot's work spills into later slots.
    demand = [(0.0, 5_000.0)]
    residual = residual_from_demand(1000.0, demand, slot=0.1, horizon=10.0)
    for i in range(100):
        assert residual.rate_at(i * 0.1) >= 0.0
    # The first 5 seconds are fully consumed by the priority backlog.
    assert residual.work(0.0, 5.0) == pytest.approx(0.0, abs=1e-6)
    assert residual.work(5.0, 10.0) == pytest.approx(5_000.0, rel=1e-6)


def test_residual_of_shaped_demand_is_fc_with_sigma():
    """Section 2.3: (sigma, rho)-shaped priority demand leaves an
    FC(C - rho, sigma) residual."""
    rng = random.Random(77)
    link_rate, rho, sigma = 1000.0, 400.0, 300.0
    # Build a maximally bursty shaped arrival sequence: send sigma at
    # once whenever the bucket refills.
    demand = []
    t, credit = 0.0, sigma
    while t < 60.0:
        demand.append((t, sigma))
        t += sigma / rho + rng.uniform(0, 0.3)
    residual = residual_from_demand(link_rate, demand, slot=0.01, horizon=60.0)
    delta = measure_fc_delta(residual, link_rate - rho, horizon=60.0, step=0.01)
    # Discretization can add up to one slot of work to the measured
    # deficit; allow that margin.
    assert delta <= sigma + link_rate * 0.01 + 1e-6


def test_residual_validates_inputs():
    with pytest.raises(CapacityError):
        residual_from_demand(0.0, [], slot=0.1, horizon=1.0)
    with pytest.raises(CapacityError):
        residual_from_demand(1.0, [(-1.0, 10.0)], slot=0.1, horizon=1.0)
