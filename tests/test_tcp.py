"""Tests for the simplified TCP Reno implementation."""

from __future__ import annotations

import pytest

from repro.core import FIFO, Packet
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator
from repro.transport import TcpReceiver, TcpSender


def make_connection(
    rate=100_000.0,
    buffer_packets=None,
    segment_bytes=200,
    max_segments=None,
    ack_delay=0.005,
    start_time=0.0,
):
    sim = Simulator()
    link = Link(
        sim,
        FIFO(),
        ConstantCapacity(rate),
        buffer_packets=buffer_packets,
    )
    receiver = TcpReceiver(sim, "tcp", ack_path_delay=ack_delay)
    sender = TcpSender(
        sim,
        "tcp",
        link.send,
        receiver,
        segment_bytes=segment_bytes,
        max_segments=max_segments,
        start_time=start_time,
    )
    link.departure_hooks.append(receiver.on_packet)
    return sim, link, sender, receiver


def test_delivers_all_segments_in_order():
    sim, link, sender, receiver = make_connection(max_segments=50)
    sender.start()
    sim.run(until=60.0)
    assert receiver.in_order_count == 50
    seqnos = [s for _t, s in receiver.received]
    delivered = sorted(set(seqnos))
    assert delivered == list(range(50))


def test_slow_start_doubles_cwnd_per_rtt():
    sim, link, sender, receiver = make_connection(rate=10_000_000.0)
    sender.max_segments = 1000
    sender.start()
    cwnds = []
    for t in (0.001, 0.012, 0.024, 0.036):
        sim.at(t, lambda: cwnds.append(sender.cwnd))
    sim.run(until=0.05)
    # RTT ~ 10 ms (ack delay 5 ms both directions approx): growth must
    # be at least geometric-ish early on.
    assert cwnds[1] > cwnds[0]
    assert cwnds[2] > 1.8 * cwnds[1] - 2


def test_loss_triggers_fast_retransmit_and_halving():
    sim, link, sender, receiver = make_connection(
        rate=100_000.0, buffer_packets=5, max_segments=300
    )
    sender.start()
    sim.run(until=30.0)
    assert link.packets_dropped > 0
    assert sender.retransmissions > 0
    assert sender.ssthresh < TcpSender.INITIAL_SSTHRESH
    # Despite losses, everything is eventually delivered.
    assert receiver.in_order_count == 300


def test_timeout_recovers_from_total_loss_window():
    # A tiny buffer plus large bursts force timeouts eventually; the
    # sender must grind through (RTO backoff makes this slow but it
    # must terminate with everything delivered).
    sim, link, sender, receiver = make_connection(
        rate=20_000.0, buffer_packets=1, max_segments=60
    )
    sender.start()
    sim.run(max_events=500_000)
    assert sender.timeouts > 0
    assert receiver.in_order_count == 60


def test_rtt_estimator_tracks_path():
    sim, link, sender, receiver = make_connection(rate=1_000_000.0, ack_delay=0.02)
    sender.max_segments = 100
    sender.start()
    sim.run(until=10.0)
    # RTT >= transmission (1.6ms) + ack delay (20ms) = 21.6 ms; slow
    # start builds a standing queue so the estimate sits above the
    # propagation floor but well below the RTO minimum regime.
    assert sender.srtt is not None
    assert 0.0216 * 0.95 <= sender.srtt <= 0.2


def test_cwnd_never_below_one():
    sim, link, sender, receiver = make_connection(
        rate=10_000.0, buffer_packets=1, max_segments=40
    )
    sender.start()
    floor = [float("inf")]

    def probe():
        floor[0] = min(floor[0], sender.cwnd)
        if sim.peek() is not None:
            sim.after(0.5, probe)

    sim.at(0.1, probe)
    sim.run(until=120.0)
    assert floor[0] >= 1.0


def test_receiver_buffers_out_of_order():
    sim = Simulator()
    receiver = TcpReceiver(sim, "tcp")
    acks = []

    class FakeSender:
        def on_ack(self, ackno):
            acks.append(ackno)

    receiver.sender = FakeSender()
    receiver.on_packet(Packet("tcp", 1600, seqno=0), 0.0)
    receiver.on_packet(Packet("tcp", 1600, seqno=2), 0.1)  # gap
    receiver.on_packet(Packet("tcp", 1600, seqno=1), 0.2)  # fills it
    sim.run()
    assert acks == [1, 1, 3]  # dup ack for the gap, then jump


def test_sender_respects_start_time():
    sim, link, sender, receiver = make_connection(max_segments=5, start_time=2.0)
    sender.start()
    sim.run(until=10.0)
    first = min(t for t, _s in receiver.received)
    assert first >= 2.0
