"""A further round of distinct-behaviour edge tests across schedulers.

These close the remaining behavioural corners: multi-busy-period tag
chains, SCFQ/SFQ divergence on identical inputs, WFQ with per-packet
rates, WRR weight renormalization when flows join, hierarchical peek,
and PriorityBands with three bands.
"""

from __future__ import annotations

import pytest

from tests.helpers import run_schedule, service_order
from repro.core import FIFO, SCFQ, SFQ, WFQ, Packet
from repro.core.priority import PriorityBands
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator


def test_sfq_tags_across_multiple_busy_periods():
    sfq = SFQ()
    sfq.add_flow("f", 100.0)
    # Busy period 1.
    p0 = Packet("f", 100, seqno=0)
    sfq.enqueue(p0, 0.0)
    sfq.on_service_complete(sfq.dequeue(0.0), 1.0)
    assert sfq.virtual_time == pytest.approx(1.0)
    # Busy period 2: S = max(v=1, F_prev=1) = 1.
    p1 = Packet("f", 100, seqno=1)
    sfq.enqueue(p1, 5.0)
    assert p1.start_tag == pytest.approx(1.0)
    sfq.on_service_complete(sfq.dequeue(5.0), 6.0)
    # Busy period 3 with a DIFFERENT flow: starts from v = 2.
    sfq.add_flow("g", 100.0)
    pg = Packet("g", 100, seqno=0)
    sfq.enqueue(pg, 9.0)
    assert pg.start_tag == pytest.approx(2.0)


def test_sfq_and_scfq_diverge_on_fresh_low_rate_arrival():
    """The defining operational difference: a newly backlogged flow's
    first packet jumps the queue under SFQ (start order) but waits a
    full l/r under SCFQ (finish order)."""
    schedule = [(0.0, "bulk", 100)] * 30 + [(1.05, "fresh", 100)]
    weights = {"bulk": 90.0, "fresh": 10.0}
    positions = {}
    for name, sched in (("SFQ", SFQ()), ("SCFQ", SCFQ())):
        link = run_schedule(sched, ConstantCapacity(100.0), schedule, weights)
        order = service_order(link)
        positions[name] = order.index(("fresh", 0))
    assert positions["SFQ"] < positions["SCFQ"]


def test_wfq_per_packet_rates_respected():
    wfq = WFQ(assumed_capacity=1000.0)
    wfq.add_flow("f", 100.0)
    p = Packet("f", 200, seqno=0, rate=400.0)
    wfq.enqueue(p, 0.0)
    assert p.finish_tag == pytest.approx(0.5)


def test_wrr_credits_renormalize_when_flow_added():
    from repro.core import WRR

    wrr = WRR()
    wrr.add_flow("a", 2.0)
    wrr.add_flow("b", 4.0)
    # min weight 2 -> credits 1 and 2.
    assert wrr._credits(wrr.flows["a"]) == 1
    assert wrr._credits(wrr.flows["b"]) == 2
    wrr.add_flow("c", 1.0)
    # min weight now 1 -> credits 2 and 4.
    assert wrr._credits(wrr.flows["a"]) == 2
    assert wrr._credits(wrr.flows["b"]) == 4


def test_hierarchical_peek_returns_next_packet():
    from repro.core import HierarchicalScheduler

    hs = HierarchicalScheduler()
    hs.add_class("root", "A", 1.0)
    hs.add_class("root", "B", 1.0)
    hs.attach_flow("fa", "A", 1.0)
    hs.attach_flow("fb", "B", 1.0)
    pa = Packet("fa", 100, seqno=0)
    hs.enqueue(pa, 0.0)
    assert hs.peek(0.0) is pa
    assert hs.dequeue(0.0) is pa
    assert hs.peek(0.0) is None


def test_three_band_priority_order():
    bands = PriorityBands([FIFO(auto_register=False) for _ in range(3)])
    bands.assign_flow("gold", 0)
    bands.assign_flow("silver", 1)
    bands.assign_flow("bronze", 2)
    bands.enqueue(Packet("bronze", 100, seqno=0), 0.0)
    bands.enqueue(Packet("silver", 100, seqno=0), 0.0)
    bands.enqueue(Packet("gold", 100, seqno=0), 0.0)
    order = [bands.dequeue(0.0).flow for _ in range(3)]
    assert order == ["gold", "silver", "bronze"]


def test_priority_band_empty_high_band_falls_through():
    bands = PriorityBands([FIFO(auto_register=False), FIFO(auto_register=False)])
    bands.assign_flow("hi", 0)
    bands.assign_flow("lo", 1)
    bands.enqueue(Packet("lo", 100, seqno=0), 0.0)
    assert bands.dequeue(0.0).flow == "lo"
    assert bands.dequeue(0.0) is None


def test_link_with_zero_propagation_multihop_consistency():
    """Two chained links with no propagation: hop 2 sees hop 1's exact
    departure times as arrivals."""
    sim = Simulator()
    l1 = Link(sim, FIFO(), ConstantCapacity(1000.0), name="h1")
    l2 = Link(sim, FIFO(), ConstantCapacity(2000.0), name="h2")
    l1.departure_hooks.append(lambda p, t: l2.send(p.fork()))
    sim.at(0.0, lambda: [l1.send(Packet("f", 100, seqno=i)) for i in range(5)])
    sim.run()
    dep1 = [r.departure for r in sorted(l1.tracer.departed("f"), key=lambda r: r.seqno)]
    arr2 = [r.arrival for r in sorted(l2.tracer.for_flow("f"), key=lambda r: r.seqno)]
    assert dep1 == arr2
    assert len(l2.tracer.departed("f")) == 5
