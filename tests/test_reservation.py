"""Tests for the reservation manager (admission control plane)."""

from __future__ import annotations

import pytest

from repro.analysis.delay_bounds import expected_arrival_times, sfq_delay_bound
from repro.analysis.reservation import AdmissionError, ReservationManager
from repro.core import SFQ, Packet
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator


def test_rates_accumulate_and_cap():
    mgr = ReservationManager(capacity=1000.0)
    mgr.admit_with_headroom("a", 400.0, 200, bound_headroom=1.0)
    mgr.admit_with_headroom("b", 500.0, 200, bound_headroom=1.0)
    assert mgr.reserved_rate == 900.0
    assert mgr.available_rate == pytest.approx(100.0)
    with pytest.raises(AdmissionError):
        mgr.admit("c", 200.0, 200)


def test_utilization_cap_leaves_headroom():
    mgr = ReservationManager(capacity=1000.0, utilization_cap=0.8)
    with pytest.raises(AdmissionError):
        mgr.admit("a", 900.0, 100)
    mgr.admit("a", 800.0, 100)


def test_duplicate_and_unknown_release():
    mgr = ReservationManager(capacity=1000.0)
    mgr.admit_with_headroom("a", 100.0, 100, bound_headroom=1.0)
    with pytest.raises(AdmissionError):
        mgr.admit("a", 100.0, 100)
    mgr.release("a")
    with pytest.raises(AdmissionError):
        mgr.release("a")


def test_quote_matches_theorem4():
    mgr = ReservationManager(capacity=1000.0, delta=100.0)
    mgr.admit_with_headroom("a", 300.0, 250, bound_headroom=1.0)
    admissible, bound = mgr.quote(rate=200.0, max_packet=400)
    assert admissible
    assert bound == pytest.approx(sfq_delay_bound(0.0, 250, 400, 1000.0, 100.0))


def test_delay_requirement_refusal():
    mgr = ReservationManager(capacity=1000.0)
    mgr.admit_with_headroom("big", 100.0, 1000, bound_headroom=1.0)
    # Newcomer needs a 1 ms bound but the incumbent's 1000-bit packets
    # alone cost 1 s at this link rate.
    with pytest.raises(AdmissionError):
        mgr.admit("tight", 100.0, 100, delay_requirement=0.001)


def test_incumbent_quoted_bounds_protected():
    mgr = ReservationManager(capacity=10_000.0)
    # Exact quote (no headroom): any newcomer raises a's Sigma-l term.
    mgr.admit("a", 1000.0, 500)
    with pytest.raises(AdmissionError):
        mgr.admit("b", 1000.0, 500)
    # With headroom, the same newcomer fits.
    mgr2 = ReservationManager(capacity=10_000.0)
    mgr2.admit_with_headroom("a", 1000.0, 500, bound_headroom=0.5)
    mgr2.admit("b", 1000.0, 500)


def test_configure_scheduler_and_bounds_hold_in_simulation():
    """The quoted bounds are honored by an actual SFQ link."""
    mgr = ReservationManager(capacity=10_000.0)
    specs = [("a", 2000.0, 400), ("b", 3000.0, 800), ("c", 4000.0, 400)]
    for flow, rate, lmax in specs:
        mgr.admit_with_headroom(flow, rate, lmax, bound_headroom=1.0)
    sim = Simulator()
    sfq = SFQ(auto_register=False)
    mgr.configure_scheduler(sfq)
    link = Link(sim, sfq, ConstantCapacity(10_000.0))
    for flow, rate, lmax in specs:
        gap = 4 * lmax / rate
        t, seq = 0.0, 0
        while t < 10.0:
            for _ in range(4):
                sim.at(
                    t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)),
                    flow, seq, lmax,
                )
                seq += 1
            t += gap
    sim.run(until=20.0)
    for flow, rate, lmax in specs:
        quoted = mgr.reservations[flow].quoted_delay_bound
        records = sorted(link.tracer.departed(flow), key=lambda r: r.seqno)
        eats = expected_arrival_times(
            [r.arrival for r in records], [r.length for r in records],
            [rate] * len(records),
        )
        for record, eat in zip(records, eats):
            assert record.departure - eat <= quoted + 1e-9


def test_input_validation():
    with pytest.raises(AdmissionError):
        ReservationManager(capacity=0.0)
    with pytest.raises(AdmissionError):
        ReservationManager(capacity=1.0, utilization_cap=0.0)
    mgr = ReservationManager(capacity=1000.0)
    with pytest.raises(AdmissionError):
        mgr.quote(-1.0, 100)
