"""Strict-typing gate for the annotated perimeter.

CI runs ``mypy --strict`` directly (see ``.github/workflows/ci.yml``);
this test runs the same check for developers who have mypy installed
locally, and skips cleanly where it is not available.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parent.parent

STRICT_PACKAGES = [
    "src/repro/core",
    "src/repro/simulation",
    "src/repro/lint",
    "src/repro/metrics",
    "src/repro/faults",
]


def test_strict_perimeter_type_checks():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", *STRICT_PACKAGES],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
