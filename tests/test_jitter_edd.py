"""Tests for Jitter EDD and the non-work-conserving Link wake-up path."""

from __future__ import annotations

import pytest

from repro.core import JitterEDD, Packet
from repro.core.base import SchedulerError
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator


def make():
    jedd = JitterEDD()
    jedd.add_flow_with_deadline("f", rate=100.0, deadline=0.5)
    jedd.add_flow_with_deadline("g", rate=100.0, deadline=2.0)
    return jedd


def test_packet_held_until_eat():
    jedd = make()
    # Two back-to-back packets: the second's EAT is 1s later.
    jedd.enqueue(Packet("f", 100, seqno=0), 0.0)
    jedd.enqueue(Packet("f", 100, seqno=1), 0.0)
    assert jedd.dequeue(0.0).seqno == 0
    # Second packet's EAT = 1.0: not eligible yet.
    assert jedd.dequeue(0.5) is None
    assert jedd.backlog_packets == 1
    assert jedd.dequeue(1.0).seqno == 1


def test_next_eligible_time_reports_held_packet():
    jedd = make()
    jedd.enqueue(Packet("f", 100, seqno=0), 0.0)
    jedd.enqueue(Packet("f", 100, seqno=1), 0.0)
    jedd.dequeue(0.0)
    assert jedd.next_eligible_time(0.2) == pytest.approx(1.0)
    assert jedd.next_eligible_time(1.5) == 1.5  # already eligible: now
    jedd.dequeue(1.5)
    assert jedd.next_eligible_time(2.0) is None


def test_eligible_packets_served_edf():
    jedd = make()
    # Both eligible immediately; f has the tighter deadline.
    jedd.enqueue(Packet("g", 100, seqno=0), 0.0)
    jedd.enqueue(Packet("f", 100, seqno=0), 0.0)
    assert jedd.dequeue(0.0).flow == "f"
    assert jedd.dequeue(0.0).flow == "g"


def test_non_work_conserving_on_link():
    """The link must sleep through ineligibility and wake itself."""
    sim = Simulator()
    jedd = make()
    link = Link(sim, jedd, ConstantCapacity(1000.0))
    sim.at(0.0, lambda: [link.send(Packet("f", 100, seqno=i)) for i in range(3)])
    sim.run()
    departures = [r.departure for r in sorted(
        link.tracer.departed("f"), key=lambda r: r.seqno)]
    # EATs are 0, 1, 2; service 0.1s each: departures 0.1, 2.1... wait:
    # EAT spacing is l/r = 1s, so packets start at 0, 1, 2.
    assert departures == [
        pytest.approx(0.1),
        pytest.approx(1.1),
        pytest.approx(2.1),
    ]
    # The link idled between services although work was queued — the
    # defining non-work-conserving trait (SFQ would finish by 0.3s).
    assert link.busy_periods[0][1] < 0.2


def test_jitter_removal_restores_spacing():
    """Bursty arrivals leave the regulator at declared spacing."""
    sim = Simulator()
    jedd = JitterEDD()
    jedd.add_flow_with_deadline("f", rate=1000.0, deadline=0.05)
    link = Link(sim, jedd, ConstantCapacity(100_000.0))
    # Jittered arrivals: 5 packets all at once (upstream burst).
    sim.at(0.0, lambda: [link.send(Packet("f", 100, seqno=i)) for i in range(5)])
    sim.run()
    starts = [r.start_service for r in sorted(
        link.tracer.departed("f"), key=lambda r: r.seqno)]
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    assert all(g == pytest.approx(0.1, abs=1e-6) for g in gaps)


def test_requires_deadline_registration():
    jedd = JitterEDD()
    jedd.add_flow("f", 1.0)
    with pytest.raises(SchedulerError):
        jedd.enqueue(Packet("f", 100), 0.0)
    with pytest.raises(SchedulerError):
        jedd.add_flow_with_deadline("g", 1.0, 0.0)


def test_work_conserving_scheduler_next_eligible_is_none():
    from repro.core import SFQ

    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    sfq.enqueue(Packet("f", 100), 0.0)
    assert sfq.next_eligible_time(0.0) is None
