"""Tests for the Fair Airport scheduler (Appendix B)."""

from __future__ import annotations

import pytest

from tests.helpers import drive_greedy, run_schedule
from repro.analysis.delay_bounds import (
    expected_arrival_times,
    fair_airport_delay_bound,
    fair_airport_fairness_bound,
)
from repro.analysis.fairness import empirical_fairness_measure
from repro.core import FairAirport, Packet
from repro.servers import ConstantCapacity, Link, TwoRateSquareWave
from repro.simulation import Simulator


def test_packet_joins_regulator_and_asq():
    fa = FairAirport()
    fa.add_flow("f", 100.0)
    p = Packet("f", 100, seqno=0)
    fa.enqueue(p, 0.0)
    assert fa.backlog_packets == 1
    assert p.start_tag is not None  # ASQ (SFQ) tag assigned on arrival


def test_eligible_packet_served_via_gsq():
    fa = FairAirport()
    fa.add_flow("f", 100.0)
    fa.enqueue(Packet("f", 100, seqno=0), 0.0)
    # Release time = max(A, -inf) = 0 <= now: GSQ serves it.
    p = fa.dequeue(0.0)
    assert p is not None
    assert p.eligible_at == 0.0
    assert fa.served_via_gsq == 1
    assert fa.served_via_asq == 0


def test_ineligible_packet_served_via_asq_work_conserving():
    fa = FairAirport()
    fa.add_flow("f", 100.0)
    fa.enqueue(Packet("f", 100, seqno=0), 0.0)
    fa.dequeue(0.0)  # GSQ; advances rc_clock to 1.0
    fa.enqueue(Packet("f", 100, seqno=1), 0.0)
    # Second packet's release time is 1.0 > now=0: the regulator holds
    # it, but FA is work conserving, so the ASQ serves it now.
    p = fa.dequeue(0.0)
    assert p is not None
    assert p.eligible_at is None
    assert fa.served_via_asq == 1


def test_asq_service_does_not_advance_gsq_clock():
    fa = FairAirport()
    fa.add_flow("f", 100.0)
    fa.enqueue(Packet("f", 100, seqno=0), 0.0)
    fa.dequeue(0.0)  # GSQ; rc_clock = 1.0
    fa.enqueue(Packet("f", 100, seqno=1), 0.0)
    fa.dequeue(0.0)  # ASQ (rule 4: rc_clock unchanged)
    fa.enqueue(Packet("f", 100, seqno=2), 0.5)
    # Third packet's release = max(0.5, rc_clock=1.0) = 1.0.
    p = fa.dequeue(1.0)
    assert p.eligible_at == pytest.approx(1.0)


def test_rule5_start_tag_inheritance():
    fa = FairAirport()
    fa.add_flow("f", 10.0)
    fa.add_flow("g", 10.0)
    # Two f packets: tags chain S=0/F=10, S=10/F=20.
    fa.enqueue(Packet("f", 100, seqno=0), 0.0)
    p2 = Packet("f", 100, seqno=1)
    fa.enqueue(p2, 0.0)
    assert p2.start_tag == 10.0
    served = fa.dequeue(0.0)  # GSQ serves f's first packet (S=0)
    assert served.seqno == 0
    # Rule 5: p2 inherits the removed packet's start tag.
    assert p2.start_tag == 0.0
    assert p2.finish_tag == 10.0


def test_combined_service_is_flow_fifo():
    fa = FairAirport()
    link = drive_greedy(
        fa,
        ConstantCapacity(1000.0),
        [("a", 400.0, 100, 100), ("b", 600.0, 100, 100)],
    )
    for flow in ("a", "b"):
        seqnos = [
            r.seqno
            for r in sorted(link.tracer.departed(flow), key=lambda r: r.departure)
        ]
        assert seqnos == sorted(seqnos)


def test_theorem9_delay_bound():
    capacity = 1000.0
    fa = FairAirport()
    flows = {"a": 400.0, "b": 600.0}
    schedule = []
    for flow, rate in flows.items():
        gap = 4 * 100 / rate
        for i in range(50):
            schedule.append((i * gap, flow, 100))
            schedule.append((i * gap, flow, 100))
    link = run_schedule(fa, ConstantCapacity(capacity), schedule, weights=flows)
    for flow, rate in flows.items():
        records = sorted(link.tracer.departed(flow), key=lambda r: r.seqno)
        eats = expected_arrival_times(
            [r.arrival for r in records],
            [r.length for r in records],
            [rate] * len(records),
        )
        for record, eat in zip(records, eats):
            bound = fair_airport_delay_bound(eat, record.length, rate, 100, capacity)
            assert record.departure <= bound + 1e-9


def test_theorem8_fairness_bound_on_variable_rate_above_minimum():
    min_capacity = 1000.0
    fa = FairAirport()
    link = drive_greedy(
        fa,
        TwoRateSquareWave(3 * min_capacity, 0.5, min_capacity, 0.5),
        [("f", 400.0, 100, 300), ("m", 600.0, 100, 300)],
    )
    h = empirical_fairness_measure(link.tracer, "f", "m", 400.0, 600.0)
    bound = fair_airport_fairness_bound(100, 400.0, 100, 600.0, 100, min_capacity)
    assert h <= bound + 1e-9


def test_work_conserving_on_fast_server():
    """When the server runs far above Σr, the ASQ must pick up the slack
    and the link must never idle while packets wait."""
    fa = FairAirport()
    fa.add_flow("f", 10.0)  # reserved rate 100x below the link rate
    sim = Simulator()
    link = Link(sim, fa, ConstantCapacity(1000.0))
    sim.at(0.0, lambda: [link.send(Packet("f", 100, seqno=i)) for i in range(20)])
    sim.run()
    # 20 packets of 100 bits at 1000 b/s: exactly 2 seconds if work
    # conserving (a pure rate-regulated server would need ~200 s).
    assert sim.now == pytest.approx(2.0)
    assert fa.served_via_asq > 0


def test_empty_dequeue():
    assert FairAirport().dequeue(0.0) is None
