"""ExperimentResult construction validation + lossless JSON round-trip.

The campaign cache stores shard results as JSON; a cached shard must be
indistinguishable from a fresh one. The round-trip test below is
parametrized over the *entire* experiment registry, so any experiment
that starts putting an unserializable object into ``data`` fails here
before it can corrupt the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.experiments import ACCEPTS_SEED, REGISTRY, load_experiment
from repro.experiments.harness import (
    ExperimentResult,
    decode_value,
    encode_value,
)

# ---------------------------------------------------------------------------
# Construction validation (regression: header-less render() crash)


def test_rows_without_headers_rejected_at_construction():
    with pytest.raises(ValueError, match="no header columns"):
        ExperimentResult("x", "d", headers=[], rows=[[1, 2]])


def test_add_row_on_empty_headers_raises():
    result = ExperimentResult("x", "d", headers=[])
    with pytest.raises(ValueError, match="no header columns"):
        result.add_row(1, 2, 3)
    assert result.rows == []  # nothing silently appended
    assert result.render()  # still renders (title + description)


def test_row_width_mismatch_rejected():
    with pytest.raises(ValueError, match="2 cells"):
        ExperimentResult("x", "d", headers=["a", "b", "c"], rows=[[1, 2]])
    result = ExperimentResult("x", "d", headers=["a", "b"])
    with pytest.raises(ValueError, match="columns"):
        result.add_row(1)


# ---------------------------------------------------------------------------
# Codec unit tests


@dataclass
class _Point:
    x: int
    label: str
    weights: tuple


def test_codec_tuples_round_trip():
    value = (1, "two", 3.0, (4, 5))
    decoded = decode_value(encode_value(value))
    assert decoded == value
    assert isinstance(decoded, tuple)
    assert isinstance(decoded[3], tuple)


def test_codec_non_string_dict_keys():
    value = {(1, 2): "pair", 3: "int", "s": "str"}
    decoded = decode_value(encode_value(value))
    assert decoded == value
    assert set(map(type, decoded)) == {tuple, int, str}


def test_codec_bool_is_not_int():
    decoded = decode_value(encode_value({"flag": True, "count": 1}))
    assert decoded["flag"] is True
    assert decoded["count"] == 1 and decoded["count"] is not True


def test_codec_dataclass_round_trip():
    value = _Point(x=1, label="p", weights=(0.5, 0.5))
    decoded = decode_value(encode_value(value))
    assert decoded == value
    assert isinstance(decoded, _Point)
    assert isinstance(decoded.weights, tuple)


def test_codec_sentinel_key_collision_survives():
    value = {"__tuple__": [1, 2], "normal": 3}
    assert decode_value(encode_value(value)) == value


def test_codec_rejects_unserializable():
    with pytest.raises(TypeError, match="losslessly"):
        encode_value({"bad": object()})


def test_codec_nested_kitchen_sink():
    value = {
        "runs": [_Point(1, "a", (1.0,)), _Point(2, "b", (2.0, 3.0))],
        "series": {0: [(1, 2), (3, 4)], 1: []},
        ("SFQ", "WFQ"): {"delta": -0.5},
    }
    assert decode_value(encode_value(value)) == value


# ---------------------------------------------------------------------------
# Full registry round-trip: to_json -> from_json -> render byte-identical

#: Down-scaled kwargs so the slowest experiments (figure2b alone takes
#: >2 min at paper scale) stay test-sized; the *shape* of the payload —
#: dataclasses, tuple keys, nested series — is what the codec must
#: survive, and that is scale-independent.
SCALE = {
    "figure2b": {"n_low_values": (4,), "duration": 40.0},
    "delay": {"horizon": 15.0},
    "e2e": {"max_hops": 3, "horizon": 6.0},
    "ebf": {"n_runs": 3, "horizon": 12.0},
    "robust-figure2b": {"seeds": (11, 12), "duration": 40.0},
}


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_round_trip_is_lossless_for_every_experiment(name):
    runner = load_experiment(name)
    kwargs = dict(SCALE.get(name, {}))
    if name in ACCEPTS_SEED:
        kwargs.setdefault("seed", 7)
    result = runner(**kwargs)

    text = result.to_json()
    restored = ExperimentResult.from_json(text)

    assert restored.render() == result.render()
    assert restored.experiment == result.experiment
    assert restored.headers == result.headers
    assert restored.rows == result.rows
    assert restored.notes == result.notes
    assert restored.data == result.data
    # Serialization is stable: re-encoding the decoded result is
    # byte-identical (the cache key's contract).
    assert restored.to_json() == text
