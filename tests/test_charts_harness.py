"""Tests for the ASCII chart renderer and experiment harness."""

from __future__ import annotations

import pytest

from repro.experiments.charts import GLYPHS, ascii_chart, downsample
from repro.experiments.harness import (
    ExperimentResult,
    comparison_row,
    geometric_sweep,
)


# ----------------------------------------------------------------------
# ascii_chart
# ----------------------------------------------------------------------
def test_chart_renders_title_axes_and_legend():
    text = ascii_chart(
        {"up": [(0.0, 0.0), (1.0, 1.0)], "down": [(0.0, 1.0), (1.0, 0.0)]},
        title="T",
        x_label="seconds",
        y_label="units",
    )
    assert text.startswith("T")
    assert "seconds" in text
    assert "units" in text
    assert "* = up" in text and "o = down" in text


def test_chart_places_extremes_in_correct_corners():
    text = ascii_chart({"s": [(0.0, 0.0), (10.0, 5.0)]}, width=20, height=5)
    lines = text.splitlines()
    grid = [l for l in lines if "|" in l]
    # Max y on the top row, rightmost column; min at bottom-left.
    assert grid[0].rstrip().endswith("*")
    assert grid[-1].split("|")[1].startswith("*")


def test_chart_handles_single_point_and_flat_series():
    assert "*" in ascii_chart({"p": [(1.0, 2.0)]})
    assert "*" in ascii_chart({"flat": [(0.0, 3.0), (5.0, 3.0)]})


def test_chart_empty_series():
    assert "(no data)" in ascii_chart({}, title="x")
    assert "(no data)" in ascii_chart({"e": []})


def test_chart_many_series_glyphs_cycle():
    series = {f"s{i}": [(float(i), float(i))] for i in range(len(GLYPHS) + 2)}
    text = ascii_chart(series)
    assert f"{GLYPHS[0]} = s0" in text


def test_downsample_caps_length_and_keeps_last():
    pts = [(float(i), float(i)) for i in range(1000)]
    out = downsample(pts, max_points=50)
    assert len(out) == 51
    assert out[-1] == pts[-1]
    assert downsample(pts[:10], max_points=50) == pts[:10]


# ----------------------------------------------------------------------
# Harness extras
# ----------------------------------------------------------------------
def test_comparison_row_formats_ratio():
    row = comparison_row("x", 2.0, 3.0, unit="ms")
    assert row[0] == "x"
    assert row[3] == "1.500"
    assert comparison_row("y", None, 3.0)[3] == ""


def test_geometric_sweep():
    sweep = geometric_sweep(1.0, 100.0, 3)
    assert sweep[0] == pytest.approx(1.0)
    assert sweep[1] == pytest.approx(10.0)
    assert sweep[2] == pytest.approx(100.0)
    assert geometric_sweep(5.0, 50.0, 1) == [5.0]


def test_result_float_formatting():
    result = ExperimentResult("X", "d", headers=["v"])
    result.add_row(0.000123456)
    result.add_row(123456.789)
    result.add_row(0.0)
    text = result.render()
    assert "0.0001235" in text
    assert "1.235e+05" in text
