"""Tests for the Markdown report generator."""

from __future__ import annotations

import pytest

from repro.analysis.report import DEFAULT_ORDER, _to_markdown, generate_report
from repro.cli import _RUNNERS
from repro.experiments.harness import ExperimentResult


def test_default_order_names_are_valid():
    for name in DEFAULT_ORDER:
        assert name in _RUNNERS


def test_markdown_section_structure():
    result = ExperimentResult("Exp", "about it", headers=["a", "b"])
    result.add_row(1, 2)
    result.note("a note")
    result.data["charts"] = ["CHART"]
    text = _to_markdown(result)
    assert text.startswith("## Exp")
    assert "| a | b |" in text
    assert "| 1 | 2 |" in text
    assert "> a note" in text
    assert "CHART" in text


def test_generate_report_subset(tmp_path):
    path = tmp_path / "r.md"
    markdown, failures = generate_report(
        path=str(path), experiments=["example1", "example2"]
    )
    assert failures == []
    assert path.read_text() == markdown
    assert "## Example 1" in markdown
    assert "## Example 2" in markdown


def test_generate_report_records_failures(monkeypatch):
    import repro.cli as cli

    def boom(name, seed=None, duration=None):
        raise RuntimeError("kaput")

    monkeypatch.setattr(cli, "run_experiment", boom)
    markdown, failures = generate_report(experiments=["example1"])
    assert failures and "kaput" in failures[0]
    assert "FAILED" in markdown
