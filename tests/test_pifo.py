"""The PIFO rank-function core: engine, SP-PIFO bands, registry v2.

The trace-equivalence suite already pins every discipline built through
``make_scheduler`` to the frozen seed cores; this module covers the new
surface the PIFO redesign added on top:

* constructing the engines **directly** — ``PifoScheduler(SfqRank())``
  and ``ArrayPifoScheduler(SfqRank())`` — must be byte-identical to the
  registry-built discipline and therefore to the frozen legacy cores
  (the registry adds convenience, not behavior);
* ``SpPifoScheduler`` — determinism, the ``bands=None``/``bands=0``
  exact degenerate case, push-up/push-down bound adaptation, and the
  inversion/unpifoness accounting;
* registry v2 — ``make_scheduler(name, rank_fn=...)`` for ad-hoc
  disciplines (the ten-line demo below), ``list_schedulers`` and
  ``describe_scheduler``;
* ``LSTF`` — the least-slack-time-first seed for the roadmap's
  programmable-scheduling item.
"""

from __future__ import annotations

import pytest

from repro.core import (
    LSTF,
    Packet,
    describe_scheduler,
    list_schedulers,
    make_scheduler,
)
from repro.core.arrayheap import ArrayPifoScheduler
from repro.core.base import SchedulerError
from repro.core.pifo import (
    DelayEddRank,
    FqsRank,
    PifoScheduler,
    RankFn,
    ScfqRank,
    SfqRank,
    SpPifoScheduler,
    VcRank,
    Wf2qRank,
    WfqRank,
)

from tests.test_trace_equivalence import (
    CAPACITY,
    WEIGHTS,
    _edd_setup,
    run_trace,
)

# ----------------------------------------------------------------------
# Direct engine construction == registry construction == frozen seed
# ----------------------------------------------------------------------

#: Discipline -> rank-function factory, mirroring the registry specs.
RANKS = {
    "SFQ": lambda: SfqRank(),
    "SCFQ": lambda: ScfqRank(),
    "WFQ": lambda: WfqRank(CAPACITY),
    "FQS": lambda: FqsRank(CAPACITY),
    "WF2Q": lambda: Wf2qRank(CAPACITY),
    "VirtualClock": lambda: VcRank(),
    "DelayEDD": lambda: DelayEddRank(),
}

ENGINES = {"object": PifoScheduler, "array": ArrayPifoScheduler}


@pytest.mark.parametrize("backend", sorted(ENGINES))
@pytest.mark.parametrize("name", sorted(RANKS))
def test_direct_engine_matches_registry(name, backend):
    # A hand-built engine (rank function passed explicitly) must
    # produce the same trace as the registry-built discipline: the
    # SchedulerSpec machinery adds no behavior of its own.
    setup = _edd_setup if name == "DelayEDD" else None
    engine_cls = ENGINES[backend]
    direct = run_trace(lambda: engine_cls(RANKS[name]()), setup, "figure1")
    kwargs = {"capacity": CAPACITY} if RANKS[name]().needs_capacity else {}
    via_registry = run_trace(
        lambda: make_scheduler(name, backend=backend, **kwargs), setup, "figure1"
    )
    assert direct == via_registry


def test_engine_forwards_rank_exports():
    sched = PifoScheduler(SfqRank())
    assert sched.virtual_time == 0.0  # forwarded from the rank
    with pytest.raises(AttributeError):
        sched.no_such_attribute


# ----------------------------------------------------------------------
# The ten-line ad-hoc discipline demo (ISSUE acceptance criterion)
# ----------------------------------------------------------------------


def test_custom_rank_fn_in_ten_lines():
    # A complete new discipline — Shortest Packet First — in ten lines:
    class SpfRank(RankFn):                                       # 1
        def rank(self, flow, packet, now):                       # 2
            packet.start_tag = float(packet.length)              # 3
            return packet.start_tag, ()                          # 4
        def head_key(self, packet):                              # 5
            return packet.start_tag                              # 6
    try:
        spf = make_scheduler("SPF", rank_fn=SpfRank)                 # 7
        for flow, length in (("a", 900), ("b", 100), ("c", 500)):    # 8
            spf.enqueue(Packet(flow, length, seqno=0), now=0.0)      # 9
        assert spf.dequeue(0.0).length == 100                        # 10

        # ... and it is now a first-class registered discipline:
        assert "SPF" in list_schedulers()
        assert "rank_fn" in describe_scheduler("SPF")
        # Re-asking for it by name alone still works, bands included.
        banded = make_scheduler("SPF", bands=2)
        assert isinstance(banded, SpPifoScheduler)
    finally:
        # Don't leak the demo discipline into registry-sweeping tests.
        from repro.core import registry

        registry._REGISTRY.pop("SPF", None)
        registry._ALIASES.pop("spf", None)


def test_rank_fn_name_collision_rejected():
    # An ad-hoc rank may not silently shadow a built-in discipline.
    class Impostor(RankFn):
        def rank(self, flow, packet, now):
            return 0.0, ()

    with pytest.raises(TypeError):
        make_scheduler("SFQ", rank_fn=Impostor)


# ----------------------------------------------------------------------
# SP-PIFO: bands, bounds, determinism, exact degenerate mode
# ----------------------------------------------------------------------


def _mixed_arrivals(n=120, seed=7):
    """Deterministic interleaved arrivals over four flows, 1:8 weights."""
    import random

    rng = random.Random(seed)
    arrivals = []
    t = 0.0
    for i in range(n):
        flow = f"f{rng.randrange(4)}"
        arrivals.append((t, flow, rng.choice((400, 800, 1600))))
        t += rng.random() * 0.002
    return arrivals


def _drain_order(sched, arrivals, capacity=1e6):
    """Enqueue everything, then serve to empty; return (flow, seqno) order."""
    for i, weight in enumerate((1.0, 2.0, 4.0, 8.0)):
        sched.add_flow(f"f{i}", weight)
    seqnos = {}
    for t, flow, length in arrivals:
        seqno = seqnos.get(flow, 0)
        seqnos[flow] = seqno + 1
        sched.enqueue(Packet(flow, length, seqno=seqno), t)
    order = []
    now = arrivals[-1][0]
    while True:
        packet = sched.dequeue(now)
        if packet is None:
            break
        now += packet.length / capacity
        order.append((packet.flow, packet.seqno))
        sched.on_service_complete(packet, now)
    return order


def test_sp_pifo_rejects_zero_bands():
    with pytest.raises(SchedulerError):
        SpPifoScheduler(SfqRank(), bands=0)
    with pytest.raises(SchedulerError):
        SpPifoScheduler(SfqRank(), bands=-3)


def test_sp_pifo_exact_mode_matches_pifo_engine():
    # bands=None is the k=inf degenerate case: a single exact heap whose
    # service order equals the PIFO engine's. make_scheduler spells it
    # bands=0 (0 bands makes no sense, so it selects exact mode).
    arrivals = _mixed_arrivals()
    exact = _drain_order(SpPifoScheduler(SfqRank(), bands=None), arrivals)
    engine = _drain_order(PifoScheduler(SfqRank()), arrivals)
    assert exact == engine
    via_registry = _drain_order(make_scheduler("SFQ", bands=0), arrivals)
    assert via_registry == engine


def test_sp_pifo_deterministic_across_runs():
    for seed in (1, 2, 7):
        arrivals = _mixed_arrivals(seed=seed)
        runs = [
            _drain_order(SpPifoScheduler(SfqRank(), bands=4), arrivals)
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


def test_sp_pifo_bound_adaptation_and_accounting():
    arrivals = _mixed_arrivals(n=300)
    sched = SpPifoScheduler(SfqRank(), bands=4, track_inversions=True)
    served = _drain_order(sched, arrivals, capacity=2e5)
    assert len(served) == len(arrivals)  # work conserving, nothing lost
    # The bound ladder must stay sorted ascending (band 0 = smallest
    # relative ranks) and must actually have adapted.
    assert sched.bounds == sorted(sched.bounds)
    assert sched.push_ups > 0
    assert sched.dequeues == len(arrivals)
    # Accounting invariants: unpifoness only accrues with inversions,
    # and both are bounded by the dequeue count.
    assert 0 <= sched.inversions <= sched.dequeues
    assert sched.unpifoness >= 0.0
    assert (sched.unpifoness > 0.0) == (sched.inversions > 0)
    assert sched.inversion_rate == sched.inversions / sched.dequeues
    assert sum(sched.band_occupancy()) == 0  # fully drained


def test_sp_pifo_single_band_is_fifo():
    # k=1 has one bound and one queue: arrival order == service order.
    arrivals = _mixed_arrivals(n=80)
    served = _drain_order(SpPifoScheduler(SfqRank(), bands=1), arrivals)
    expected = [(flow, seqno) for (_, flow, _), (f2, seqno) in zip(arrivals, served)]
    arrival_order = []
    seqnos = {}
    for _, flow, _ in arrivals:
        arrival_order.append((flow, seqnos.get(flow, 0)))
        seqnos[flow] = seqnos.get(flow, 0) + 1
    assert served == arrival_order


def test_sp_pifo_registered_as_discipline():
    sched = make_scheduler("SP-SFQ")
    assert isinstance(sched, SpPifoScheduler)
    assert sched.band_count == 8  # spec default
    assert "SP-SFQ" in list_schedulers()


# ----------------------------------------------------------------------
# LSTF: the programmable-scheduling seed
# ----------------------------------------------------------------------


def test_lstf_orders_by_remaining_slack():
    sched = make_scheduler("LSTF")
    sched.add_flow("slow", 1.0)
    sched.add_flow("urgent", 1.0)
    sched.set_slack("slow", 0.5)
    sched.set_slack("urgent", 0.001)
    sched.enqueue(Packet("slow", 800, seqno=0), now=0.0)
    sched.enqueue(Packet("urgent", 800, seqno=0), now=0.0)
    assert sched.dequeue(0.0).flow == "urgent"
    assert sched.dequeue(0.0).flow == "slow"


def test_lstf_class_is_pifo_engine():
    sched = LSTF(default_slack=0.25)
    sched.enqueue(Packet("a", 400, seqno=0), now=0.0)
    # Slack accrues from arrival: deadline = arrival + slack.
    assert sched.dequeue(0.0).deadline == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Registry v2 introspection
# ----------------------------------------------------------------------


def test_list_schedulers_covers_the_zoo():
    names = list_schedulers()
    for name in ("SFQ", "SCFQ", "WFQ", "FQS", "WF2Q", "VirtualClock",
                 "DelayEDD", "LSTF", "SP-SFQ"):
        assert name in names, name


def test_describe_scheduler_mentions_contract():
    text = describe_scheduler("WFQ")
    assert "capacity" in text
    assert "rank_fn" in text
    with pytest.raises(ValueError):
        describe_scheduler("NoSuchDiscipline")
