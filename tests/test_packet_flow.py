"""Tests for Packet, FlowState and the EAT tracker."""

from __future__ import annotations

import pytest

from repro.core import Packet, bits, kbps, mbps
from repro.core.flow import EATTracker, FlowState


# ----------------------------------------------------------------------
# Packet
# ----------------------------------------------------------------------
def test_packet_basics():
    p = Packet("f", 800, arrival=1.5, seqno=3)
    assert p.flow == "f"
    assert p.length == 800
    assert p.length_bytes == 100
    assert p.arrival == 1.5
    assert p.created == 1.5
    assert p.seqno == 3
    assert p.rate is None


def test_packet_rejects_nonpositive_length():
    with pytest.raises(ValueError):
        Packet("f", 0)
    with pytest.raises(ValueError):
        Packet("f", -5)


def test_packet_uids_unique():
    assert Packet("f", 1).uid != Packet("f", 1).uid


def test_packet_meta_lazy():
    p = Packet("f", 100)
    assert p._meta_dict is None
    p.meta["k"] = 1
    assert p.meta == {"k": 1}


def test_fork_preserves_payload_and_created():
    p = Packet("f", 100, arrival=2.0, seqno=7, rate=500.0)
    p.meta["hop"] = 0
    p.meta["hier_path"] = ["scratch"]
    p.start_tag = 9.9
    clone = p.fork()
    assert clone.flow == "f"
    assert clone.length == 100
    assert clone.seqno == 7
    assert clone.rate == 500.0
    assert clone.created == 2.0
    assert clone.start_tag is None  # fresh tags at the next hop
    assert clone.meta["hop"] == 0
    assert "hier_path" not in clone.meta  # scheduler scratch dropped
    assert clone.uid != p.uid


def test_unit_helpers():
    assert bits(200) == 1600
    assert kbps(64) == 64_000
    assert mbps(2.5) == 2_500_000


# ----------------------------------------------------------------------
# FlowState
# ----------------------------------------------------------------------
def test_flow_state_queue_ops():
    state = FlowState("f", 100.0)
    assert not state.backlogged
    p1, p2 = Packet("f", 100), Packet("f", 200)
    state.push(p1)
    state.push(p2)
    assert state.backlogged
    assert state.backlog_packets == 2
    assert state.backlog_bits == 300
    assert state.head() is p1
    assert state.pop() is p1
    assert state.head() is p2


def test_flow_state_tracks_max_length():
    state = FlowState("f", 1.0)
    state.push(Packet("f", 100))
    state.push(Packet("f", 500))
    state.push(Packet("f", 200))
    assert state.max_length_seen == 500


def test_flow_state_rejects_bad_weight():
    with pytest.raises(ValueError):
        FlowState("f", 0.0)
    with pytest.raises(ValueError):
        FlowState("f", -1.0)


def test_packet_rate_prefers_per_packet_rate():
    state = FlowState("f", 100.0)
    assert state.packet_rate(Packet("f", 10)) == 100.0
    assert state.packet_rate(Packet("f", 10, rate=250.0)) == 250.0


def test_initial_finish_tag_is_zero():
    # F(p_f^0) = 0 per the paper.
    assert FlowState("f", 1.0).last_finish == 0.0


# ----------------------------------------------------------------------
# EATTracker (eq. 37)
# ----------------------------------------------------------------------
def test_eat_first_packet_is_arrival():
    eat = EATTracker()
    assert eat.on_arrival(3.0, 100, 50.0) == 3.0


def test_eat_back_to_back_chains():
    eat = EATTracker()
    assert eat.on_arrival(0.0, 100, 50.0) == 0.0
    # Next packet arrives immediately: EAT = prev EAT + l/r = 2.0.
    assert eat.on_arrival(0.0, 100, 50.0) == 2.0
    assert eat.on_arrival(0.0, 100, 50.0) == 4.0


def test_eat_late_arrival_resets_chain():
    eat = EATTracker()
    eat.on_arrival(0.0, 100, 50.0)
    assert eat.on_arrival(10.0, 100, 50.0) == 10.0


def test_eat_variable_rates():
    eat = EATTracker()
    eat.on_arrival(0.0, 100, 100.0)  # service 1.0s
    assert eat.on_arrival(0.0, 100, 50.0) == 1.0  # service 2.0s
    assert eat.on_arrival(0.0, 100, 100.0) == 3.0


def test_eat_rejects_bad_rate():
    with pytest.raises(ValueError):
        EATTracker().on_arrival(0.0, 100, 0.0)
