"""Remaining coverage corners across traffic, servers and hierarchy."""

from __future__ import annotations

import random

import pytest

from repro.core import SFQ, HierarchicalScheduler, Packet
from repro.core.wf2q import WF2Q
from repro.servers import (
    ConstantCapacity,
    GilbertElliottCapacity,
    Link,
    PiecewiseCapacity,
    residual_from_demand,
)
from repro.simulation import Simulator
from repro.traffic import CBRSource, OnOffSource, TraceSource, VBRVideoSource


def test_cbr_jitter_perturbs_spacing_but_not_rate():
    sim = Simulator()
    arrivals = []
    CBRSource(
        sim, "f", lambda p: arrivals.append(p.arrival), rate=1000.0,
        packet_length=100, max_packets=200, jitter=0.3, rng=random.Random(2),
    ).start()
    sim.run()
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert min(gaps) < 0.095 < 0.105 < max(gaps)  # genuinely jittered
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(0.1, rel=0.05)  # rate preserved


def test_onoff_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        OnOffSource(sim, "f", print, 0.0, 100, 1.0, 1.0, random.Random(0))
    with pytest.raises(ValueError):
        OnOffSource(sim, "f", print, 1.0, 100, 0.0, 1.0, random.Random(0))


def test_vbr_max_packets_cap():
    sim = Simulator()
    count = [0]
    VBRVideoSource(
        sim, "v", lambda p: count.__setitem__(0, count[0] + 1),
        mean_rate=1_000_000.0, rng=random.Random(3), max_packets=25,
    ).start()
    sim.run(until=10.0)
    assert count[0] == 25


def test_trace_source_per_packet_rate():
    sim = Simulator()
    got = []
    TraceSource(sim, "f", got.append, [(0.0, 100), (0.1, 100)], rate=512.0).start()
    sim.run()
    assert all(p.rate == 512.0 for p in got)


def test_gilbert_elliott_start_bad():
    cap = GilbertElliottCapacity(
        2000.0, 100.0, p_gb=0.5, p_bg=0.5, slot=0.01,
        rng=random.Random(4), start_good=False,
    )
    assert cap.rate_at(0.0) == 100.0


def test_residual_beyond_horizon_is_full_link():
    residual = residual_from_demand(1000.0, [(0.0, 500.0)], slot=0.1, horizon=2.0)
    assert residual.rate_at(5.0) == 1000.0


def test_from_list_average_rate_excludes_trailing_segment():
    cap = PiecewiseCapacity.from_list([(0.0, 100.0), (1.0, 300.0), (2.0, 900.0)])
    # Average over the covered span [0, 2): (100 + 300) / 2 = 200.
    assert cap.average_rate == pytest.approx(200.0)
    single = PiecewiseCapacity.from_list([(0.0, 42.0)])
    assert single.average_rate == 42.0


def test_wf2q_as_interior_hierarchy_node():
    hs = HierarchicalScheduler()
    hs.add_class(
        "root", "A", 1.0, scheduler=WF2Q(assumed_capacity=1000.0, auto_register=False)
    )
    hs.add_class("A", "C", 1.0)
    hs.add_class("A", "D", 3.0)
    hs.attach_flow("fc", "C", 1.0)
    hs.attach_flow("fd", "D", 1.0)
    sim = Simulator()
    link = Link(sim, hs, ConstantCapacity(1000.0))
    for flow in ("fc", "fd"):
        sim.at(0.0, lambda fl=flow: [
            link.send(Packet(fl, 100, seqno=i)) for i in range(200)
        ])
    sim.run(until=20.0)
    wc = link.tracer.work_in_interval("fc", 0, 20)
    wd = link.tracer.work_in_interval("fd", 0, 20)
    assert wd / wc == pytest.approx(3.0, rel=0.1)


def test_sfq_inner_heap_stays_clean_after_many_discards():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    for i in range(100):
        sfq.enqueue(Packet("f", 100, seqno=i), 0.0)
    for _ in range(60):
        sfq.discard_tail("f")
    served = 0
    while sfq.dequeue(0.0) is not None:
        served += 1
    assert served == 40
    # The flow-head heap is fully drained: no live or stale entries left.
    assert not sfq._head_heap