"""Tests for the generator-process layer."""

from __future__ import annotations

import pytest

from repro.simulation import Simulator, Until, Waiter, spawn
from repro.simulation.engine import SimulationError


def test_sleep_yields_advance_time():
    sim = Simulator()
    log = []

    def proc():
        log.append(sim.now)
        yield 1.5
        log.append(sim.now)
        yield 0.5
        log.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert log == [0.0, 1.5, 2.0]


def test_until_absolute_time():
    sim = Simulator()
    log = []

    def proc():
        yield Until(5.0)
        log.append(sim.now)
        yield Until(1.0)  # already past: resumes immediately
        log.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert log == [5.0, 5.0]


def test_spawn_delay():
    sim = Simulator()
    log = []

    def proc():
        log.append(sim.now)
        yield 0.0

    spawn(sim, proc(), delay=3.0)
    sim.run()
    assert log == [3.0]


def test_waiter_delivers_value():
    sim = Simulator()
    got = []

    def consumer(waiter):
        value = yield waiter
        got.append((sim.now, value))

    waiter = Waiter()
    spawn(sim, consumer(waiter))
    sim.at(2.0, waiter.fire, "payload")
    sim.run()
    assert got == [(2.0, "payload")]


def test_waiter_fired_before_wait_latches():
    sim = Simulator()
    got = []

    def late_consumer(waiter):
        yield 5.0
        value = yield waiter
        got.append(value)

    waiter = Waiter()
    waiter.fire(42)
    spawn(sim, late_consumer(waiter))
    sim.run()
    assert got == [42]


def test_waiter_wakes_multiple_processes():
    sim = Simulator()
    got = []
    waiter = Waiter()

    def consumer(tag):
        value = yield waiter
        got.append((tag, value))

    spawn(sim, consumer("a"))
    spawn(sim, consumer("b"))
    sim.at(1.0, waiter.fire, "x")
    sim.run()
    assert sorted(got) == [("a", "x"), ("b", "x")]


def test_waiter_double_fire_rejected():
    waiter = Waiter()
    waiter.fire()
    with pytest.raises(SimulationError):
        waiter.fire()


def test_process_completes_and_marks_finished():
    sim = Simulator()

    def proc():
        yield 1.0

    process = spawn(sim, proc())
    sim.run()
    assert process.finished
    assert process.error is None


def test_bad_yield_target_raises():
    sim = Simulator()

    def proc():
        yield "nonsense"

    spawn(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_exception_in_process_propagates():
    sim = Simulator()

    def proc():
        yield 1.0
        raise RuntimeError("boom")

    process = spawn(sim, proc())
    with pytest.raises(RuntimeError):
        sim.run()
    assert process.finished
    assert isinstance(process.error, RuntimeError)


def test_processes_interleave_with_events():
    sim = Simulator()
    log = []

    def proc():
        for _ in range(3):
            log.append(("proc", sim.now))
            yield 2.0

    spawn(sim, proc())
    sim.at(1.0, lambda: log.append(("event", 1.0)))
    sim.at(3.0, lambda: log.append(("event", 3.0)))
    sim.run()
    assert log == [
        ("proc", 0.0),
        ("event", 1.0),
        ("proc", 2.0),
        ("event", 3.0),
        ("proc", 4.0),
    ]


def test_process_driving_a_link():
    """Processes compose with the packet machinery."""
    from repro.core import SFQ, Packet
    from repro.servers import ConstantCapacity, Link

    sim = Simulator()
    sched = SFQ()
    link = Link(sim, sched, ConstantCapacity(1000.0))

    def talker():
        for seq in range(5):
            link.send(Packet("p", 100, seqno=seq))
            yield 0.05

    spawn(sim, talker())
    sim.run()
    assert len(link.tracer.departed("p")) == 5
