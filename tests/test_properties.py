"""Property-based tests (hypothesis) on the core invariants.

These are the load-bearing guarantees of the reproduction:

* Theorem 1's fairness bound for SFQ/SCFQ under arbitrary workloads and
  arbitrary (even adversarial) server-rate profiles;
* conservation: every enqueued packet is served exactly once, in
  per-flow FIFO order;
* virtual-time monotonicity;
* capacity processes: work additivity and finish_time/work inversion;
* EAT recursion properties.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.delay_bounds import expected_arrival_times
from repro.analysis.fairness import empirical_fairness_measure, sfq_fairness_bound
from repro.core import DRR, FIFO, SCFQ, SFQ, FairAirport, Packet, VirtualClock, WFQ
from repro.servers import ConstantCapacity, Link, PiecewiseCapacity
from repro.simulation import Simulator

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
packet_lengths = st.integers(min_value=50, max_value=1000)

arrival_schedule = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        st.sampled_from(["f", "m"]),
        packet_lengths,
    ),
    min_size=2,
    max_size=60,
)

rate_profiles = st.lists(
    st.floats(min_value=0.0, max_value=4000.0, allow_nan=False),
    min_size=1,
    max_size=12,
)


def build_capacity(slot_rates: List[float]) -> PiecewiseCapacity:
    """Random piecewise profile; guarantees eventual progress by ending
    on a positive rate."""
    rates = list(slot_rates) + [1000.0]
    segments = [(i * 2.0, r) for i, r in enumerate(rates)]
    return PiecewiseCapacity.from_list(segments, average_rate=1000.0)


def run_workload(scheduler, capacity, schedule) -> Link:
    sim = Simulator()
    for flow in ("f", "m"):
        if flow not in scheduler.flows:
            scheduler.add_flow(flow, 500.0 if flow == "f" else 250.0)
    link = Link(sim, scheduler, capacity)
    counters = {"f": 0, "m": 0}
    for t, flow, length in sorted(schedule):
        seq = counters[flow]
        counters[flow] += 1
        sim.at(t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)), flow, seq, length)
    sim.run()
    return link


# ----------------------------------------------------------------------
# Theorem 1 under random workloads and random server profiles
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(schedule=arrival_schedule, profile=rate_profiles)
def test_sfq_fairness_bound_any_server(schedule, profile):
    link = run_workload(SFQ(), build_capacity(profile), schedule)
    lmax_f = max((l for _t, f, l in schedule if f == "f"), default=50)
    lmax_m = max((l for _t, f, l in schedule if f == "m"), default=50)
    h = empirical_fairness_measure(link.tracer, "f", "m", 500.0, 250.0)
    assert h <= sfq_fairness_bound(lmax_f, 500.0, lmax_m, 250.0) + 1e-9


@settings(max_examples=25, deadline=None)
@given(schedule=arrival_schedule, profile=rate_profiles)
def test_scfq_fairness_bound_any_server(schedule, profile):
    link = run_workload(SCFQ(), build_capacity(profile), schedule)
    lmax_f = max((l for _t, f, l in schedule if f == "f"), default=50)
    lmax_m = max((l for _t, f, l in schedule if f == "m"), default=50)
    h = empirical_fairness_measure(link.tracer, "f", "m", 500.0, 250.0)
    assert h <= sfq_fairness_bound(lmax_f, 500.0, lmax_m, 250.0) + 1e-9


# ----------------------------------------------------------------------
# Conservation and FIFO-per-flow, for every discipline
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    schedule=arrival_schedule,
    which=st.sampled_from(["SFQ", "SCFQ", "WFQ", "VC", "DRR", "FIFO", "FA"]),
)
def test_conservation_and_flow_fifo(schedule, which):
    makers = {
        "SFQ": lambda: SFQ(),
        "SCFQ": lambda: SCFQ(),
        "WFQ": lambda: WFQ(assumed_capacity=1000.0),
        "VC": lambda: VirtualClock(),
        "DRR": lambda: DRR(quantum_scale=2.0),
        "FIFO": lambda: FIFO(),
        "FA": lambda: FairAirport(),
    }
    link = run_workload(makers[which](), ConstantCapacity(1000.0), schedule)
    sent = {"f": 0, "m": 0}
    for _t, flow, _l in schedule:
        sent[flow] += 1
    for flow in ("f", "m"):
        records = link.tracer.departed(flow)
        # Conservation: everything sent is served exactly once.
        assert len(records) == sent[flow]
        assert len({r.seqno for r in records}) == sent[flow]
        # Per-flow FIFO service order.
        by_start = sorted(records, key=lambda r: r.start_service)
        assert [r.seqno for r in by_start] == sorted(r.seqno for r in records)
        # Causality and non-overlap.
        for r in records:
            assert r.start_service >= r.arrival - 1e-12
            assert r.departure > r.start_service
    starts = sorted(
        (r.start_service, r.departure) for r in link.tracer.departed()
    )
    for (s1, d1), (s2, _d2) in zip(starts, starts[1:]):
        assert s2 >= d1 - 1e-9  # one packet at a time


@settings(max_examples=25, deadline=None)
@given(schedule=arrival_schedule)
def test_sfq_virtual_time_monotone(schedule):
    sim = Simulator()
    sfq = SFQ()
    sfq.add_flow("f", 500.0)
    sfq.add_flow("m", 250.0)
    link = Link(sim, sfq, ConstantCapacity(1000.0))
    vs = []
    link.departure_hooks.append(lambda p, t: vs.append(sfq.virtual_time))
    counters = {"f": 0, "m": 0}
    for t, flow, length in sorted(schedule):
        seq = counters[flow]
        counters[flow] += 1
        sim.at(t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)), flow, seq, length)
    sim.run()
    assert vs == sorted(vs)


# ----------------------------------------------------------------------
# Capacity process properties
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    profile=rate_profiles,
    t1=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    dt1=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    dt2=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
def test_capacity_work_additive_and_monotone(profile, t1, dt1, dt2):
    cap = build_capacity(profile)
    t2, t3 = t1 + dt1, t1 + dt1 + dt2
    total = cap.work(t1, t3)
    assert total == pytest.approx(cap.work(t1, t2) + cap.work(t2, t3), abs=1e-6)
    assert cap.work(t1, t2) <= total + 1e-9


@settings(max_examples=50, deadline=None)
@given(
    profile=rate_profiles,
    start=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    length=st.integers(min_value=1, max_value=20_000),
)
def test_finish_time_is_inverse_of_work(profile, start, length):
    cap = build_capacity(profile)
    finish = cap.finish_time(start, length)
    assert finish >= start
    assert cap.work(start, finish) == pytest.approx(length, abs=1e-6)


# ----------------------------------------------------------------------
# EAT properties (eq. 37)
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    arrivals=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    length=packet_lengths,
    rate=st.floats(min_value=10.0, max_value=1000.0, allow_nan=False),
)
def test_eat_dominates_arrivals_and_spaces_by_service(arrivals, length, rate):
    ordered = sorted(arrivals)
    eats = expected_arrival_times(ordered, [length] * len(ordered), [rate] * len(ordered))
    for arrival, eat in zip(ordered, eats):
        assert eat >= arrival
    for e1, e2 in zip(eats, eats[1:]):
        assert e2 - e1 >= length / rate - 1e-9
