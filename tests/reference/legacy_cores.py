"""Frozen seed ("legacy") scheduler cores — the pre-flow-head-heap originals.

These classes are byte-for-byte copies of the scheduler hot paths as they
stood before the flow-head-heap rewrite: one global heap of *packets*
per scheduler, ``O(log N)`` in total backlog per operation, and a
``_discarded`` uid set for ``discard_tail`` laziness. They exist for two
consumers:

* the same-seed trace-equivalence suite (``tests/test_trace_equivalence.py``),
  which proves the optimized cores are behaviorally identical to these; and
* the perf-regression harness (``python -m repro bench`` and
  ``benchmarks/``), which measures the optimized cores *against* them so
  every speedup claim in ``BENCH_schedulers.json`` is reproducible.

Do not "fix" or modernize this module: its value is that it does not change.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.base import Scheduler, SchedulerError, TieBreak
from repro.core.flow import FlowState
from repro.core.gps import GPSVirtualClock
from repro.core.packet import Packet

TieBreakRule = Callable[[FlowState, Packet], Tuple]


class LegacySFQ(Scheduler):
    """Start-time Fair Queuing.

    Parameters
    ----------
    tie_break:
        Secondary sort key for packets with equal start tags; one of the
        rules in :class:`repro.core.base.TieBreak` or any callable
        ``(FlowState, Packet) -> tuple``.
    """

    algorithm = "SFQ"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._tie_break = tie_break
        # Heap entries: (start_tag, tie_key, uid, packet). The uid keeps
        # comparison total and preserves FIFO order among equal keys.
        self._heap: List[Tuple] = []
        self.v = 0.0  # system virtual time v(t)
        self._max_served_finish = 0.0
        # Packets removed by discard_tail; their heap entries are stale.
        self._discarded: set = set()

    # ------------------------------------------------------------------
    # Scheduler protocol
    # ------------------------------------------------------------------
    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        rate = state.packet_rate(packet)
        start = max(self.v, state.last_finish)
        finish = start + packet.length / rate
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        key = self._tie_break(state, packet)
        heapq.heappush(self._heap, (start, key, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        while self._heap and self._heap[0][2] in self._discarded:
            self._discarded.discard(heapq.heappop(self._heap)[2])
        if not self._heap:
            return None
        start, _key, _uid, packet = heapq.heappop(self._heap)
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet, "per-flow FIFO must match global tag order"
        # Rule 2: v(t) is the start tag of the packet in service.
        self.v = start
        if packet.finish_tag is not None and packet.finish_tag > self._max_served_finish:
            self._max_served_finish = packet.finish_tag
        return packet

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        if self._backlog_packets == 0:
            # End of busy period: v is set to the maximum finish tag
            # assigned to any packet serviced by now (rule 2).
            self.v = max(self.v, self._max_served_finish)

    def _do_discard_tail(self, state: FlowState) -> Optional[Packet]:
        packet = state.queue.pop()
        self._discarded.add(packet.uid)
        # Re-chain future arrivals off the new tail so no virtual-time
        # gap is left where the discarded packet sat.
        tail = state.queue[-1] if state.queue else None
        state.last_finish = tail.finish_tag if tail is not None else packet.start_tag
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        while self._heap and self._heap[0][2] in self._discarded:
            self._discarded.discard(heapq.heappop(self._heap)[2])
        return self._heap[0][3] if self._heap else None

    @property
    def virtual_time(self) -> float:
        """Current system virtual time ``v(t)``."""
        return self.v


class LegacySCFQ(Scheduler):
    """Self-Clocked Fair Queuing."""

    algorithm = "SCFQ"

    def __init__(
        self,
        tie_break: Callable[[FlowState, Packet], Tuple] = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._tie_break = tie_break
        self._heap: List[Tuple] = []
        self.v = 0.0
        self._max_served_finish = 0.0
        self._discarded: set = set()

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        rate = state.packet_rate(packet)
        start = max(self.v, state.last_finish)
        finish = start + packet.length / rate
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        key = self._tie_break(state, packet)
        heapq.heappush(self._heap, (finish, key, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        while self._heap and self._heap[0][2] in self._discarded:
            self._discarded.discard(heapq.heappop(self._heap)[2])
        if not self._heap:
            return None
        finish, _key, _uid, packet = heapq.heappop(self._heap)
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet, "per-flow FIFO must match global tag order"
        # Self-clocking: v(t) approximates GPS round number with the
        # finish tag of the packet in service.
        self.v = finish
        if finish > self._max_served_finish:
            self._max_served_finish = finish
        return packet

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        if self._backlog_packets == 0:
            self.v = max(self.v, self._max_served_finish)

    def _do_discard_tail(self, state: FlowState) -> Optional[Packet]:
        packet = state.queue.pop()
        self._discarded.add(packet.uid)
        tail = state.queue[-1] if state.queue else None
        state.last_finish = tail.finish_tag if tail is not None else packet.start_tag
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        while self._heap and self._heap[0][2] in self._discarded:
            self._discarded.discard(heapq.heappop(self._heap)[2])
        return self._heap[0][3] if self._heap else None

    @property
    def virtual_time(self) -> float:
        return self.v


class LegacyWFQ(Scheduler):
    """Weighted Fair Queuing (packet-by-packet GPS).

    Parameters
    ----------
    assumed_capacity:
        The link capacity (bits/s) used to simulate the fluid GPS system.
        WFQ has no way to learn the *actual* capacity; feeding it a value
        that differs from reality reproduces Example 2's unfairness.
    """

    algorithm = "WFQ"

    def __init__(
        self,
        assumed_capacity: float,
        tie_break: Callable[[FlowState, Packet], Tuple] = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self.gps = GPSVirtualClock(assumed_capacity)
        self._tie_break = tie_break
        self._heap: List[Tuple] = []

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        v = self.gps.advance(now)
        rate = state.packet_rate(packet)
        start = max(v, state.last_finish)
        finish = start + packet.length / rate
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        self.gps.on_arrival(packet.flow, state.weight, finish)
        key = self._tie_break(state, packet)
        heapq.heappush(self._heap, (finish, key, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        _finish, _key, _uid, packet = heapq.heappop(self._heap)
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet, "per-flow FIFO must match global tag order"
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        return self._heap[0][3] if self._heap else None

    @property
    def virtual_time(self) -> float:
        """Fluid GPS virtual time at the last advance."""
        return self.gps.v


class LegacyFQS(LegacyWFQ):
    """Fair Queuing based on Start-time (Greenberg & Madras 1992).

    Identical tag computation to WFQ (fluid GPS ``v(t)``), but packets
    are scheduled in increasing order of **start** tags. The paper notes
    FQS shares all of WFQ's disadvantages (GPS cost, unfairness on
    variable-rate servers) with no delay advantage over SFQ.
    """

    algorithm = "FQS"

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        v = self.gps.advance(now)
        rate = state.packet_rate(packet)
        start = max(v, state.last_finish)
        finish = start + packet.length / rate
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        self.gps.on_arrival(packet.flow, state.weight, finish)
        key = self._tie_break(state, packet)
        heapq.heappush(self._heap, (start, key, packet.uid, packet))


class LegacyWF2Q(Scheduler):
    """Worst-case Fair Weighted Fair Queueing (work-conserving variant)."""

    algorithm = "WF2Q"

    def __init__(
        self,
        assumed_capacity: float,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self.gps = GPSVirtualClock(assumed_capacity)
        # Heap of (finish, uid, packet) — scanned for eligibility.
        self._heap: List[Tuple[float, int, Packet]] = []

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        v = self.gps.advance(now)
        rate = state.packet_rate(packet)
        start = max(v, state.last_finish)
        finish = start + packet.length / rate
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        self.gps.on_arrival(packet.flow, state.weight, finish)
        heapq.heappush(self._heap, (finish, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        v = self.gps.advance(now)
        # Pop ineligible heads aside until an eligible packet surfaces.
        shelved: List[Tuple[float, int, Packet]] = []
        chosen: Optional[Packet] = None
        while self._heap:
            finish, uid, packet = heapq.heappop(self._heap)
            if packet.start_tag is not None and packet.start_tag <= v + 1e-12:
                chosen = packet
                break
            shelved.append((finish, uid, packet))
        for entry in shelved:
            heapq.heappush(self._heap, entry)
        if chosen is None:
            # Work-conserving fallback: smallest start tag.
            chosen = min(
                (entry[2] for entry in self._heap), key=lambda p: p.start_tag
            )
            self._heap = [e for e in self._heap if e[2] is not chosen]
            heapq.heapify(self._heap)
        state = self.flows[chosen.flow]
        popped = state.pop()
        assert popped is chosen, "per-flow FIFO must match tag order"
        return chosen

    def peek(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        v = self.gps.advance(now)
        eligible = [p for _f, _u, p in self._heap if p.start_tag <= v + 1e-12]
        if eligible:
            return min(eligible, key=lambda p: (p.finish_tag, p.uid))
        return min((p for _f, _u, p in self._heap), key=lambda p: p.start_tag)

    @property
    def virtual_time(self) -> float:
        return self.gps.v


class LegacyVirtualClock(Scheduler):
    """Virtual Clock scheduler."""

    algorithm = "VirtualClock"

    def __init__(
        self,
        tie_break: Callable[[FlowState, Packet], Tuple] = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._tie_break = tie_break
        self._heap: List[Tuple] = []

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        rate = state.packet_rate(packet)
        eat = state.eat.on_arrival(now, packet.length, rate)
        stamp = eat + packet.length / rate
        packet.timestamp = stamp
        # Keep tags populated for uniform trace analysis.
        packet.start_tag = eat
        packet.finish_tag = stamp
        state.push(packet)
        key = self._tie_break(state, packet)
        heapq.heappush(self._heap, (stamp, key, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        _stamp, _key, _uid, packet = heapq.heappop(self._heap)
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet, "per-flow FIFO must match stamp order"
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        return self._heap[0][3] if self._heap else None


class LegacyDelayEDD(Scheduler):
    """Delay Earliest-Due-Date scheduler.

    Flows must be registered with :meth:`add_flow_with_deadline` (each
    flow has a deadline parameter :math:`d_f` in addition to its rate).
    """

    algorithm = "DelayEDD"

    def __init__(self, auto_register: bool = False, default_weight: float = 1.0) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self.deadlines: Dict[Hashable, float] = {}
        self._heap: List[Tuple] = []

    def add_flow_with_deadline(
        self, flow_id: Hashable, rate: float, deadline: float
    ) -> FlowState:
        """Register a flow with rate ``rate`` (bits/s) and per-packet
        deadline offset ``deadline`` (seconds)."""
        if deadline <= 0:
            raise SchedulerError(f"deadline must be positive, got {deadline}")
        state = self.add_flow(flow_id, rate)
        self.deadlines[flow_id] = float(deadline)
        return state

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        deadline_offset = self.deadlines.get(packet.flow)
        if deadline_offset is None:
            raise SchedulerError(
                f"flow {packet.flow!r} has no deadline; use add_flow_with_deadline"
            )
        rate = state.packet_rate(packet)
        eat = state.eat.on_arrival(now, packet.length, rate)
        packet.deadline = eat + deadline_offset
        packet.start_tag = eat
        state.push(packet)
        heapq.heappush(self._heap, (packet.deadline, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        _deadline, _uid, packet = heapq.heappop(self._heap)
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet, "per-flow FIFO must match deadline order"
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        return self._heap[0][2] if self._heap else None

