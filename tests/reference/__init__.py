"""Frozen seed implementations used by the equivalence and perf suites.

``legacy_cores`` holds the pre-optimization scheduler classes;
``legacy_engine`` holds the pre-optimization event loop. Both are
deliberately unmaintained snapshots — see their module docstrings.
"""
