"""Frozen seed ("legacy") event engine — the pre-fast-loop original.

A byte-for-byte copy of the seed :class:`Simulator`: every scheduled
callback allocates an :class:`~repro.simulation.events.Event` handle, and
the run loop re-enters helper methods per event. The perf-regression
harness measures the optimized engine against this one; see
``tests/reference/legacy_cores.py`` for the matching scheduler snapshot.

Do not modernize this module: its value is that it does not change.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from repro.simulation.engine import SimulationError
from repro.simulation.events import Event


class LegacySimulator:
    """Discrete-event simulator with a float-seconds clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._running = False
        self._stopped = False
        self._truncated = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (for complexity accounting)."""
        return self._events_processed

    @property
    def truncated(self) -> bool:
        """True when the last :meth:`run` hit ``max_events`` with work
        still pending (within ``until``, if one was given).

        A truncated run is an *incomplete* simulation — results computed
        from its traces are suspect. The flag is reset by the next call
        to :meth:`run`.
        """
        return self._truncated

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``.

        ``time`` may equal ``now`` (the event fires after the current
        callback returns) but may not lie in the past.
        """
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at NaN")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self._now}"
            )
        event = Event(time, callback, args, priority=priority)
        heapq.heappush(self._heap, event)
        return event

    def after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, callback, *args, priority=priority)

    # ------------------------------------------------------------------
    # Run controls
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the loop after the currently firing event returns."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the single next event. Returns False when none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._events_processed += 1
        event._fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time
            and advance the clock to exactly ``until``. ``None`` runs to
            event-queue exhaustion.
        max_events:
            Safety valve for runaway simulations. Exhausting it with
            events still pending sets :attr:`truncated` so callers can
            tell an incomplete run from a naturally finished one.

        Returns the simulation time at which the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        self._truncated = False
        fired = 0
        try:
            while not self._stopped:
                self._drop_cancelled()
                if not self._heap:
                    break
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                self._events_processed += 1
                event._fire()
                fired += 1
                if max_events is not None and fired >= max_events:
                    self._drop_cancelled()
                    if self._heap and (
                        until is None or self._heap[0].time <= until
                    ):
                        self._truncated = True
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run(until=self._now + duration, max_events=max_events)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.9g}, pending={len(self._heap)})"
