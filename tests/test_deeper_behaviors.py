"""Deeper behavioural tests across modules: the reverse Example 2
direction, GPS fluid exactness, VBR autocorrelation, TCP recovery
details, flow churn, and experiment-parameter validation."""

from __future__ import annotations

import random

import pytest

from tests.helpers import run_schedule
from repro.core import SFQ, WFQ, Packet
from repro.core.gps import GPSVirtualClock
from repro.servers import ConstantCapacity, Link, PiecewiseCapacity
from repro.simulation import RandomStreams, Simulator
from repro.traffic import VBRVideoSource


# ----------------------------------------------------------------------
# WFQ: the paper's "similar example can also be constructed" direction —
# real capacity HIGHER than assumed.
# ----------------------------------------------------------------------
def test_wfq_unfair_when_real_capacity_higher_than_assumed():
    """Real rate 10x the assumed: the fluid system lags reality, so a
    backlogged flow's tags crawl and a newcomer overtakes unfairly under
    WFQ; SFQ keeps the split near-even."""
    real = PiecewiseCapacity.from_list([(0.0, 1000.0)])
    results = {}
    for name, sched in (
        ("WFQ", WFQ(assumed_capacity=100.0)),  # 10x underestimate
        ("SFQ", SFQ()),
    ):
        sched.add_flow("f", 1.0)
        sched.add_flow("m", 1.0)
        sim = Simulator()
        link = Link(sim, sched, PiecewiseCapacity.from_list([(0.0, 1000.0)]))
        sim.at(0.0, lambda lk=link: [lk.send(Packet("f", 100, seqno=i)) for i in range(100)])
        sim.at(2.0, lambda lk=link: [lk.send(Packet("m", 100, seqno=i)) for i in range(100)])
        sim.run()
        results[name] = (
            link.tracer.work_in_interval("f", 2.0, 12.0),
            link.tracer.work_in_interval("m", 2.0, 12.0),
        )
    sfq_f, sfq_m = results["SFQ"]
    wfq_f, wfq_m = results["WFQ"]
    assert abs(sfq_f - sfq_m) <= 200  # SFQ near-even
    assert abs(wfq_f - wfq_m) > abs(sfq_f - sfq_m)  # WFQ skews


# ----------------------------------------------------------------------
# GPS fluid exactness
# ----------------------------------------------------------------------
def test_gps_matches_hand_computed_fluid_trajectory():
    """Three flows, staggered arrivals: v(t) piece by piece by hand."""
    gps = GPSVirtualClock(120.0)
    gps.on_arrival("a", 60.0, finish_tag=4.0)  # at t=0
    # Slope 120/60 = 2 until b arrives.
    assert gps.advance(1.0) == pytest.approx(2.0)
    gps.on_arrival("b", 30.0, finish_tag=6.0)
    # Slope 120/90 = 4/3; a retires at v=4, which takes (4-2)/(4/3)=1.5s.
    assert gps.advance(2.0) == pytest.approx(2.0 + 4.0 / 3.0)
    assert gps.advance(2.5) == pytest.approx(4.0)  # a retires exactly now
    # Slope now 120/30 = 4; b retires at v=6 after 0.5s more.
    assert gps.advance(3.0) == pytest.approx(6.0)
    assert gps.fluid_backlogged_flows == 0
    # Idle: v frozen.
    assert gps.advance(10.0) == pytest.approx(6.0)


def test_gps_reentrant_flow_after_idle():
    gps = GPSVirtualClock(100.0)
    gps.on_arrival("a", 100.0, finish_tag=1.0)
    gps.advance(5.0)
    assert gps.fluid_backlogged_flows == 0
    gps.on_arrival("a", 100.0, finish_tag=7.0)
    assert gps.advance(6.0) == pytest.approx(2.0)
    assert gps.fluid_backlogged_flows == 1


# ----------------------------------------------------------------------
# VBR scene correlation
# ----------------------------------------------------------------------
def test_vbr_frame_sizes_positively_autocorrelated():
    src = VBRVideoSource(
        Simulator(), "v", lambda p: None, mean_rate=1_000_000.0,
        rng=RandomStreams(5).stream("vbr"), scene_correlation=0.99,
    )
    gop = len(src.gop)
    # Compare I-frame sizes (one per GOP) lag-1 autocorrelation.
    i_sizes = []
    for _ in range(200 * gop):
        ftype = src.gop[src._frame_index % gop]
        size = src.next_frame_bits()
        if ftype == "I":
            i_sizes.append(float(size))
    mean = sum(i_sizes) / len(i_sizes)
    num = sum(
        (a - mean) * (b - mean) for a, b in zip(i_sizes, i_sizes[1:])
    )
    den = sum((a - mean) ** 2 for a in i_sizes)
    assert num / den > 0.3  # strong scene persistence


def test_vbr_no_correlation_when_disabled():
    src = VBRVideoSource(
        Simulator(), "v", lambda p: None, mean_rate=1_000_000.0,
        rng=RandomStreams(5).stream("vbr"), scene_correlation=0.0,
    )
    gop = len(src.gop)
    i_sizes = []
    for _ in range(300 * gop):
        ftype = src.gop[src._frame_index % gop]
        size = src.next_frame_bits()
        if ftype == "I":
            i_sizes.append(float(size))
    mean = sum(i_sizes) / len(i_sizes)
    num = sum((a - mean) * (b - mean) for a, b in zip(i_sizes, i_sizes[1:]))
    den = sum((a - mean) ** 2 for a in i_sizes)
    assert abs(num / den) < 0.2


# ----------------------------------------------------------------------
# TCP recovery details
# ----------------------------------------------------------------------
def test_two_dupacks_do_not_trigger_fast_retransmit():
    from repro.transport import TcpReceiver, TcpSender

    sim = Simulator()
    receiver = TcpReceiver(sim, "t")
    sent = []
    sender = TcpSender(sim, "t", sent.append, receiver, segment_bytes=100)
    sender.cwnd = 10.0
    sender.start()
    sim.run(max_events=3)
    before = sender.retransmissions
    sender.on_ack(0)
    sender.on_ack(0)  # only 2 dupacks
    assert sender.retransmissions == before
    assert not sender.in_fast_recovery


def test_third_dupack_halves_and_retransmits():
    from repro.transport import TcpReceiver, TcpSender

    sim = Simulator()
    receiver = TcpReceiver(sim, "t")
    sent = []
    sender = TcpSender(sim, "t", sent.append, receiver, segment_bytes=100)
    sender.start()
    sim.run(max_events=2)
    sender.cwnd = 16.0
    sender.next_seq = 8  # pretend 8 outstanding
    for _ in range(3):
        sender.on_ack(0)
    assert sender.in_fast_recovery
    assert sender.ssthresh == pytest.approx(8.0)
    assert sender.retransmissions >= 1
    assert any(p.seqno == 0 for p in sent if hasattr(p, "seqno"))


# ----------------------------------------------------------------------
# Flow churn: remove/re-add flows mid-run
# ----------------------------------------------------------------------
def test_fairness_after_flow_churn():
    sim = Simulator()
    sfq = SFQ(auto_register=False)
    sfq.add_flow("a", 1.0)
    sfq.add_flow("b", 1.0)
    link = Link(sim, sfq, ConstantCapacity(1000.0))
    sim.at(0.0, lambda: [link.send(Packet("a", 100, seqno=i)) for i in range(200)])
    sim.at(0.0, lambda: [link.send(Packet("b", 100, seqno=i)) for i in range(20)])
    # After b drains, remove it and add c; a and c must share evenly.
    def churn():
        sfq.remove_flow("b")
        sfq.add_flow("c", 1.0)
        for i in range(60):
            link.send(Packet("c", 100, seqno=i))

    sim.at(10.0, churn)
    sim.run()
    wa = link.tracer.work_in_interval("a", 10.0, 18.0)
    wc = link.tracer.work_in_interval("c", 10.0, 18.0)
    assert wa == pytest.approx(wc, rel=0.1)


# ----------------------------------------------------------------------
# Experiment parameter validation
# ----------------------------------------------------------------------
def test_figure_runners_reject_unknown_algorithm():
    from repro.experiments.figure1 import run_figure1_variant
    from repro.experiments.figure2b import run_point

    with pytest.raises(ValueError):
        run_figure1_variant("DRR")
    with pytest.raises(ValueError):
        run_point("FIFO", 2)
