"""Event-queue backends: parity, calendar internals, selection API.

The headline test drives >=10^5 randomized mixed operations
(``call_at``/``call_after``/``at``+cancel/``run_for``) through the heap
and calendar backends side by side and asserts the two simulators fire
the identical event sequence and end on identical clocks — the
operational form of the guarantee the trace-equivalence suite checks
end-to-end. Seeds are rooted in ``derive_seed`` (DET005 discipline).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.simulation import (
    BinaryHeapQueue,
    CalendarQueue,
    EVENT_QUEUES,
    Simulator,
    derive_seed,
    make_event_queue,
    set_default_event_queue,
)

BACKENDS = sorted(EVENT_QUEUES)


# ---------------------------------------------------------------------------
# Randomized cross-backend parity
# ---------------------------------------------------------------------------


def _drive(sim: Simulator, rng: random.Random, ops: int, log: list) -> None:
    """Apply a seeded operation mix to ``sim``, recording every firing."""
    counter = [0]
    handles = []

    def fire(tag: int) -> None:
        log.append((round(sim.now, 9), tag))

    for _ in range(ops):
        roll = rng.random()
        if roll < 0.42:
            tag = counter[0]
            counter[0] += 1
            sim.call_at(sim.now + rng.uniform(0.0, 7.0), fire, tag)
        elif roll < 0.70:
            tag = counter[0]
            counter[0] += 1
            sim.call_after(rng.uniform(0.0, 0.2), fire, tag)
        elif roll < 0.88:
            tag = counter[0]
            counter[0] += 1
            handles.append(sim.at(sim.now + rng.uniform(0.0, 40.0), fire, tag))
        elif roll < 0.96 and handles:
            handles.pop(rng.randrange(len(handles))).cancel()
        else:
            sim.run_for(rng.uniform(0.0, 3.0))
    sim.run()


def test_randomized_parity_100k_ops():
    """>=10^5 mixed ops: identical pop order and final clocks."""
    ops = 100_000
    seed = derive_seed("eventq-parity", ops)
    logs = {}
    clocks = {}
    for backend in BACKENDS:
        rng = random.Random(seed)  # same op sequence for every backend
        sim = Simulator(event_queue=backend)
        log: list = []
        _drive(sim, rng, ops, log)
        logs[backend] = log
        clocks[backend] = sim.now
    reference = logs[BACKENDS[0]]
    assert len(reference) > ops // 2  # the mix actually fired things
    for backend in BACKENDS[1:]:
        assert logs[backend] == reference
        assert clocks[backend] == clocks[BACKENDS[0]]


@pytest.mark.parametrize("case", range(3))
def test_randomized_parity_small_cases(case):
    """Smaller seeds x cases for quicker shrinking when parity breaks."""
    seed = derive_seed("eventq-parity-small", case)
    logs = []
    for backend in BACKENDS:
        rng = random.Random(seed)
        sim = Simulator(event_queue=backend)
        log: list = []
        _drive(sim, rng, 2_000, log)
        logs.append(log)
    assert logs[0] == logs[1]


def test_identical_timestamp_fifo_order_across_backends():
    for backend in BACKENDS:
        sim = Simulator(event_queue=backend)
        order: list = []
        for i in range(50):
            sim.call_at(1.0, order.append, i)
        sim.run()
        assert order == list(range(50))


# ---------------------------------------------------------------------------
# CalendarQueue internals
# ---------------------------------------------------------------------------


def _entry(t: float, seq: int):
    return (t, 0, seq, None, lambda: None, ())


def test_calendar_pop_order_with_far_future_overflow():
    q = CalendarQueue()
    times = [1e12, 0.5, 3.0, 1e9, 0.25, 7.5, 2e12]
    for i, t in enumerate(times):
        q.push(_entry(t, i))
    assert len(q) == len(times)
    popped = [q.pop()[0] for _ in range(len(times))]
    assert popped == sorted(times)
    assert len(q) == 0
    with pytest.raises(IndexError):
        q.pop()


def test_calendar_rollover_promotes_overflow():
    q = CalendarQueue(width=1.0, buckets=256)
    # Everything far beyond the initial year [0, 256): all overflow.
    for i in range(100):
        q.push(_entry(1e6 + i * 0.5, i))
    popped = [q.pop()[0] for _ in range(100)]
    assert popped == sorted(popped)


def test_calendar_rebuild_on_dense_year():
    # Thousands of entries in a tiny time span force occupancy-driven
    # rebuilds; order must survive them.
    q = CalendarQueue(width=1.0, buckets=256)
    n = 4_000
    for i in range(n):
        q.push(_entry((i * 7919 % n) * 1e-6, i))
    popped = [q.pop()[:3] for _ in range(n)]
    assert popped == sorted(popped)
    assert q._nbuck > 256  # the rebuild actually grew the year


def test_calendar_clamps_pre_epoch_and_boundary_times():
    q = CalendarQueue(width=1.0, buckets=256)
    q.push(_entry(1000.0, 0))
    q.pop()  # re-anchors the year at epoch=1000 via rollover
    # A push before the epoch is legal (now <= epoch always holds for
    # the engine, but the queue itself tolerates any ordering).
    q.push(_entry(999.5, 1))
    q.push(_entry(1000.5, 2))
    assert q.pop()[0] == 999.5
    assert q.pop()[0] == 1000.5


def test_calendar_peek_live_discards_cancelled():
    sim = Simulator(event_queue="calendar")
    first = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    first.cancel()
    assert sim.peek() == 2.0


def test_calendar_thin_rollovers_widen_buckets():
    q = CalendarQueue(width=1e-9, buckets=256)
    # Events spaced vastly wider than the year (256 ns): every rollover
    # promotes one entry, so the width must adapt upward.
    for i in range(200):
        q.push(_entry(float(i), i))
    start_width = q._width
    popped = [q.pop()[0] for _ in range(200)]
    assert popped == sorted(popped)
    assert q._width > start_width


# ---------------------------------------------------------------------------
# Selection API
# ---------------------------------------------------------------------------


def test_explicit_backend_selection(monkeypatch):
    # The suite itself may run under REPRO_EVENT_QUEUE (CI's
    # eventq-smoke job does); pin the environment for default checks.
    monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
    assert isinstance(Simulator().event_queue, BinaryHeapQueue)
    assert isinstance(
        Simulator(event_queue="calendar").event_queue, CalendarQueue
    )
    assert isinstance(
        Simulator(event_queue=CalendarQueue).event_queue, CalendarQueue
    )
    queue = BinaryHeapQueue()
    assert Simulator(event_queue=queue).event_queue is queue


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown event queue"):
        Simulator(event_queue="splay")
    with pytest.raises(TypeError):
        make_event_queue(42)


def test_set_default_event_queue(monkeypatch):
    monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
    try:
        set_default_event_queue("calendar")
        assert isinstance(Simulator().event_queue, CalendarQueue)
        set_default_event_queue(None)
        assert isinstance(Simulator().event_queue, BinaryHeapQueue)
    finally:
        set_default_event_queue(None)


def test_set_default_rejects_instances():
    with pytest.raises(TypeError, match="name or factory"):
        set_default_event_queue(BinaryHeapQueue())


def test_env_var_selection(monkeypatch):
    monkeypatch.setenv("REPRO_EVENT_QUEUE", "calendar")
    assert isinstance(Simulator().event_queue, CalendarQueue)
    # Explicit argument and set_default both beat the environment.
    assert isinstance(Simulator(event_queue="heap").event_queue, BinaryHeapQueue)
    try:
        set_default_event_queue("heap")
        assert isinstance(Simulator().event_queue, BinaryHeapQueue)
    finally:
        set_default_event_queue(None)


def test_factory_must_implement_interface():
    with pytest.raises(TypeError, match="event-queue interface"):
        make_event_queue(lambda: object())


# ---------------------------------------------------------------------------
# Engine behavior on both backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_until_and_budget(backend):
    sim = Simulator(event_queue=backend)
    fired: list = []
    for i in range(10):
        sim.call_at(float(i), fired.append, i)
    assert sim.run(until=4.5) == 4.5
    assert fired == [0, 1, 2, 3, 4]
    sim.run(max_events=2)
    assert fired == [0, 1, 2, 3, 4, 5, 6]
    assert sim.truncated
    sim.run()
    assert fired == list(range(10))


@pytest.mark.parametrize("backend", BACKENDS)
def test_stop_mid_run(backend):
    sim = Simulator(event_queue=backend)
    fired: list = []
    sim.call_at(1.0, fired.append, 1)
    sim.call_at(2.0, sim.stop)
    sim.call_at(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.now == 2.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_past_and_nan_scheduling_rejected(backend):
    from repro.simulation.engine import SimulationError

    sim = Simulator(event_queue=backend, start_time=5.0)
    with pytest.raises(SimulationError, match="past"):
        sim.call_at(4.0, lambda: None)
    with pytest.raises(SimulationError, match="NaN"):
        sim.at(math.nan, lambda: None)
