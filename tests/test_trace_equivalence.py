"""Same-stimulus trace equivalence: optimized cores vs frozen seed cores.

The flow-head-heap rewrite (``repro.core.headheap``) claims to be a pure
performance change: for every tag scheduler, the sequence of scheduling
decisions — and therefore every packet's (arrival, start-of-service,
departure, dropped) trace — must be identical to the seed
implementation's, packet for packet, bit for bit.

This suite drives the optimized scheduler and its frozen seed copy
(``tests/reference/legacy_cores.py``) through the *same* deterministic
workload on the real ``Simulator`` + ``Link`` stack and compares the
full trace record streams for exact equality. The optimized side is
constructed through ``make_scheduler`` and parametrized over **both
backends** — ``"object"`` (per-flow FlowState, ``repro.core.headheap``)
and ``"array"`` (struct-of-arrays slab + int-keyed heap,
``repro.core.arrayheap``) — so the slab layout is held to the same
byte-identical standard as the original head-heap rewrite. Workloads
are shaped after the paper's experiments:

* ``table1``   — two flows, the second joining mid-busy-period
  (Table 1's f/m throughput split);
* ``figure1``  — eight flows with a 13:1 weight spread under sustained
  overload (Figure 1's weighted sharing);
* ``figure23`` — on-off bursts plus per-packet rate overrides
  (Figures 2/3's bursty sources; exercises the eq. 36 per-packet-rate
  path, which the optimized cores compute differently);
* ``churn``    — flows that drain idle and return, plus flows first
  seen mid-run (auto-registration), emptying and re-seeding the
  flow-head heap;
* ``discard``  — a tiny shared buffer with longest-queue-drop
  (SFQ/SCFQ only: the O(1) ``discard_tail`` path with lazy entry
  invalidation vs the seed's stale-uid set).

Anything that changes the service order — a wrong head-heap invariant,
a stale entry served, a tie broken differently — shows up as a trace
mismatch with the exact packet pinpointed.
"""

from __future__ import annotations

import pytest

from repro.core.packet import Packet
from repro.core.registry import make_scheduler
from repro.servers import ConstantCapacity
from repro.servers.link import Link
from repro.simulation.engine import Simulator
from repro.simulation.tracing import Tracer

from tests.reference.legacy_cores import (
    LegacyDelayEDD,
    LegacyFQS,
    LegacySCFQ,
    LegacySFQ,
    LegacyVirtualClock,
    LegacyWF2Q,
    LegacyWFQ,
)

CAPACITY = 1000.0  # bits/s for every workload link

# Flow weight plan shared by workload builders (id -> rate in bits/s).
WEIGHTS = {
    "f": 600.0,
    "m": 400.0,
    "w0": 650.0,
    "w1": 50.0,
    "w2": 125.0,
    "w3": 300.0,
    "w4": 175.0,
    "w5": 90.0,
    "w6": 410.0,
    "w7": 220.0,
    "late0": 130.0,
    "late1": 270.0,
}


def _lcg(seed: int):
    """Tiny deterministic generator (identical across both runs)."""
    state = seed & 0x7FFFFFFF

    def nxt(lo: int, hi: int) -> int:
        nonlocal state
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        return lo + state % (hi - lo + 1)

    return nxt


# ----------------------------------------------------------------------
# Workloads: each returns (flow_ids, [(time, flow, length, rate), ...],
# link_kwargs)
# ----------------------------------------------------------------------
def workload_table1():
    arrivals = []
    for i in range(60):
        arrivals.append((i * 0.9, "f", 900, None))
    for i in range(40):
        arrivals.append((12.0 + i * 1.1, "m", 700, None))
    return ["f", "m"], arrivals, {}


def workload_figure1():
    flows = [f"w{i}" for i in range(8)]
    rnd = _lcg(20260806)
    arrivals = []
    for i, flow in enumerate(flows):
        t = 0.05 * i
        for _ in range(35):
            length = rnd(2, 12) * 100
            arrivals.append((t, flow, length, None))
            t += rnd(20, 140) / 100.0
    return flows, arrivals, {}


def workload_figure23():
    flows = ["w0", "w3", "w6"]
    arrivals = []
    rnd = _lcg(977)
    t = 0.0
    for burst in range(12):
        for flow in flows:
            n = rnd(2, 6)
            for k in range(n):
                length = rnd(3, 9) * 100
                # Every third burst carries a per-packet rate override
                # (eq. 36's generalized per-packet r_f^j).
                rate = WEIGHTS[flow] * 1.5 if burst % 3 == 2 else None
                arrivals.append((t + 0.01 * k, flow, length, rate))
        t += rnd(300, 800) / 100.0  # long gaps: queues drain fully
    return flows, arrivals, {}


def workload_churn():
    arrivals = []
    rnd = _lcg(424242)
    # Phase 1: w1/w2 active, then idle (heap empties for both).
    for i in range(15):
        arrivals.append((i * 0.4, "w1", 500, None))
        arrivals.append((0.1 + i * 0.5, "w2", 600, None))
    # Phase 2: previously unseen flows auto-register mid-run.
    for i in range(20):
        arrivals.append((30.0 + i * 0.3, "late0", rnd(2, 8) * 100, None))
        arrivals.append((30.2 + i * 0.45, "late1", 400, None))
    # Phase 3: the phase-1 flows return after full drain.
    for i in range(10):
        arrivals.append((55.0 + i * 0.6, "w1", 800, None))
        arrivals.append((55.3 + i * 0.7, "w2", 300, None))
    return ["w1", "w2", "late0", "late1"], arrivals, {}


def workload_discard():
    # Severe overload against a 6-packet buffer with longest-queue-drop:
    # constant evictions exercise discard_tail + lazy invalidation.
    arrivals = []
    rnd = _lcg(31337)
    for i in range(80):
        arrivals.append((i * 0.15, "f", rnd(4, 10) * 100, None))
    for i in range(50):
        arrivals.append((0.07 + i * 0.22, "m", 600, None))
    for i in range(25):
        arrivals.append((3.0 + i * 0.5, "w5", 500, None))
    return ["f", "m", "w5"], arrivals, {
        "buffer_packets": 6,
        "drop_policy": "longest_queue",
    }


WORKLOADS = {
    "table1": workload_table1,
    "figure1": workload_figure1,
    "figure23": workload_figure23,
    "churn": workload_churn,
    "discard": workload_discard,
}


# ----------------------------------------------------------------------
# Scheduler pairs (optimized factory by backend, legacy factory)
# ----------------------------------------------------------------------
def _edd_setup(sched, flow_ids):
    for fid in flow_ids:
        sched.add_flow_with_deadline(fid, WEIGHTS[fid], 2.0)


def _opt(name, **kwargs):
    """Optimized-side factory: registry construction, backend-selectable."""

    def factory(backend):
        return make_scheduler(name, backend=backend, **kwargs)

    return factory


# Since the PIFO core every tag discipline, DelayEDD included, has a
# real array variant (a rank function on ArrayPifoScheduler); both
# backends must stay byte-identical to the frozen legacy cores.
SCHEDULERS = {
    "SFQ": (_opt("SFQ"), lambda: LegacySFQ(), None),
    "SCFQ": (_opt("SCFQ"), lambda: LegacySCFQ(), None),
    "WFQ": (_opt("WFQ", capacity=CAPACITY), lambda: LegacyWFQ(CAPACITY), None),
    "FQS": (_opt("FQS", capacity=CAPACITY), lambda: LegacyFQS(CAPACITY), None),
    "WF2Q": (_opt("WF2Q", capacity=CAPACITY), lambda: LegacyWF2Q(CAPACITY), None),
    "VirtualClock": (_opt("VirtualClock"), lambda: LegacyVirtualClock(), None),
    "DelayEDD": (_opt("DelayEDD"), lambda: LegacyDelayEDD(), _edd_setup),
}

BACKENDS = ("object", "array")

#: Event-queue backends the optimized side must be byte-identical under.
#: The seed side always runs on the default binary heap, so each case
#: doubles as a cross-event-queue equivalence check.
EVENT_QUEUE_BACKENDS = ("heap", "calendar")

#: Schedulers supporting discard_tail (the others raise NotImplementedError).
DISCARD_CAPABLE = {"SFQ", "SCFQ"}


def run_trace(scheduler_factory, setup, workload_name, event_queue=None):
    """Run one (scheduler, workload) combination; return the trace."""
    flow_ids, arrivals, link_kwargs = WORKLOADS[workload_name]()
    sim = Simulator() if event_queue is None else Simulator(event_queue=event_queue)
    sched = scheduler_factory()
    if setup is not None:
        setup(sched, flow_ids)
    else:
        for fid in flow_ids:
            sched.add_flow(fid, WEIGHTS[fid])
    link = Link(
        sim,
        sched,
        ConstantCapacity(CAPACITY),
        name="eq",
        tracer=Tracer("eq"),
        **link_kwargs,
    )
    seqnos = {fid: 0 for fid in flow_ids}
    for t, flow, length, rate in sorted(arrivals, key=lambda a: (a[0], a[1])):
        seqno = seqnos.get(flow, 0)
        seqnos[flow] = seqno + 1
        sim.call_at(
            t,
            lambda f=flow, ln=length, r=rate, s=seqno: link.send(
                Packet(f, ln, seqno=s, rate=r)
            ),
        )
    sim.run()
    return tuple(
        (r.flow, r.seqno, r.length, r.arrival, r.start_service, r.departure, r.dropped)
        for r in link.tracer.records
    )


def _combos():
    for sched_name in SCHEDULERS:
        for wl_name in WORKLOADS:
            if wl_name == "discard" and sched_name not in DISCARD_CAPABLE:
                continue
            if sched_name == "DelayEDD" and wl_name == "churn":
                # DelayEDD has no auto-registration; the churn workload's
                # point is mid-run auto-registration.
                continue
            yield sched_name, wl_name


@pytest.mark.parametrize("eventq", EVENT_QUEUE_BACKENDS)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("sched_name,wl_name", list(_combos()))
def test_trace_equivalence(sched_name, wl_name, backend, eventq):
    new_factory, legacy_factory, setup = SCHEDULERS[sched_name]
    # DelayEDD churn: auto-registered flows need deadlines; skip handled
    # in _combos. Everything else must match record-for-record.
    optimized = run_trace(
        lambda: new_factory(backend), setup, wl_name, event_queue=eventq
    )
    legacy = run_trace(legacy_factory, setup, wl_name)
    assert len(optimized) == len(legacy)
    for i, (new_rec, old_rec) in enumerate(zip(optimized, legacy)):
        assert new_rec == old_rec, (
            f"{sched_name}[{backend}]/{wl_name}/{eventq}: record {i} diverged:\n"
            f"  optimized: {new_rec}\n  seed:      {old_rec}"
        )


def test_churn_workload_uses_auto_registration():
    # Guard: the churn workload must exercise the auto-register path
    # (flows not added up front) for at least the 'late' flows.
    flow_ids, arrivals, _ = WORKLOADS["churn"]()
    assert {"late0", "late1"} <= {a[1] for a in arrivals}


def test_discard_workload_actually_drops():
    # Guard: the discard workload must trigger evictions, otherwise it
    # does not cover the discard_tail path it claims to.
    flow_ids, arrivals, link_kwargs = WORKLOADS["discard"]()
    sim = Simulator()
    sched = make_scheduler("SFQ")
    for fid in flow_ids:
        sched.add_flow(fid, WEIGHTS[fid])
    link = Link(sim, sched, ConstantCapacity(CAPACITY), tracer=Tracer("d"), **link_kwargs)
    for t, flow, length, _rate in sorted(arrivals, key=lambda a: (a[0], a[1])):
        sim.call_at(t, lambda f=flow, ln=length: link.send(Packet(f, ln)))
    sim.run()
    assert link.packets_dropped > 0
