"""Tests for the command-line interface and the experiment registry."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro.experiments
from repro.cli import (
    _RUNNERS,
    _load,
    _parse_only,
    build_parser,
    main,
    run_experiment,
)
from repro.experiments import DESCRIPTIONS, REGISTRY, resolve_target
from repro.experiments.harness import ExperimentResult


def test_every_listed_experiment_is_loadable():
    for name in _RUNNERS:
        runner = _load(name)
        assert callable(runner)


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        _load("nope")


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in _RUNNERS:
        assert name in out


def test_run_fast_experiment(capsys):
    assert main(["run", "example2"]) == 0
    out = capsys.readouterr().out
    assert "Example 2" in out
    assert "SFQ" in out and "WFQ" in out


def test_run_experiment_returns_result():
    result = run_experiment("example1")
    assert isinstance(result, ExperimentResult)
    assert result.rows


def test_seed_passed_only_where_accepted():
    # table1 accepts a seed; example1 silently ignores the flag.
    result = run_experiment("table1", seed=3)
    assert isinstance(result, ExperimentResult)
    result = run_experiment("example1", seed=3)
    assert isinstance(result, ExperimentResult)


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# ---------------------------------------------------------------------------
# Registry completeness


#: Experiment-package modules that intentionally expose run_* functions
#: without being registry entries (infrastructure, not experiments).
_NON_EXPERIMENT_MODULES = {"harness", "charts", "bench", "campaign"}


def test_every_experiment_module_is_registered():
    """Adding a run_* module without a registry entry is a bug: the CLI,
    campaign runner, and report would all silently skip it."""
    registered_modules = {
        target.partition(":")[0].rsplit(".", 1)[-1]
        for target in REGISTRY.values()
    }
    for info in pkgutil.iter_modules(repro.experiments.__path__):
        if info.name.startswith("_") or info.name in _NON_EXPERIMENT_MODULES:
            continue
        module = importlib.import_module(f"repro.experiments.{info.name}")
        has_runner = any(
            name.startswith("run_") and inspect.isfunction(obj)
            for name, obj in vars(module).items()
            if getattr(obj, "__module__", "") == module.__name__
        )
        if has_runner:
            assert info.name in registered_modules, (
                f"repro.experiments.{info.name} defines run_* functions but "
                "no REGISTRY entry points at it"
            )


def test_registry_targets_resolve_and_names_match_descriptions():
    assert set(REGISTRY) == set(DESCRIPTIONS)
    for name, target in REGISTRY.items():
        func = resolve_target(target)
        assert callable(func), name


# ---------------------------------------------------------------------------
# Lint subcommand (full coverage lives in test_lint.py)


def test_lint_command_smoke(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["lint", str(clean)]) == 0
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    assert main(["lint", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_lint_parser_flags():
    args = build_parser().parse_args(
        ["lint", "src", "--format", "json", "--select", "DET001,DET002"]
    )
    assert args.command == "lint"
    assert args.format == "json"
    assert args.select == "DET001,DET002"


# ---------------------------------------------------------------------------
# Campaign subcommand


def test_campaign_parser_flags():
    args = build_parser().parse_args(
        ["campaign", "--jobs", "4", "--seeds", "5", "--only", "table1,figure1",
         "--no-cache", "--timeout", "30"]
    )
    assert args.command == "campaign"
    assert args.jobs == 4
    assert args.seeds == 5
    assert args.only == "table1,figure1"
    assert args.no_cache is True
    assert args.timeout == 30.0


def test_parse_only_accepts_commas_and_spaces():
    assert _parse_only("table1,figure1") == ["table1", "figure1"]
    assert _parse_only("table1 figure1") == ["table1", "figure1"]
    assert _parse_only(None) is None


def test_parse_only_rejects_unknown():
    with pytest.raises(SystemExit, match="bogus"):
        _parse_only("table1,bogus")


def test_campaign_command_end_to_end(tmp_path, capsys):
    code = main([
        "campaign", "--only", "example1,example2", "--jobs", "1",
        "--results-dir", str(tmp_path), "--quiet",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "campaign: 2 shards (2 ok, 0 failed)" in out
    assert (tmp_path / "campaign_manifest.json").exists()
    assert (tmp_path / "campaign_summary.md").exists()
    # Second run is served entirely from the cache.
    code = main([
        "campaign", "--only", "example1,example2", "--jobs", "1",
        "--results-dir", str(tmp_path), "--quiet",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 served from cache" in out


def test_metrics_parser_flags():
    args = build_parser().parse_args(
        ["metrics", "figure1", "--seed", "3", "--results-dir", "out"]
    )
    assert args.command == "metrics"
    assert args.experiment == "figure1"
    assert args.seed == 3
    assert args.results_dir == "out"
    args = build_parser().parse_args(["run", "figure1", "--metrics"])
    assert args.metrics is True
    args = build_parser().parse_args(["campaign", "--metrics"])
    assert args.metrics is True


def test_metrics_command_writes_snapshot(tmp_path, capsys):
    code = main(
        ["metrics", "example1", "--results-dir", str(tmp_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "server" in out and "metrics snapshot:" in out
    json_path = tmp_path / "metrics" / "example1.json"
    csv_path = tmp_path / "metrics" / "example1.csv"
    assert json_path.exists() and csv_path.exists()

    from repro.metrics import Snapshot

    snap = Snapshot.from_json(json_path.read_text())
    assert snap.meta["experiment"] == "example1"
    assert snap.hubs  # at least one instrumented server


def test_run_metrics_flag_prints_table_and_summary(tmp_path, capsys):
    code = main(
        ["run", "example2", "--metrics", "--results-dir", str(tmp_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Example 2" in out          # the experiment's own table
    assert "metrics snapshot:" in out  # plus the telemetry artifacts
    assert (tmp_path / "metrics" / "example2.json").exists()


def test_campaign_metrics_flag_writes_merged_snapshot(tmp_path, capsys):
    code = main([
        "campaign", "--only", "example1", "--jobs", "1", "--metrics",
        "--results-dir", str(tmp_path), "--quiet", "--no-cache",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "metrics snapshot:" in out
    assert (tmp_path / "metrics" / "example1.json").exists()


def test_chaos_parser_flags():
    args = build_parser().parse_args([
        "chaos", "--seeds", "3", "--schedulers", "SFQ,FIFO", "--jobs", "2",
        "--base-seed", "9", "--duration", "4.5", "--no-cache", "--no-shrink",
        "--quiet",
    ])
    assert args.command == "chaos"
    assert args.mode == "run" and args.artifact is None
    assert args.seeds == 3
    assert args.schedulers == "SFQ,FIFO"
    assert args.jobs == 2
    assert args.base_seed == 9
    assert args.duration == 4.5
    assert args.no_cache and args.no_shrink and args.quiet


def test_chaos_run_command_clean_zoo(tmp_path, capsys):
    code = main([
        "chaos", "--seeds", "1", "--schedulers", "SFQ,FIFO", "--no-cache",
        "--results-dir", str(tmp_path), "--quiet",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "chaos campaign: 2 runs" in out
    assert "0 run(s) with invariant violations" in out


def test_chaos_run_command_fails_on_fixture(tmp_path, capsys):
    code = main([
        "chaos", "--seeds", "1", "--schedulers", "BrokenSFQ", "--no-cache",
        "--results-dir", str(tmp_path), "--quiet",
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "VIOLATION BrokenSFQ" in out
    assert (tmp_path / "chaos").is_dir()


def test_chaos_replay_command(capsys):
    from pathlib import Path

    artifact = Path(__file__).parent / "reference" / "chaos" / "known_bad.json"
    assert main(["chaos", "replay", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "reproduced" in out


def test_chaos_replay_requires_artifact(capsys):
    assert main(["chaos", "replay"]) == 2
    out = capsys.readouterr().out
    assert "missing artifact path" in out
