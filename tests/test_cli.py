"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _RUNNERS, _load, build_parser, main, run_experiment
from repro.experiments.harness import ExperimentResult


def test_every_listed_experiment_is_loadable():
    for name in _RUNNERS:
        runner = _load(name)
        assert callable(runner)


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        _load("nope")


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in _RUNNERS:
        assert name in out


def test_run_fast_experiment(capsys):
    assert main(["run", "example2"]) == 0
    out = capsys.readouterr().out
    assert "Example 2" in out
    assert "SFQ" in out and "WFQ" in out


def test_run_experiment_returns_result():
    result = run_experiment("example1")
    assert isinstance(result, ExperimentResult)
    assert result.rows


def test_seed_passed_only_where_accepted():
    # table1 accepts a seed; example1 silently ignores the flag.
    result = run_experiment("table1", seed=3)
    assert isinstance(result, ExperimentResult)
    result = run_experiment("example1", seed=3)
    assert isinstance(result, ExperimentResult)


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
