"""Direct verification of the paper's Lemmas 1 and 2.

Theorem 1 is proved from two virtual-time window bounds:

* **Lemma 1**: if flow f is backlogged through [t1, t2], then
  ``W_f(t1,t2) >= r_f (v2 - v1) - l_f^max``;
* **Lemma 2**: for *any* interval, ``W_f(t1,t2) <= r_f (v2 - v1) + l_f^max``

with v1 = v(t1), v2 = v(t2). These tests sample (t1, t2) pairs during
live runs, reading the scheduler's v directly — a deeper check than the
fairness bound, which only sees the lemmas' difference.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SFQ, Packet
from repro.servers import ConstantCapacity, Link, PiecewiseCapacity, TwoRateSquareWave
from repro.simulation import Simulator

FLOWS = {"f": 500.0, "m": 250.0}
LMAX = {"f": 400, "m": 250}


def run_with_v_samples(capacity, schedule, sample_times):
    """Run SFQ and record v(t) at each sample time."""
    sim = Simulator()
    sfq = SFQ(auto_register=False)
    for flow, rate in FLOWS.items():
        sfq.add_flow(flow, rate)
    link = Link(sim, sfq, capacity)
    v_samples: Dict[float, float] = {}
    for t in sample_times:
        # priority=1: sample after same-instant arrivals/departures.
        sim.at(t, lambda t=t: v_samples.__setitem__(t, sfq.virtual_time), priority=1)
    counters = {flow: 0 for flow in FLOWS}
    for t, flow, length in schedule:
        seq = counters[flow]
        counters[flow] += 1
        sim.at(t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)), flow, seq, length)
    sim.run()
    return link, v_samples


def backlogged_through(link, flow, t1, t2) -> bool:
    spans = [
        (r.arrival, r.departure)
        for r in link.tracer.for_flow(flow)
        if r.departure is not None
    ]
    t = t1
    for arrival, departure in sorted(spans):
        if arrival > t + 1e-12:
            return False
        t = max(t, departure)
        if t >= t2:
            return True
    return t >= t2


def _greedy_schedule() -> List[Tuple[float, str, int]]:
    schedule = []
    for flow, lmax in LMAX.items():
        for i in range(150):
            schedule.append((0.0, flow, lmax if i % 3 else lmax // 2))
    return schedule


@pytest.mark.parametrize(
    "capacity",
    [
        ConstantCapacity(1000.0),
        TwoRateSquareWave(2000.0, 0.5, 0.0, 0.5),
    ],
    ids=["constant", "square-wave"],
)
def test_lemma1_and_lemma2_on_greedy_run(capacity):
    sample_times = [i * 2.0 for i in range(0, 30)]
    link, v_samples = run_with_v_samples(capacity, _greedy_schedule(), sample_times)
    checked_l1 = 0
    for i, t1 in enumerate(sample_times):
        for t2 in sample_times[i + 1 :]:
            if t1 not in v_samples or t2 not in v_samples:
                continue
            v1, v2 = v_samples[t1], v_samples[t2]
            for flow, rate in FLOWS.items():
                work = link.tracer.work_in_interval(flow, t1, t2)
                # Lemma 2: upper bound holds unconditionally.
                assert work <= rate * (v2 - v1) + LMAX[flow] + 1e-6
                # Lemma 1: lower bound needs continuous backlog.
                if backlogged_through(link, flow, t1, t2):
                    checked_l1 += 1
                    assert work >= rate * (v2 - v1) - LMAX[flow] - 1e-6
    assert checked_l1 > 20  # the lower bound was genuinely exercised


@settings(max_examples=20, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            st.sampled_from(["f", "m"]),
            st.integers(min_value=50, max_value=400),
        ),
        min_size=5,
        max_size=40,
    )
)
def test_lemma2_upper_bound_random_workloads(data):
    """Lemma 2 holds for ANY interval on any workload."""
    sample_times = [0.0, 2.5, 5.0, 7.5, 10.0, 15.0, 25.0]
    link, v_samples = run_with_v_samples(
        ConstantCapacity(1000.0), sorted(data), sample_times
    )
    for i, t1 in enumerate(sample_times):
        for t2 in sample_times[i + 1 :]:
            if t1 not in v_samples or t2 not in v_samples:
                continue
            v1, v2 = v_samples[t1], v_samples[t2]
            for flow, rate in FLOWS.items():
                work = link.tracer.work_in_interval(flow, t1, t2)
                assert work <= rate * (v2 - v1) + 400 + 1e-6
