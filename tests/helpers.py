"""Shared workload helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import Packet, Scheduler
from repro.servers import CapacityProcess, ConstantCapacity, Link
from repro.simulation import Simulator


def drive_greedy(
    scheduler: Scheduler,
    capacity: CapacityProcess,
    flows: Sequence[Tuple[str, float, int, int]],
    until: Optional[float] = None,
) -> Link:
    """Run a link with bulk (greedy) flows.

    ``flows``: (flow_id, weight, packet_length, n_packets) tuples. Flows
    are registered if not already present and all packets are injected
    at t = 0.
    """
    sim = Simulator()
    for flow_id, weight, _length, _count in flows:
        if flow_id not in scheduler.flows:
            scheduler.add_flow(flow_id, weight)
    link = Link(sim, scheduler, capacity)

    def inject() -> None:
        for flow_id, _weight, length, count in flows:
            for i in range(count):
                link.send(Packet(flow_id, length, seqno=i))

    sim.at(0.0, inject)
    sim.run(until=until)
    return link


def service_order(link: Link) -> List[Tuple[str, int]]:
    """(flow, seqno) in order of service start."""
    records = [r for r in link.tracer.records if r.start_service is not None]
    records.sort(key=lambda r: r.start_service)
    return [(r.flow, r.seqno) for r in records]


def work_by_flow(link: Link, t1: float, t2: float, flows: Iterable[str]) -> Dict[str, int]:
    return {f: link.tracer.work_in_interval(f, t1, t2) for f in flows}


def run_schedule(
    scheduler: Scheduler,
    capacity: CapacityProcess,
    schedule: Sequence[Tuple[float, str, int]],
    weights: Dict[str, float],
    until: Optional[float] = None,
) -> Link:
    """Run a link with an explicit (time, flow, length) arrival schedule."""
    sim = Simulator()
    for flow_id, weight in weights.items():
        if flow_id not in scheduler.flows:
            scheduler.add_flow(flow_id, weight)
    link = Link(sim, scheduler, capacity)
    counters: Dict[str, int] = {}
    for t, flow_id, length in schedule:
        seq = counters.get(flow_id, 0)
        counters[flow_id] = seq + 1
        sim.at(t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)), flow_id, seq, length)
    sim.run(until=until)
    return link


def run_lint_on_source(
    source: str,
    path: str = "repro/core/fixture.py",
    select: Optional[Sequence[str]] = None,
) -> List["Finding"]:
    """Lint an in-memory fixture through the real analyzer.

    ``path`` defaults to a synthetic hot-path location so path-scoped
    rules (DET002's benchmark exemption, PERF001's core/simulation
    scope) are active; pass e.g. ``"benchmarks/bench_x.py"`` to test the
    exemptions. ``select`` narrows the rule set as ``--select`` would.
    """
    from repro.lint import lint_source, resolve_rules

    rules = resolve_rules(select=select) if select else None
    return lint_source(source, path=path, rules=rules)


def constant_link(scheduler: Scheduler, rate: float) -> Tuple[Simulator, Link]:
    sim = Simulator()
    link = Link(sim, scheduler, ConstantCapacity(rate))
    return sim, link


# ---------------------------------------------------------------------------
# Synthetic campaign experiments (injected via run_campaign(targets=...))


def run_tiny(seed: int = 0, label: str = "tiny") -> "ExperimentResult":
    """A fast deterministic experiment for campaign-runner tests."""
    from repro.experiments.harness import ExperimentResult

    result = ExperimentResult(
        experiment=f"synthetic {label}",
        description="campaign test shard",
        headers=["label", "seed", "value"],
    )
    result.add_row(label, seed, seed % 97)
    result.data["seed"] = seed
    return result


def run_boom(seed: int = 0) -> "ExperimentResult":
    """A shard that raises (deterministic failure, never retried)."""
    raise RuntimeError(f"boom (seed={seed})")


def run_exit(seed: int = 0, code: int = 3) -> "ExperimentResult":
    """A shard that kills its worker process outright (crash path)."""
    import os

    os._exit(code)


def run_sleepy(seed: int = 0, seconds: float = 30.0) -> "ExperimentResult":
    """A shard that blocks long enough to trip any test timeout."""
    import time

    time.sleep(seconds)
    return run_tiny(seed, label="sleepy")
