"""API quality gates: docstrings, exports, and packaging markers.

Meta-tests that keep the library releasable: every public module, class
and function must carry a docstring; every ``__all__`` name must exist;
the typing marker must ship.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()]
    assert missing == []


def test_every_public_class_and_function_documented():
    missing = []
    for module in _walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports documented at their home
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert missing == []


def test_all_exports_resolve():
    for module in _walk_modules():
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__: {name}"


def test_top_level_all_covers_the_quickstart_api():
    for name in ("SFQ", "WFQ", "Link", "Simulator", "Packet", "HierarchicalScheduler"):
        assert name in repro.__all__
        assert hasattr(repro, name)


def test_py_typed_marker_ships():
    assert (PACKAGE_ROOT / "py.typed").exists()


def test_public_schedulers_registered():
    from repro.core import ALGORITHMS

    for name in ("SFQ", "SCFQ", "WFQ", "FQS", "WF2Q", "DRR", "WRR", "FIFO",
                  "VirtualClock", "DelayEDD", "JitterEDD", "FairAirport"):
        assert name in ALGORITHMS


def test_version_is_set():
    assert repro.__version__
