"""Pytest fixtures shared across the suite."""

import pytest

from repro.simulation import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()
