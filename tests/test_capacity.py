"""Tests for capacity processes (servers)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.servers import measure_fc_delta, sample_ebf_deficits
from repro.servers import (
    BernoulliCapacity,
    CapacityError,
    ConstantCapacity,
    FluctuationConstrainedCapacity,
    PeriodicStall,
    PiecewiseCapacity,
    TwoRateSquareWave,
    UniformSlotCapacity,
    ebf_envelope_from_trace,
)


# ----------------------------------------------------------------------
# ConstantCapacity
# ----------------------------------------------------------------------
def test_constant_work_and_finish():
    cap = ConstantCapacity(1000.0)
    assert cap.rate_at(3.0) == 1000.0
    assert cap.work(1.0, 3.0) == 2000.0
    assert cap.finish_time(2.0, 500) == 2.5


def test_constant_rejects_nonpositive():
    with pytest.raises(CapacityError):
        ConstantCapacity(0.0)


# ----------------------------------------------------------------------
# PiecewiseCapacity
# ----------------------------------------------------------------------
def test_piecewise_from_list_basics():
    cap = PiecewiseCapacity.from_list([(0.0, 100.0), (1.0, 0.0), (2.0, 100.0)])
    assert cap.rate_at(0.5) == 100.0
    assert cap.rate_at(1.5) == 0.0
    assert cap.rate_at(10.0) == 100.0  # last rate holds forever
    assert cap.work(0.0, 2.0) == 100.0
    assert cap.work(0.5, 2.5) == pytest.approx(100.0)


def test_piecewise_finish_time_spans_zero_rate_phase():
    cap = PiecewiseCapacity.from_list([(0.0, 100.0), (1.0, 0.0), (3.0, 100.0)])
    # 150 bits starting at 0: 100 bits by t=1, stall to t=3, rest at t=3.5.
    assert cap.finish_time(0.0, 150) == pytest.approx(3.5)


def test_piecewise_finish_time_within_segment():
    cap = PiecewiseCapacity.from_list([(0.0, 100.0), (5.0, 200.0)])
    assert cap.finish_time(1.0, 200) == pytest.approx(3.0)


def test_piecewise_zero_forever_raises():
    cap = PiecewiseCapacity.from_list([(0.0, 100.0), (1.0, 0.0)])
    with pytest.raises(CapacityError):
        cap.finish_time(2.0, 100)


def test_piecewise_rejects_unordered_segments():
    with pytest.raises(CapacityError):
        PiecewiseCapacity.from_list([(0.0, 1.0), (2.0, 2.0), (1.0, 3.0)])


def test_piecewise_rejects_negative_rate():
    with pytest.raises(CapacityError):
        PiecewiseCapacity.from_list([(0.0, -1.0)])


def test_piecewise_must_start_at_zero():
    with pytest.raises(CapacityError):
        PiecewiseCapacity.from_list([(1.0, 10.0)])


def test_work_additivity():
    cap = PiecewiseCapacity.from_list(
        [(0.0, 50.0), (1.0, 150.0), (2.5, 0.0), (3.0, 75.0)]
    )
    total = cap.work(0.0, 6.0)
    split = cap.work(0.0, 2.0) + cap.work(2.0, 6.0)
    assert total == pytest.approx(split)


def test_finish_time_inverts_work():
    cap = PiecewiseCapacity.from_list(
        [(0.0, 50.0), (1.0, 150.0), (2.5, 10.0), (3.0, 75.0)]
    )
    for start in (0.0, 0.7, 2.6):
        for length in (10, 100, 400):
            finish = cap.finish_time(start, length)
            assert cap.work(start, finish) == pytest.approx(length, rel=1e-9)


# ----------------------------------------------------------------------
# FC processes
# ----------------------------------------------------------------------
def test_square_wave_mean_and_delta():
    sq = TwoRateSquareWave(2000.0, 1.0, 0.0, 1.0)
    assert sq.average_rate == pytest.approx(1000.0)
    assert sq.delta == pytest.approx(1000.0)
    # Empirical delta over many periods matches the closed form.
    measured = measure_fc_delta(sq, 1000.0, horizon=20.0, step=0.01)
    assert measured == pytest.approx(sq.delta, rel=0.02)


def test_periodic_stall_delta():
    stall = PeriodicStall(2000.0, 0.5, 1.0)
    assert stall.average_rate == pytest.approx(1000.0)
    measured = measure_fc_delta(stall, 1000.0, horizon=20.0, step=0.01)
    assert measured == pytest.approx(stall.delta, rel=0.02)


def test_fc_random_certified_delta():
    """The deficit-clamped random process must satisfy Definition 1 with
    its declared parameters."""
    rng = random.Random(42)
    fc = FluctuationConstrainedCapacity(1000.0, delta=500.0, slot=0.05, rng=rng)
    measured = measure_fc_delta(fc, 1000.0, horizon=60.0, step=0.05)
    assert measured <= 500.0 + 1e-6


def test_fc_random_respects_guarantee_rate_work():
    rng = random.Random(1)
    fc = FluctuationConstrainedCapacity(1000.0, delta=200.0, slot=0.01, rng=rng)
    # Definition 1 directly: W(t1,t2) >= C (t2-t1) - delta.
    for t1, t2 in ((0.0, 1.0), (0.33, 2.77), (5.0, 9.5)):
        assert fc.work(t1, t2) >= 1000.0 * (t2 - t1) - 200.0 - 1e-6


def test_fc_bad_params_rejected():
    with pytest.raises(CapacityError):
        FluctuationConstrainedCapacity(0.0, 1.0, 0.1)
    with pytest.raises(CapacityError):
        TwoRateSquareWave(100.0, 1.0, 200.0, 1.0)  # low > high
    with pytest.raises(CapacityError):
        PeriodicStall(100.0, 1.0, 1.0)  # stall == period


# ----------------------------------------------------------------------
# EBF processes
# ----------------------------------------------------------------------
def test_bernoulli_mean_rate():
    cap = BernoulliCapacity(2000.0, 0.5, 0.01, rng=random.Random(3))
    assert cap.average_rate == pytest.approx(1000.0)
    assert cap.work(0.0, 50.0) == pytest.approx(50_000, rel=0.1)


def test_uniform_slot_capacity():
    cap = UniformSlotCapacity(0.0, 2000.0, 0.01, rng=random.Random(4))
    assert cap.average_rate == pytest.approx(1000.0)
    assert cap.work(0.0, 50.0) == pytest.approx(50_000, rel=0.1)


def test_ebf_tail_is_exponential_ish():
    cap = BernoulliCapacity(2000.0, 0.5, 0.01, rng=random.Random(5))
    deficits = sample_ebf_deficits(
        cap, 1000.0, delta=0.0, horizon=50.0, n_samples=400,
        rng=random.Random(6), min_window=0.1,
    )
    b, alpha = ebf_envelope_from_trace(deficits)
    assert alpha > 0
    assert b >= 1.0
    # The fitted envelope must upper-bound the empirical tail at a few
    # checkpoints (with fit slack).
    positive = sorted(d for d in deficits if d > 0)
    if positive:
        import math

        mid = positive[len(positive) // 2]
        empirical = sum(1 for d in deficits if d > mid) / len(deficits)
        assert b * math.exp(-alpha * mid) >= empirical / 3


def test_ebf_envelope_no_positive_deficits():
    b, alpha = ebf_envelope_from_trace([0.0, 0.0])
    assert alpha == float("inf")
