"""Tests for hierarchical link sharing (Section 3)."""

from __future__ import annotations

import pytest

from repro.core import (
    DRR,
    FIFO,
    SFQ,
    DelayEDD,
    HierarchicalScheduler,
    Packet,
    SchedulerError,
)
from repro.servers import ConstantCapacity, Link, TwoRateSquareWave
from repro.simulation import Simulator


def build_example3() -> HierarchicalScheduler:
    hs = HierarchicalScheduler()
    hs.add_class("root", "A", weight=1.0)
    hs.add_class("root", "B", weight=1.0)
    hs.add_class("A", "C", weight=1.0)
    hs.add_class("A", "D", weight=1.0)
    hs.attach_flow("fc", "C", weight=1.0)
    hs.attach_flow("fd", "D", weight=1.0)
    hs.attach_flow("fb", "B", weight=1.0)
    return hs


def run_greedy(hs, capacity, flows, horizon, starts=None):
    sim = Simulator()
    link = Link(sim, hs, capacity)
    starts = starts or {}
    for flow, (length, count) in flows.items():
        start = starts.get(flow, 0.0)
        sim.at(
            start,
            lambda fl, lb, n: [link.send(Packet(fl, lb, seqno=i)) for i in range(n)],
            flow,
            length,
            count,
        )
    sim.run(until=horizon)
    return link


# ----------------------------------------------------------------------
# Tree construction
# ----------------------------------------------------------------------
def test_duplicate_class_rejected():
    hs = HierarchicalScheduler()
    hs.add_class("root", "A", 1.0)
    with pytest.raises(SchedulerError):
        hs.add_class("root", "A", 1.0)


def test_unknown_parent_rejected():
    with pytest.raises(SchedulerError):
        HierarchicalScheduler().add_class("nope", "A", 1.0)


def test_cannot_add_subclass_under_class_with_flows():
    hs = HierarchicalScheduler()
    hs.add_class("root", "A", 1.0)
    hs.attach_flow("f", "A", 1.0)
    with pytest.raises(SchedulerError):
        hs.add_class("A", "B", 1.0)


def test_cannot_attach_flow_to_interior_class():
    hs = HierarchicalScheduler()
    hs.add_class("root", "A", 1.0)
    hs.add_class("A", "C", 1.0)
    with pytest.raises(SchedulerError):
        hs.attach_flow("f", "A", 1.0)


def test_flow_must_be_attached_before_enqueue():
    hs = HierarchicalScheduler()
    with pytest.raises(SchedulerError):
        hs.enqueue(Packet("ghost", 100), 0.0)


def test_bad_weight_rejected():
    hs = HierarchicalScheduler()
    with pytest.raises(SchedulerError):
        hs.add_class("root", "A", 0.0)


def test_describe_renders_tree():
    hs = build_example3()
    text = hs.describe()
    assert "root" in text and "A" in text and "fc" in text


# ----------------------------------------------------------------------
# Scheduling semantics
# ----------------------------------------------------------------------
def test_single_leaf_passthrough():
    hs = HierarchicalScheduler()
    hs.add_class("root", "only", 1.0)
    hs.attach_flow("f", "only", 1.0)
    hs.enqueue(Packet("f", 100, seqno=0), 0.0)
    hs.enqueue(Packet("f", 100, seqno=1), 0.0)
    assert hs.backlog_packets == 2
    assert hs.dequeue(0.0).seqno == 0
    assert hs.dequeue(0.0).seqno == 1
    assert hs.dequeue(0.0) is None


def test_sibling_classes_share_by_weight():
    hs = HierarchicalScheduler()
    hs.add_class("root", "X", 1.0)
    hs.add_class("root", "Y", 3.0)
    hs.attach_flow("fx", "X", 1.0)
    hs.attach_flow("fy", "Y", 1.0)
    link = run_greedy(
        hs,
        ConstantCapacity(1000.0),
        {"fx": (100, 300), "fy": (100, 300)},
        horizon=20.0,
    )
    wx = link.tracer.work_in_interval("fx", 0, 20)
    wy = link.tracer.work_in_interval("fy", 0, 20)
    assert wy / wx == pytest.approx(3.0, rel=0.1)


def test_example3_three_phase_sharing():
    hs = build_example3()
    link = run_greedy(
        hs,
        ConstantCapacity(1000.0),
        {"fc": (100, 600), "fd": (100, 600), "fb": (100, 600)},
        horizon=30.0,
        starts={"fb": 20.0},
    )
    # Phase 1 (B idle): C and D split the full link.
    wc1 = link.tracer.work_in_interval("fc", 0, 20)
    wd1 = link.tracer.work_in_interval("fd", 0, 20)
    assert wc1 == pytest.approx(wd1, rel=0.05)
    assert wc1 + wd1 == pytest.approx(20_000, rel=0.05)
    # Phase 2 (B active): B gets half, C and D a quarter each.
    wc2 = link.tracer.work_in_interval("fc", 20, 30)
    wd2 = link.tracer.work_in_interval("fd", 20, 30)
    wb2 = link.tracer.work_in_interval("fb", 20, 30)
    assert wb2 == pytest.approx(5_000, rel=0.1)
    assert wc2 == pytest.approx(2_500, rel=0.15)
    assert wd2 == pytest.approx(2_500, rel=0.15)


def test_hierarchy_fair_on_variable_rate_link():
    hs = build_example3()
    link = run_greedy(
        hs,
        TwoRateSquareWave(2000.0, 1.0, 0.0, 1.0),
        {"fc": (100, 400), "fd": (100, 400), "fb": (100, 400)},
        horizon=40.0,
    )
    wc = link.tracer.work_in_interval("fc", 0, 40)
    wd = link.tracer.work_in_interval("fd", 0, 40)
    wb = link.tracer.work_in_interval("fb", 0, 40)
    assert wc == pytest.approx(wd, rel=0.1)
    assert wb == pytest.approx(wc + wd, rel=0.1)


def test_three_level_hierarchy():
    hs = HierarchicalScheduler()
    hs.add_class("root", "rt", 1.0)
    hs.add_class("root", "be", 1.0)
    hs.add_class("be", "bulk", 3.0)
    hs.add_class("be", "interactive", 1.0)
    hs.attach_flow("v", "rt", 1.0)
    hs.attach_flow("ftp", "bulk", 1.0)
    hs.attach_flow("telnet", "interactive", 1.0)
    link = run_greedy(
        hs,
        ConstantCapacity(8000.0),
        {"v": (100, 800), "ftp": (100, 800), "telnet": (100, 800)},
        horizon=10.0,
    )
    wv = link.tracer.work_in_interval("v", 0, 10)
    wftp = link.tracer.work_in_interval("ftp", 0, 10)
    wtel = link.tracer.work_in_interval("telnet", 0, 10)
    assert wv == pytest.approx(wftp + wtel, rel=0.1)
    assert wftp / wtel == pytest.approx(3.0, rel=0.15)


def test_mixed_disciplines_fifo_leaf():
    hs = HierarchicalScheduler()
    hs.add_class("root", "agg", 1.0, scheduler=FIFO(auto_register=False))
    # FIFO leaf holding two flows: no isolation inside the class.
    hs.attach_flow("f1", "agg", 1.0)
    hs.attach_flow("f2", "agg", 1.0)
    hs.enqueue(Packet("f1", 100, seqno=0), 0.0)
    hs.enqueue(Packet("f2", 100, seqno=0), 0.0)
    hs.enqueue(Packet("f1", 100, seqno=1), 0.0)
    order = [hs.dequeue(0.0).flow for _ in range(3)]
    assert order == ["f1", "f2", "f1"]


def test_drr_interior_node_rejected_at_dequeue():
    hs = HierarchicalScheduler()
    hs.add_class("root", "A", 1.0, scheduler=DRR(auto_register=False))
    hs.add_class("A", "C", 1.0)
    hs.add_class("A", "D", 1.0)
    hs.attach_flow("f", "C", 1.0)
    hs.attach_flow("g", "D", 1.0)
    hs.enqueue(Packet("f", 100, seqno=0), 0.0)
    # DRR cannot act as an interior scheduler in general, but a plain
    # dequeue path does not need peek, so this must still work.
    assert hs.dequeue(0.0) is not None


def test_flow_backlog_counts_offered_packet():
    hs = HierarchicalScheduler()
    hs.add_class("root", "A", 1.0)
    hs.attach_flow("f", "A", 1.0)
    hs.enqueue(Packet("f", 100, seqno=0), 0.0)
    hs.enqueue(Packet("f", 100, seqno=1), 0.0)
    assert hs.flow_backlog("f") == 2


def test_set_class_weight_changes_shares_mid_run():
    hs = HierarchicalScheduler()
    hs.add_class("root", "X", 1.0)
    hs.add_class("root", "Y", 1.0)
    hs.attach_flow("fx", "X", 1.0)
    hs.attach_flow("fy", "Y", 1.0)
    sim = Simulator()
    link = Link(sim, hs, ConstantCapacity(1000.0))
    for flow in ("fx", "fy"):
        sim.at(0.0, lambda fl=flow: [
            link.send(Packet(fl, 100, seqno=i)) for i in range(400)
        ])
    sim.at(20.0, lambda: hs.set_class_weight("Y", 3.0))
    sim.run(until=40.0)
    # Phase 1 (equal weights): 50/50.
    wx1 = link.tracer.work_in_interval("fx", 0, 20)
    wy1 = link.tracer.work_in_interval("fy", 0, 20)
    assert wx1 == pytest.approx(wy1, rel=0.05)
    # Phase 2 (1:3): Y gets about three times X.
    wx2 = link.tracer.work_in_interval("fx", 22, 40)
    wy2 = link.tracer.work_in_interval("fy", 22, 40)
    assert wy2 / wx2 == pytest.approx(3.0, rel=0.15)


def test_set_class_weight_validates():
    hs = HierarchicalScheduler()
    hs.add_class("root", "X", 1.0)
    with pytest.raises(SchedulerError):
        hs.set_class_weight("X", 0.0)
    with pytest.raises(SchedulerError):
        hs.set_class_weight("root", 2.0)
    with pytest.raises(SchedulerError):
        hs.set_class_weight("nope", 2.0)


def test_class_bits_served_accounting():
    hs = build_example3()
    sim = Simulator()
    link = Link(sim, hs, ConstantCapacity(1000.0))
    sim.at(0.0, lambda: [link.send(Packet("fc", 100, seqno=i)) for i in range(10)])
    sim.run()
    bits = hs.class_bits_served()
    assert bits["C"] == 1000
    assert bits["A"] == 1000
    assert bits["root"] == 1000
    assert bits["B"] == 0
