"""Tests for switches, topologies and tandem paths."""

from __future__ import annotations

import pytest

from repro.core import FIFO, SFQ, Packet
from repro.network import Network, RoutingError, Switch, Tandem, single_switch_topology
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator
from repro.transport import PacketSink


# ----------------------------------------------------------------------
# Switch
# ----------------------------------------------------------------------
def test_switch_routes_by_flow():
    sim = Simulator()
    switch = Switch(sim, "sw")
    link_a = Link(sim, FIFO(), ConstantCapacity(1000.0), name="a")
    link_b = Link(sim, FIFO(), ConstantCapacity(1000.0), name="b")
    switch.add_port("pa", link_a)
    switch.add_port("pb", link_b)
    switch.add_route("f1", "pa")
    switch.add_route("f2", "pb")
    sim.at(0.0, lambda: switch.receive(Packet("f1", 100, seqno=0)))
    sim.at(0.0, lambda: switch.receive(Packet("f2", 100, seqno=0)))
    sim.run()
    assert len(link_a.tracer.for_flow("f1")) == 1
    assert len(link_b.tracer.for_flow("f2")) == 1
    assert switch.packets_forwarded == 2


def test_switch_unrouted_flow_raises():
    switch = Switch(Simulator(), "sw")
    with pytest.raises(RoutingError):
        switch.receive(Packet("ghost", 100))


def test_switch_duplicate_port_rejected():
    sim = Simulator()
    switch = Switch(sim, "sw")
    link = Link(sim, FIFO(), ConstantCapacity(1.0))
    switch.add_port("p", link)
    with pytest.raises(RoutingError):
        switch.add_port("p", link)


def test_switch_route_to_unknown_port_rejected():
    switch = Switch(Simulator(), "sw")
    with pytest.raises(RoutingError):
        switch.add_route("f", "nope")


# ----------------------------------------------------------------------
# Network / topology builder
# ----------------------------------------------------------------------
def test_single_switch_topology_wiring():
    sched = SFQ()
    sched.add_flow("f1", 1.0)
    sched.add_flow("f2", 1.0)
    net = single_switch_topology(sched, ConstantCapacity(1000.0), ["f1", "f2"])
    sim = net.sim
    sim.at(0.0, lambda: net.switches["sw"].receive(Packet("f1", 100, seqno=0)))
    sim.at(0.0, lambda: net.switches["sw"].receive(Packet("f2", 100, seqno=0)))
    net.run()
    sink = net.sinks["dst"]
    assert sink.count("f1") == 1
    assert sink.count("f2") == 1


def test_network_rejects_duplicate_names():
    net = Network()
    net.add_switch("sw")
    with pytest.raises(ValueError):
        net.add_switch("sw")
    net.add_link("l", FIFO(), ConstantCapacity(1.0))
    with pytest.raises(ValueError):
        net.add_link("l", FIFO(), ConstantCapacity(1.0))


# ----------------------------------------------------------------------
# Tandem
# ----------------------------------------------------------------------
def test_tandem_forwards_through_all_hops():
    sim = Simulator()
    tandem = Tandem(
        sim,
        [FIFO(), FIFO(), FIFO()],
        [ConstantCapacity(1000.0)] * 3,
        propagation_delays=[0.1, 0.1],
    )
    sim.at(0.0, lambda: tandem.ingress(Packet("f", 100, seqno=0)))
    sim.run()
    # 3 transmissions of 0.1s + 2 propagation delays of 0.1s = 0.5s.
    delays = tandem.end_to_end_delays("f")
    assert delays == [pytest.approx(0.5)]


def test_tandem_per_hop_tags_are_fresh():
    sim = Simulator()
    scheds = [SFQ(), SFQ()]
    tandem = Tandem(sim, scheds, [ConstantCapacity(1000.0)] * 2)
    sim.at(0.0, lambda: tandem.ingress(Packet("f", 100, seqno=0)))
    sim.run()
    # Each hop saw exactly one packet, with its own trace record.
    assert len(tandem.links[0].tracer.records) == 1
    assert len(tandem.links[1].tracer.records) == 1


def test_tandem_validates_shapes():
    sim = Simulator()
    with pytest.raises(ValueError):
        Tandem(sim, [FIFO()], [ConstantCapacity(1.0)] * 2)
    with pytest.raises(ValueError):
        Tandem(sim, [FIFO()] * 2, [ConstantCapacity(1.0)] * 2, propagation_delays=[])
    with pytest.raises(ValueError):
        Tandem(sim, [], [])


def test_tandem_preserves_seqno_and_created():
    sim = Simulator()
    tandem = Tandem(sim, [FIFO(), FIFO()], [ConstantCapacity(1000.0)] * 2)
    packet = Packet("f", 100, arrival=0.0, seqno=7)
    sim.at(0.0, lambda: tandem.ingress(packet))
    sim.run()
    times = tandem.sink.series("f")
    assert times[0][1] == 7  # seqno survives forking


# ----------------------------------------------------------------------
# PacketSink
# ----------------------------------------------------------------------
def test_sink_series_and_counts():
    sink = PacketSink()
    sink.on_packet(Packet("f", 100, arrival=0.0, seqno=0), 1.0)
    sink.on_packet(Packet("f", 100, arrival=0.0, seqno=1), 2.0)
    sink.on_packet(Packet("g", 100, arrival=0.0, seqno=0), 3.0)
    assert sink.count("f") == 2
    assert sink.count("f", 1.5, 2.5) == 1
    assert sink.series("g") == [(3.0, 0)]
    assert sink.throughput("f", 0.0, 2.0) == pytest.approx(100.0)


def test_sink_subscriber_callbacks():
    sink = PacketSink()
    seen = []
    sink.subscribe(lambda p, t: seen.append(p.seqno))
    sink.on_packet(Packet("f", 100, seqno=4), 0.0)
    assert seen == [4]


def test_sink_end_to_end_delays_use_created():
    sink = PacketSink()
    p = Packet("f", 100, arrival=5.0, seqno=0)
    p.created = 1.0
    sink.on_packet(p, 7.0)
    assert sink.end_to_end_delays["f"] == [6.0]
