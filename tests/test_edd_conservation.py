"""Conservation and protocol tests for the deadline-based schedulers
(DelayEDD and JitterEDD), which the generic matrix skips because they
need per-flow deadline registration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DelayEDD, JitterEDD, Packet
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator

arrivals = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.sampled_from(["u", "v"]),
        st.sampled_from([100, 200]),
    ),
    min_size=1,
    max_size=40,
)


def _registered(make):
    sched = make()
    sched.add_flow_with_deadline("u", rate=300.0, deadline=0.5)
    sched.add_flow_with_deadline("v", rate=600.0, deadline=1.5)
    return sched


@settings(max_examples=25, deadline=None)
@given(schedule=arrivals, which=st.sampled_from(["DelayEDD", "JitterEDD"]))
def test_edd_variants_conserve_packets(schedule, which):
    makers = {"DelayEDD": DelayEDD, "JitterEDD": JitterEDD}
    sim = Simulator()
    sched = _registered(makers[which])
    link = Link(sim, sched, ConstantCapacity(1000.0))
    counters = {"u": 0, "v": 0}
    for t, flow, length in sorted(schedule):
        seq = counters[flow]
        counters[flow] += 1
        sim.at(t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)), flow, seq, length)
    sim.run()
    for flow, count in counters.items():
        records = link.tracer.departed(flow)
        assert len(records) == count
        by_start = sorted(records, key=lambda r: r.start_service)
        assert [r.seqno for r in by_start] == sorted(r.seqno for r in records)
    assert sched.backlog_packets == 0


@settings(max_examples=20, deadline=None)
@given(schedule=arrivals)
def test_jitter_edd_never_serves_before_eat(schedule):
    """The regulator's whole point: service start >= the packet's EAT."""
    sim = Simulator()
    sched = _registered(JitterEDD)
    link = Link(sim, sched, ConstantCapacity(1000.0))
    counters = {"u": 0, "v": 0}
    for t, flow, length in sorted(schedule):
        seq = counters[flow]
        counters[flow] += 1
        sim.at(t, lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)), flow, seq, length)
    sim.run()
    from repro.analysis.delay_bounds import expected_arrival_times

    rates = {"u": 300.0, "v": 600.0}
    for flow in ("u", "v"):
        records = sorted(link.tracer.departed(flow), key=lambda r: r.seqno)
        eats = expected_arrival_times(
            [r.arrival for r in records],
            [r.length for r in records],
            [rates[flow]] * len(records),
        )
        for record, eat in zip(records, eats):
            assert record.start_service >= eat - 1e-9
