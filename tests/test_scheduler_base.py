"""Tests for the Scheduler base-class machinery shared by every
discipline: flow registry, weight changes, removal, introspection."""

from __future__ import annotations

import pytest

from repro.core import SFQ, Packet, SchedulerError, TieBreak
from repro.core.base import Scheduler


def test_duplicate_flow_rejected():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    with pytest.raises(SchedulerError):
        sfq.add_flow("f", 2.0)


def test_add_flow_rejects_bad_weight():
    with pytest.raises(ValueError):
        SFQ().add_flow("f", 0.0)


def test_remove_idle_flow():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    sfq.remove_flow("f")
    assert "f" not in sfq.flows


def test_remove_unknown_flow_raises():
    with pytest.raises(SchedulerError):
        SFQ().remove_flow("ghost")


def test_remove_backlogged_flow_refused():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    sfq.enqueue(Packet("f", 100), 0.0)
    with pytest.raises(SchedulerError):
        sfq.remove_flow("f")


def test_set_weight_applies_to_new_packets():
    sfq = SFQ()
    sfq.add_flow("f", 100.0)
    p1 = Packet("f", 100, seqno=0)
    sfq.enqueue(p1, 0.0)
    assert p1.finish_tag == pytest.approx(1.0)
    sfq.set_weight("f", 200.0)
    p2 = Packet("f", 100, seqno=1)
    sfq.enqueue(p2, 0.0)
    # Chained from F_prev=1.0, but with the new rate: F = 1 + 0.5.
    assert p2.finish_tag == pytest.approx(1.5)


def test_set_weight_validates():
    sfq = SFQ(auto_register=False)
    sfq.add_flow("f", 1.0)
    with pytest.raises(SchedulerError):
        sfq.set_weight("f", -1.0)
    with pytest.raises(SchedulerError):
        sfq.set_weight("ghost", 1.0)  # unknown flow, no auto-register


def test_total_weight_and_backlogged_filter():
    sfq = SFQ()
    sfq.add_flow("a", 1.0)
    sfq.add_flow("b", 2.0)
    assert sfq.total_weight() == pytest.approx(3.0)
    sfq.enqueue(Packet("a", 100), 0.0)
    assert sfq.total_weight(backlogged_only=True) == pytest.approx(1.0)
    assert sfq.backlogged_flows() == ["a"]


def test_in_service_tracking():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    sfq.enqueue(Packet("f", 100), 0.0)
    assert sfq.in_service is None
    p = sfq.dequeue(0.0)
    assert sfq.in_service is p
    sfq.on_service_complete(p, 1.0)
    assert sfq.in_service is None


def test_len_reflects_backlog():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    assert len(sfq) == 0
    sfq.enqueue(Packet("f", 100), 0.0)
    assert len(sfq) == 1


def test_flow_backlog_unknown_flow_is_zero():
    assert SFQ().flow_backlog("ghost") == 0


def test_tiebreak_rules_return_sortable_keys():
    from repro.core.flow import FlowState

    state = FlowState("f", 5.0)
    packet = Packet("f", 100)
    assert TieBreak.fifo(state, packet) == ()
    assert TieBreak.lowest_weight_first(state, packet) == (5.0,)
    assert TieBreak.highest_weight_first(state, packet) == (-5.0,)
    assert TieBreak.shortest_packet_first(state, packet) == (100,)


def test_base_peek_not_implemented_message():
    class Bare(Scheduler):
        algorithm = "Bare"

        def _do_enqueue(self, state, packet, now):
            state.push(packet)

        def _do_dequeue(self, now):
            return None

    with pytest.raises(NotImplementedError):
        Bare().peek(0.0)
