"""Smoke-run every example script so they can never rot.

Each example is executed in-process (fresh __main__-style namespace);
its own embedded assertions run too, so these double as integration
tests of the public API surface the examples exercise.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "variable_rate_fairness.py",
    "link_sharing.py",
    "end_to_end_qos.py",
    "self_similar_wireless.py",
    "integrated_services.py",
    "reservation_control.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_scheduler_comparison_example(capsys):
    # The heaviest example: 8 disciplines x 30 s; keep it last and
    # assert on its structure.
    runpy.run_path(str(EXAMPLES_DIR / "scheduler_comparison.py"), run_name="__main__")
    out = capsys.readouterr().out
    for name in ("SFQ", "SCFQ", "WFQ", "WF2Q", "DRR", "FairAirport", "FIFO"):
        assert name in out


def test_every_example_file_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = set(FAST_EXAMPLES) | {"scheduler_comparison.py"}
    assert on_disk == covered
