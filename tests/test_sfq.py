"""Tests for Start-time Fair Queuing — the paper's Section 2 algorithm."""

from __future__ import annotations

import pytest

from tests.helpers import drive_greedy, run_schedule, service_order
from repro.analysis.fairness import empirical_fairness_measure, sfq_fairness_bound
from repro.core import SFQ, Packet, SchedulerError, TieBreak
from repro.servers import ConstantCapacity, TwoRateSquareWave


def test_tags_follow_equations_4_and_5():
    sfq = SFQ()
    sfq.add_flow("f", 100.0)
    p1 = Packet("f", 200, seqno=0)
    sfq.enqueue(p1, 0.0)
    # v=0, F(p^0)=0 -> S=0, F=0+200/100=2.
    assert p1.start_tag == 0.0
    assert p1.finish_tag == 2.0
    p2 = Packet("f", 100, seqno=1)
    sfq.enqueue(p2, 0.0)
    # S = max(v=0, F_prev=2) = 2; F = 2+1 = 3.
    assert p2.start_tag == 2.0
    assert p2.finish_tag == 3.0


def test_virtual_time_is_start_tag_of_packet_in_service():
    sfq = SFQ()
    sfq.add_flow("f", 100.0)
    sfq.enqueue(Packet("f", 200, seqno=0), 0.0)
    sfq.enqueue(Packet("f", 200, seqno=1), 0.0)
    assert sfq.virtual_time == 0.0
    p = sfq.dequeue(0.0)
    assert sfq.virtual_time == p.start_tag == 0.0
    sfq.on_service_complete(p, 2.0)
    p = sfq.dequeue(2.0)
    assert sfq.virtual_time == p.start_tag == 2.0


def test_virtual_time_jumps_to_max_finish_at_busy_period_end():
    sfq = SFQ()
    sfq.add_flow("f", 100.0)
    sfq.enqueue(Packet("f", 200, seqno=0), 0.0)
    p = sfq.dequeue(0.0)
    sfq.on_service_complete(p, 2.0)
    # End of busy period: v = max finish tag served = 2.0.
    assert sfq.virtual_time == 2.0
    # A packet arriving after the idle period starts from that v.
    late = Packet("f", 100, seqno=1)
    sfq.enqueue(late, 10.0)
    assert late.start_tag == 2.0


def test_arrival_during_service_tagged_with_current_v():
    sfq = SFQ()
    sfq.add_flow("a", 100.0)
    sfq.add_flow("b", 100.0)
    sfq.enqueue(Packet("a", 500, seqno=0), 0.0)
    served = sfq.dequeue(0.0)
    assert served.start_tag == 0.0
    # b arrives while a's packet is in service: S = v = 0... the flow is
    # new (F_prev = 0), so S = max(v, 0) = 0 and it competes fairly.
    pb = Packet("b", 100, seqno=0)
    sfq.enqueue(pb, 3.0)
    assert pb.start_tag == 0.0


def test_schedules_in_start_tag_order():
    link = run_schedule(
        SFQ(),
        ConstantCapacity(100.0),
        # a's two big packets get S=0 and S=10; b's packet at t=0 gets S=0.
        [(0.0, "a", 1000), (0.0, "a", 1000), (0.0, "b", 500)],
        weights={"a": 100.0, "b": 100.0},
    )
    order = service_order(link)
    # a(S=0) first (FIFO tie with b broken by arrival), b(S=0), a(S=10).
    assert order == [("a", 0), ("b", 0), ("a", 1)]


def test_weighted_bandwidth_shares():
    link = drive_greedy(
        SFQ(),
        ConstantCapacity(3000.0),
        [("a", 1000.0, 100, 600), ("b", 2000.0, 100, 600)],
        until=10.0,
    )
    wa = link.tracer.work_in_interval("a", 0, 10)
    wb = link.tracer.work_in_interval("b", 0, 10)
    assert wb / wa == pytest.approx(2.0, rel=0.05)


def test_theorem1_fairness_bound_constant_rate():
    sfq = SFQ()
    link = drive_greedy(
        sfq,
        ConstantCapacity(2000.0),
        [("f", 1000.0, 400, 200), ("m", 500.0, 250, 200)],
    )
    h = empirical_fairness_measure(link.tracer, "f", "m", 1000.0, 500.0)
    bound = sfq_fairness_bound(400, 1000.0, 250, 500.0)
    assert h <= bound + 1e-9


def test_theorem1_fairness_bound_variable_rate():
    # Theorem 1 makes no assumption about the server: check on a square
    # wave that stalls completely half the time.
    sfq = SFQ()
    link = drive_greedy(
        sfq,
        TwoRateSquareWave(4000.0, 1.0, 0.0, 1.0),
        [("f", 1000.0, 400, 200), ("m", 500.0, 250, 200)],
    )
    h = empirical_fairness_measure(link.tracer, "f", "m", 1000.0, 500.0)
    bound = sfq_fairness_bound(400, 1000.0, 250, 500.0)
    assert h <= bound + 1e-9


def test_late_joiner_not_penalized():
    # A flow that joins late must immediately get its share (the
    # variable-rate fairness property WFQ lacks; cf. Example 2).
    link = run_schedule(
        SFQ(),
        ConstantCapacity(1000.0),
        [(0.0, "a", 100)] * 200 + [(10.0, "b", 100)] * 100,
        weights={"a": 1.0, "b": 1.0},
    )
    wa = link.tracer.work_in_interval("a", 10.0, 20.0)
    wb = link.tracer.work_in_interval("b", 10.0, 20.0)
    assert wb / max(wa, 1) == pytest.approx(1.0, rel=0.1)


def test_per_packet_rate_generalization():
    # eq. 36: a packet may carry its own rate.
    sfq = SFQ()
    sfq.add_flow("f", 100.0)
    p = Packet("f", 200, seqno=0, rate=400.0)
    sfq.enqueue(p, 0.0)
    assert p.finish_tag == pytest.approx(0.5)  # 200/400, not 200/100


def test_tie_break_lowest_weight_first():
    sfq = SFQ(tie_break=TieBreak.lowest_weight_first)
    sfq.add_flow("heavy", 1000.0)
    sfq.add_flow("light", 10.0)
    # Both arrive fresh: S = 0 for both -> tie; light must win.
    sfq.enqueue(Packet("heavy", 100, seqno=0), 0.0)
    sfq.enqueue(Packet("light", 100, seqno=0), 0.0)
    assert sfq.dequeue(0.0).flow == "light"


def test_peek_matches_dequeue():
    sfq = SFQ()
    sfq.add_flow("a", 1.0)
    sfq.add_flow("b", 1.0)
    sfq.enqueue(Packet("a", 100, seqno=0), 0.0)
    sfq.enqueue(Packet("b", 50, seqno=0), 0.0)
    peeked = sfq.peek(0.0)
    assert sfq.dequeue(0.0) is peeked


def test_empty_dequeue_returns_none():
    assert SFQ().dequeue(0.0) is None


def test_backlog_accounting():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    sfq.enqueue(Packet("f", 100, seqno=0), 0.0)
    sfq.enqueue(Packet("f", 200, seqno=1), 0.0)
    assert sfq.backlog_packets == 2
    assert sfq.backlog_bits == 300
    sfq.dequeue(0.0)
    assert sfq.backlog_packets == 1
    assert sfq.backlog_bits == 200


def test_auto_register_uses_default_weight():
    sfq = SFQ(auto_register=True, default_weight=5.0)
    sfq.enqueue(Packet("new", 100, seqno=0), 0.0)
    assert sfq.flows["new"].weight == 5.0


def test_no_auto_register_raises():
    sfq = SFQ(auto_register=False)
    with pytest.raises(SchedulerError):
        sfq.enqueue(Packet("unknown", 100), 0.0)


def test_virtual_time_monotone_under_interleaving():
    sfq = SFQ()
    sfq.add_flow("a", 10.0)
    sfq.add_flow("b", 20.0)
    vs = []
    t = 0.0
    for i in range(50):
        sfq.enqueue(Packet("a", 100, seqno=2 * i), t)
        sfq.enqueue(Packet("b", 50, seqno=2 * i + 1), t)
        p = sfq.dequeue(t)
        vs.append(sfq.virtual_time)
        t += 1.0
        sfq.on_service_complete(p, t)
        while not sfq.is_empty:
            p = sfq.dequeue(t)
            vs.append(sfq.virtual_time)
            t += 1.0
            sfq.on_service_complete(p, t)
    assert vs == sorted(vs)
