"""Tests for the fluid GPS tracker, WFQ and FQS."""

from __future__ import annotations

import pytest

from tests.helpers import drive_greedy, run_schedule, service_order
from repro.core import FQS, WFQ, Packet
from repro.core.gps import GPSVirtualClock
from repro.servers import ConstantCapacity, Link, PiecewiseCapacity
from repro.simulation import Simulator


# ----------------------------------------------------------------------
# GPSVirtualClock (eq. 3)
# ----------------------------------------------------------------------
def test_v_constant_while_fluid_idle():
    gps = GPSVirtualClock(100.0)
    assert gps.advance(5.0) == 0.0


def test_v_slope_is_capacity_over_weightsum():
    gps = GPSVirtualClock(100.0)
    gps.on_arrival("a", 50.0, finish_tag=1000.0)
    # dv/dt = 100/50 = 2.
    assert gps.advance(1.0) == pytest.approx(2.0)
    gps.on_arrival("b", 50.0, finish_tag=1000.0)
    # dv/dt = 1 now.
    assert gps.advance(2.0) == pytest.approx(3.0)


def test_fluid_departure_restores_slope():
    gps = GPSVirtualClock(100.0)
    gps.on_arrival("a", 50.0, finish_tag=2.0)  # drains at v=2
    gps.on_arrival("b", 50.0, finish_tag=100.0)
    # Until v=2: slope 1 -> takes 2s. After: slope 2.
    assert gps.advance(2.0) == pytest.approx(2.0)
    assert gps.fluid_backlogged_flows == 1  # a retires exactly at v=2
    assert gps.advance(3.0) == pytest.approx(4.0)
    assert gps.fluid_backlogged_flows == 1


def test_superseded_finish_tags_pruned():
    gps = GPSVirtualClock(100.0)
    gps.on_arrival("a", 50.0, finish_tag=1.0)
    gps.on_arrival("a", 50.0, finish_tag=5.0)
    gps.advance(10.0)  # must not choke on the stale (1.0, a) entry
    assert gps.fluid_backlogged_flows == 0


def test_time_cannot_go_backwards():
    gps = GPSVirtualClock(100.0)
    gps.advance(2.0)
    with pytest.raises(ValueError):
        gps.advance(1.0)


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        GPSVirtualClock(0.0)


# ----------------------------------------------------------------------
# WFQ
# ----------------------------------------------------------------------
def test_wfq_schedules_by_finish_tag():
    # Blocker in service while a and b queue; WFQ then picks smaller F.
    link = run_schedule(
        WFQ(assumed_capacity=100.0),
        ConstantCapacity(100.0),
        [(0.0, "z", 100), (0.0, "a", 1000), (0.0, "b", 500)],
        weights={"z": 100.0, "a": 100.0, "b": 100.0},
    )
    assert service_order(link) == [("z", 0), ("b", 0), ("a", 0)]


def test_fqs_schedules_by_start_tag():
    link = run_schedule(
        FQS(assumed_capacity=100.0),
        ConstantCapacity(100.0),
        # Same workload: FQS orders by S (both 0) -> arrival order wins.
        [(0.0, "z", 100), (0.0, "a", 1000), (0.0, "b", 500)],
        weights={"z": 100.0, "a": 100.0, "b": 100.0},
    )
    assert service_order(link) == [("z", 0), ("a", 0), ("b", 0)]


def test_wfq_weighted_shares_on_correct_capacity():
    link = drive_greedy(
        WFQ(assumed_capacity=3000.0),
        ConstantCapacity(3000.0),
        [("a", 1000.0, 100, 600), ("b", 2000.0, 100, 600)],
        until=10.0,
    )
    wa = link.tracer.work_in_interval("a", 0, 10)
    wb = link.tracer.work_in_interval("b", 0, 10)
    assert wb / wa == pytest.approx(2.0, rel=0.05)


def test_wfq_example2_unfair_on_slower_real_capacity():
    """Paper Example 2, exactly: real rate 1 pkt/s then C; WFQ assumed C."""
    c = 10.0
    capacity = PiecewiseCapacity.from_list(
        [(0.0, 1.0), (1.0, c), (2.0, c)], average_rate=c
    )
    sim = Simulator()
    wfq = WFQ(assumed_capacity=c)
    wfq.add_flow("f", 1.0)
    wfq.add_flow("m", 1.0)
    link = Link(sim, wfq, capacity)
    sim.at(0.0, lambda: [link.send(Packet("f", 1, seqno=i)) for i in range(int(c) + 1)])
    sim.at(1.0, lambda: [link.send(Packet("m", 1, seqno=i)) for i in range(int(c))])
    sim.run(until=2.0)
    wf = link.tracer.work_in_interval("f", 1.0, 2.0)
    wm = link.tracer.work_in_interval("m", 1.0, 2.0)
    # The paper: C-1 <= W_f(1,2) <= C and W_m(1,2) <= 1.
    assert wf >= c - 1
    assert wm <= 1


def test_wfq_tags_use_gps_virtual_time():
    wfq = WFQ(assumed_capacity=100.0)
    wfq.add_flow("a", 50.0)
    wfq.add_flow("b", 50.0)
    pa = Packet("a", 100, seqno=0)
    wfq.enqueue(pa, 0.0)
    assert pa.start_tag == 0.0
    assert pa.finish_tag == pytest.approx(2.0)
    # b arrives 1s later: only a fluid-backlogged, v(1) = 2.
    pb = Packet("b", 100, seqno=0)
    wfq.enqueue(pb, 1.0)
    assert pb.start_tag == pytest.approx(2.0)


def test_gps_pieces_counter_tracks_work():
    wfq = WFQ(assumed_capacity=100.0)
    wfq.add_flow("a", 100.0)
    for i in range(10):
        wfq.enqueue(Packet("a", 100, seqno=i), float(i))
    assert wfq.gps.pieces_computed > 0


def test_gps_worst_single_advance_is_linear_in_flows():
    """One advance after an idle gap retires every fluid flow: the
    worst-case cost of WFQ's v(t) maintenance is O(Q)."""
    n = 32
    gps = GPSVirtualClock(1000.0)
    for i in range(n):
        gps.on_arrival(f"f{i}", 1000.0 / n, finish_tag=float(i + 1))
    gps.advance(1000.0)  # all n flows retire inside this one call
    assert gps.retirements == n
    assert gps.max_pieces_single_advance >= n


def test_gps_retirements_counted_individually():
    gps = GPSVirtualClock(100.0)
    gps.on_arrival("a", 50.0, finish_tag=1.0)
    gps.on_arrival("b", 50.0, finish_tag=2.0)
    gps.advance(10.0)
    assert gps.retirements == 2


def test_wfq_peek_matches_dequeue():
    wfq = WFQ(assumed_capacity=10.0)
    wfq.add_flow("a", 1.0)
    wfq.add_flow("b", 1.0)
    wfq.enqueue(Packet("a", 100, seqno=0), 0.0)
    wfq.enqueue(Packet("b", 10, seqno=0), 0.0)
    assert wfq.dequeue(0.0) is not None
