"""Tests for Virtual Clock and Delay EDD."""

from __future__ import annotations

import pytest

from tests.helpers import drive_greedy, run_schedule, service_order
from repro.analysis.admission import delay_edd_schedulable
from repro.analysis.delay_bounds import edd_delay_bound
from repro.core import DelayEDD, Packet, VirtualClock
from repro.core.base import SchedulerError
from repro.servers import ConstantCapacity, PeriodicStall


# ----------------------------------------------------------------------
# Virtual Clock
# ----------------------------------------------------------------------
def test_vc_timestamp_is_eat_plus_service():
    vc = VirtualClock()
    vc.add_flow("f", 100.0)
    p1 = Packet("f", 200, seqno=0)
    vc.enqueue(p1, 1.0)
    # EAT = 1.0; stamp = 1.0 + 200/100 = 3.0.
    assert p1.timestamp == pytest.approx(3.0)
    p2 = Packet("f", 100, seqno=1)
    vc.enqueue(p2, 1.0)
    # EAT = 3.0; stamp = 4.0.
    assert p2.timestamp == pytest.approx(4.0)


def test_vc_weighted_shares_when_backlogged():
    link = drive_greedy(
        VirtualClock(),
        ConstantCapacity(3000.0),
        [("a", 1000.0, 100, 600), ("b", 2000.0, 100, 600)],
        until=10.0,
    )
    wa = link.tracer.work_in_interval("a", 0, 10)
    wb = link.tracer.work_in_interval("b", 0, 10)
    assert wb / wa == pytest.approx(2.0, rel=0.05)


def test_vc_punishes_past_idle_bandwidth_use():
    """The unfairness that motivates fair queueing (Section 1.1): a flow
    that used idle bandwidth is locked out when a competitor returns."""
    schedule = [(float(i), "greedy", 100) for i in range(20)]  # 2x its rate
    schedule += [(10.0, "newcomer", 100)] * 5
    link = run_schedule(
        VirtualClock(),
        ConstantCapacity(100.0),
        schedule,
        weights={"greedy": 50.0, "newcomer": 50.0},
    )
    # All of newcomer's packets go before greedy's backlog resumes.
    order = service_order(link)
    after_10 = [f for f, _ in order if order.index((f, _)) >= 10]
    newcomer_records = link.tracer.for_flow("newcomer")
    greedy_after = [
        r for r in link.tracer.for_flow("greedy") if r.start_service >= 10.0
    ]
    last_newcomer = max(r.departure for r in newcomer_records)
    # The newcomer's burst completes before most of greedy's backlog.
    assert sum(1 for r in greedy_after if r.departure < last_newcomer) <= 2


# ----------------------------------------------------------------------
# Delay EDD
# ----------------------------------------------------------------------
def test_edd_requires_deadline_registration():
    edd = DelayEDD()
    edd.add_flow("f", 100.0)  # registered without a deadline
    with pytest.raises(SchedulerError):
        edd.enqueue(Packet("f", 100), 0.0)


def test_edd_deadline_is_eat_plus_offset():
    edd = DelayEDD()
    edd.add_flow_with_deadline("f", rate=100.0, deadline=0.5)
    p = Packet("f", 100, seqno=0)
    edd.enqueue(p, 2.0)
    assert p.deadline == pytest.approx(2.5)


def test_edd_orders_by_deadline_not_rate():
    edd = DelayEDD()
    edd.add_flow_with_deadline("slow_urgent", rate=10.0, deadline=0.1)
    edd.add_flow_with_deadline("fast_lax", rate=1000.0, deadline=5.0)
    edd.add_flow_with_deadline("blocker", rate=1000.0, deadline=10.0)
    link = run_schedule(
        edd,
        ConstantCapacity(100.0),
        [(0.0, "blocker", 100), (0.0, "fast_lax", 100), (0.0, "slow_urgent", 100)],
        weights={},
    )
    assert service_order(link)[1] == ("slow_urgent", 0)


def test_edd_rejects_bad_deadline():
    with pytest.raises(SchedulerError):
        DelayEDD().add_flow_with_deadline("f", 1.0, 0.0)


def test_theorem7_bound_on_fc_server():
    """Deadline guarantee on a periodically stalling server (eq. 68)."""
    capacity = PeriodicStall(2000.0, 0.5, 1.0)  # mean 1000, delta = 500
    edd = DelayEDD()
    flows = [("u", 200.0, 1.0), ("v", 400.0, 2.0)]
    for flow, rate, deadline in flows:
        edd.add_flow_with_deadline(flow, rate, deadline)
    assert delay_edd_schedulable(
        [(rate, 100.0, d) for _f, rate, d in flows], 1000.0
    )
    schedule = []
    for flow, rate, _d in flows:
        gap = 100.0 / rate
        schedule += [(i * gap, flow, 100) for i in range(100)]
    link = run_schedule(edd, capacity, schedule, weights={})
    for flow, rate, deadline in flows:
        prev_eat, prev_service = float("-inf"), 0.0
        for record in sorted(link.tracer.departed(flow), key=lambda r: r.seqno):
            eat = max(record.arrival, prev_eat + prev_service)
            prev_eat, prev_service = eat, record.length / rate
            bound = edd_delay_bound(eat + deadline, 100.0, 1000.0, 500.0)
            assert record.departure <= bound + 1e-9


def test_edd_schedulability_rejects_overload():
    assert not delay_edd_schedulable([(600.0, 100.0, 1.0), (600.0, 100.0, 1.0)], 1000.0)


def test_edd_schedulability_rejects_too_tight_deadlines():
    # Two flows, each fine on rate, but deadlines tighter than the
    # transient backlog allows.
    flows = [(500.0, 1000.0, 0.9), (500.0, 1000.0, 0.9)]
    # At t just after 0.9+, demand = 2 * ceil(eps*500/1000)*1 = 2 packets
    # = 2000 bits / 1000 b/s = 2.0 > 0.9.
    assert not delay_edd_schedulable(flows, 1000.0)


def test_edd_schedulability_accepts_loose_deadlines():
    flows = [(500.0, 1000.0, 3.0), (500.0, 1000.0, 3.0)]
    assert delay_edd_schedulable(flows, 1000.0)
