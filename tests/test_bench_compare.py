"""Unit tests for scripts/bench_compare.py's regression gate.

Loaded via importlib (the script is not an installed module). The key
behavior under test: sub-millisecond latency metrics are exempt from
the 30% gate (CI timer noise swamps them), while throughput metrics and
above-floor latencies are always gated.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py"


@pytest.fixture(scope="module")
def bench_compare():
    spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload(**metrics):
    return {"section": dict(metrics)}


def test_sub_floor_latency_regression_is_exempt(bench_compare, capsys):
    # 10x regression, but both sides are ~microseconds: noise, not a gate.
    baseline = _payload(optimized_dequeue_ns_per_packet=200.0)
    fresh = _payload(optimized_dequeue_ns_per_packet=2000.0)
    failures = bench_compare.compare(baseline, fresh, threshold=0.30)
    assert failures == []
    assert "exempt" in capsys.readouterr().out


def test_above_floor_latency_regression_fails(bench_compare):
    baseline = _payload(optimized_dequeue_ns_per_packet=2e6)  # 2 ms
    fresh = _payload(optimized_dequeue_ns_per_packet=4e6)
    failures = bench_compare.compare(baseline, fresh, threshold=0.30)
    assert len(failures) == 1
    path, base, new, regression = failures[0]
    assert path.endswith("optimized_dequeue_ns_per_packet")
    assert regression == pytest.approx(1.0)


def test_latency_straddling_floor_is_gated(bench_compare):
    # A metric that *grows past* the floor is a real regression: the
    # exemption requires both sides below the floor.
    baseline = _payload(optimized_dequeue_ns_per_packet=5e5)  # 0.5 ms
    fresh = _payload(optimized_dequeue_ns_per_packet=5e6)  # 5 ms
    failures = bench_compare.compare(baseline, fresh, threshold=0.30)
    assert len(failures) == 1


def test_throughput_regression_never_exempt(bench_compare):
    # Tiny absolute values, but throughput is not a timer reading.
    baseline = _payload(optimized_pipeline_pkts_per_sec=1000.0)
    fresh = _payload(optimized_pipeline_pkts_per_sec=500.0)
    failures = bench_compare.compare(baseline, fresh, threshold=0.30)
    assert len(failures) == 1


def test_improvements_and_small_changes_pass(bench_compare):
    baseline = _payload(
        optimized_dequeue_ns_per_packet=2e6,
        optimized_pipeline_pkts_per_sec=1000.0,
    )
    fresh = _payload(
        optimized_dequeue_ns_per_packet=1e6,  # 2x faster
        optimized_pipeline_pkts_per_sec=900.0,  # -10%: under threshold
    )
    assert bench_compare.compare(baseline, fresh, threshold=0.30) == []


def test_missing_section_fails_with_diagnostic(bench_compare, capsys):
    # A renamed/dropped section must fail the gate with a per-metric
    # diagnostic, not silently shrink its coverage.
    baseline = _payload(optimized_dispatch_ns_per_event=2e6)
    fresh = {"renamed_section": {"optimized_dispatch_ns_per_event": 2e6}}
    failures = bench_compare.compare(baseline, fresh, threshold=0.30)
    assert len(failures) == 1
    path, base, new, regression = failures[0]
    assert path == "section.optimized_dispatch_ns_per_event"
    assert base == 2e6
    assert new is None and regression is None
    out = capsys.readouterr().out
    assert "MISSING" in out and "absent from" in out


def test_missing_section_exits_nonzero(bench_compare, tmp_path, capsys):
    # End-to-end through main(): baseline has a section the fresh run
    # lost; exit status must be nonzero and stderr must name the metric.
    import json

    for name in bench_compare.BENCH_FILES:
        (tmp_path / "base").mkdir(exist_ok=True)
        (tmp_path / "fresh").mkdir(exist_ok=True)
        (tmp_path / "base" / name).write_text(json.dumps(
            {"section": {"optimized_dispatch_ns_per_event": 2e6}}
        ))
        (tmp_path / "fresh" / name).write_text(json.dumps({}))
    rc = bench_compare.main([
        "--baseline-dir", str(tmp_path / "base"),
        "--fresh-dir", str(tmp_path / "fresh"),
    ])
    assert rc == 1
    assert "MISSING" in capsys.readouterr().err


def test_floor_is_configurable(bench_compare):
    baseline = _payload(optimized_dequeue_ns_per_packet=200.0)
    fresh = _payload(optimized_dequeue_ns_per_packet=2000.0)
    failures = bench_compare.compare(
        baseline, fresh, threshold=0.30, floor_ns=100.0
    )
    assert len(failures) == 1
