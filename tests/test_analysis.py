"""Tests for the analysis layer: fairness measures, bounds, admission,
end-to-end composition, statistics."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    ServerGuarantee,
    compose_path,
    delay_edd_schedulable,
    delay_shift_condition,
    deterministic_path_bound,
    drr_fairness_bound,
    ebf_tail_probability,
    expected_arrival_times,
    fair_airport_fairness_bound,
    golestani_lower_bound,
    hierarchical_fc_params,
    jain_index,
    leaky_bucket_e2e_delay_bound,
    path_delay_tail,
    rate_functions_admissible,
    rates_admissible,
    scfq_delay_bound,
    scfq_sfq_delay_delta,
    sfq_delay_bound,
    sfq_fairness_bound,
    sfq_throughput_lower_bound,
    wfq_delay_bound,
    wfq_sfq_delay_delta_equal_lengths,
    wfq_sfq_delta_positive_condition,
)
from repro.analysis.fairness import backlogged_intervals, empirical_fairness_measure
from repro.analysis.stats import delay_summary, mean, percentile, stddev, windowed_throughput
from repro.simulation import Tracer
from repro.simulation.tracing import PacketRecord


# ----------------------------------------------------------------------
# Fairness bounds
# ----------------------------------------------------------------------
def test_bound_relationships():
    args = (1600, 64_000.0, 800, 32_000.0)
    lower = golestani_lower_bound(*args)
    sfq = sfq_fairness_bound(*args)
    drr = drr_fairness_bound(*args)
    assert sfq == pytest.approx(2 * lower)
    assert drr > sfq


def test_paper_drr_example():
    """Section 1.2: r=100, l=1 -> DRR H = 1.02, 50x SCFQ's 0.02."""
    drr = drr_fairness_bound(1, 100.0, 1, 100.0)
    scfq = sfq_fairness_bound(1, 100.0, 1, 100.0)
    assert drr == pytest.approx(1.02)
    assert scfq == pytest.approx(0.02)
    assert drr / scfq == pytest.approx(51.0)


# ----------------------------------------------------------------------
# Empirical fairness machinery
# ----------------------------------------------------------------------
def _record(flow, seq, length, arrival, start, dep):
    r = PacketRecord(flow=flow, seqno=seq, length=length, arrival=arrival)
    r.start_service, r.departure = start, dep
    return r


def test_backlogged_intervals_merge():
    records = [
        _record("f", 0, 1, 0.0, 0.0, 1.0),
        _record("f", 1, 1, 0.5, 1.0, 2.0),
        _record("f", 2, 1, 5.0, 5.0, 6.0),
    ]
    assert backlogged_intervals(records) == [(0.0, 2.0), (5.0, 6.0)]


def test_empirical_fairness_simple_case():
    tracer = Tracer()
    # Both flows backlogged [0,4]; f served twice, m not at all.
    tracer.add(_record("f", 0, 100, 0.0, 0.0, 1.0))
    tracer.add(_record("f", 1, 100, 0.0, 1.0, 2.0))
    tracer.add(_record("m", 0, 100, 0.0, 2.0, 4.0))
    h = empirical_fairness_measure(tracer, "f", "m", 100.0, 100.0)
    # Over [0,2]: W_f=200, W_m=0 -> gap 2.0.
    assert h == pytest.approx(2.0)


def test_empirical_fairness_returns_worst_interval():
    tracer = Tracer()
    tracer.add(_record("f", 0, 100, 0.0, 0.0, 1.0))
    tracer.add(_record("f", 1, 100, 0.0, 1.0, 2.0))
    tracer.add(_record("m", 0, 100, 0.0, 2.0, 4.0))
    h, (t1, t2) = empirical_fairness_measure(
        tracer, "f", "m", 100.0, 100.0, return_interval=True
    )
    assert h == pytest.approx(2.0)
    # The realizing window covers exactly f's two serviced packets.
    assert t1 <= 0.0 + 1e-9
    assert 2.0 - 1e-9 <= t2 < 4.0


def test_empirical_fairness_no_overlap_is_zero():
    tracer = Tracer()
    tracer.add(_record("f", 0, 100, 0.0, 0.0, 1.0))
    tracer.add(_record("m", 0, 100, 5.0, 5.0, 6.0))
    assert empirical_fairness_measure(tracer, "f", "m", 1.0, 1.0) == 0.0


def test_jain_index():
    assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert jain_index([1.0, 0.0]) == pytest.approx(0.5)
    assert jain_index([]) == 1.0


# ----------------------------------------------------------------------
# EAT and delay bounds
# ----------------------------------------------------------------------
def test_expected_arrival_times_matches_eq37():
    eats = expected_arrival_times([0.0, 0.0, 5.0], [100, 100, 100], [100.0] * 3)
    assert eats == [0.0, 1.0, 5.0]


def test_expected_arrival_times_validates_lengths():
    with pytest.raises(ValueError):
        expected_arrival_times([0.0], [100, 200], [1.0])


def test_sfq_delay_bound_formula():
    # eq. 38 with delta=0: EAT + sum_others/C + l/C.
    assert sfq_delay_bound(1.0, 3000, 1600, 1e6) == pytest.approx(
        1.0 + 3000 / 1e6 + 1600 / 1e6
    )


def test_scfq_vs_sfq_delta_paper_number():
    # The paper: r=64Kb/s, l=200B, C=100Mb/s -> ~24.4 ms (we compute
    # 24.98 ms exactly; the paper rounded differently).
    delta = scfq_sfq_delay_delta(1600, 64_000.0, 100e6)
    assert delta == pytest.approx(0.02498, rel=1e-3)
    assert scfq_delay_bound(0.0, 0, 1600, 64_000.0, 100e6) - sfq_delay_bound(
        0.0, 0, 1600, 100e6
    ) == pytest.approx(delta)


def test_wfq_sfq_delta_sign_condition():
    # eq. 60: positive iff r/C <= 1/(|Q|-1).
    assert wfq_sfq_delta_positive_condition(100, 64_000.0, 100e6)
    assert not wfq_sfq_delta_positive_condition(200, 1e6, 100e6)
    delta_pos = wfq_sfq_delay_delta_equal_lengths(1600, 64_000.0, 100, 100e6)
    assert delta_pos > 0
    delta_neg = wfq_sfq_delay_delta_equal_lengths(1600, 1e6, 200, 100e6)
    assert delta_neg < 0


def test_throughput_floor_formula():
    floor = sfq_throughput_lower_bound(100.0, 10.0, 500.0, 1000.0, 200.0, 50.0)
    assert floor == pytest.approx(100.0 * 10 - 100 * 500 / 1000 - 100 * 200 / 1000 - 50)


def test_hierarchical_fc_params_eq65():
    rate, delta = hierarchical_fc_params(500.0, 1000.0, 2000.0, 100.0, 50.0)
    assert rate == 500.0
    assert delta == pytest.approx(500 * 1000 / 2000 + 500 * 100 / 2000 + 50)


def test_delay_shift_condition_eq73():
    assert delay_shift_condition(2, 12, 2, 0.5 * 16000, 16000.0)
    assert not delay_shift_condition(9, 12, 2, 0.5 * 16000, 16000.0)
    with pytest.raises(ValueError):
        delay_shift_condition(1, 2, 2, 1.0, 2.0)


def test_fair_airport_bounds():
    h = fair_airport_fairness_bound(100, 100.0, 100, 100.0, 100, 1000.0)
    assert h == pytest.approx(3 * 2.0 + 2 * 0.1)
    assert wfq_delay_bound(1.0, 100, 50.0, 200, 1000.0) == pytest.approx(
        1.0 + 2.0 + 0.2
    )


def test_ebf_tail():
    assert ebf_tail_probability(2.0, 1.0, 0.0) == 2.0
    assert ebf_tail_probability(2.0, 1.0, math.log(4)) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        ebf_tail_probability(1.0, 1.0, -1.0)


# ----------------------------------------------------------------------
# End-to-end composition
# ----------------------------------------------------------------------
def test_deterministic_path_bound():
    assert deterministic_path_bound(1.0, [0.1, 0.2], [0.05]) == pytest.approx(1.35)
    with pytest.raises(ValueError):
        deterministic_path_bound(0.0, [0.1, 0.2], [])


def test_compose_path_deterministic():
    g = compose_path(
        [ServerGuarantee(0.1), ServerGuarantee(0.2)], propagation_delays=[0.05]
    )
    assert g.beta == pytest.approx(0.35)
    assert g.b == 0.0
    assert g.lam == float("inf")
    assert path_delay_tail(g, 0.0) == 0.0


def test_compose_path_ebf():
    g = compose_path(
        [ServerGuarantee(0.1, b=1.0, lam=2.0), ServerGuarantee(0.1, b=3.0, lam=2.0)],
        propagation_delays=[0.0],
    )
    assert g.b == 4.0
    assert g.lam == pytest.approx(1.0)  # 1/(1/2 + 1/2)
    assert path_delay_tail(g, 1.0) == pytest.approx(4.0 * math.exp(-1.0))


def test_leaky_bucket_e2e_bound():
    bound = leaky_bucket_e2e_delay_bound(
        sigma=2000.0, rho=100.0, r_hat=200.0, l_packet=100.0,
        betas=[0.01, 0.01], propagation_delays=[0.005],
    )
    assert bound == pytest.approx(2000 / 200 - 100 / 200 + 0.025)
    with pytest.raises(ValueError):
        leaky_bucket_e2e_delay_bound(1.0, 300.0, 200.0, 1.0, [0.0], [])


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------
def test_rates_admissible():
    assert rates_admissible([400.0, 600.0], 1000.0)
    assert not rates_admissible([400.0, 700.0], 1000.0)


def test_rate_functions_admissible():
    ok = [
        [(0.0, 1.0, 400.0), (1.0, 2.0, 400.0)],
        [(0.0, 2.0, 600.0)],
    ]
    assert rate_functions_admissible(ok, 1000.0)
    bad = [
        [(0.0, 1.0, 700.0)],
        [(0.5, 2.0, 600.0)],
    ]
    assert not rate_functions_admissible(bad, 1000.0)
    with pytest.raises(ValueError):
        rate_functions_admissible([[(1.0, 1.0, 1.0)]], 10.0)


def test_edd_schedulability_slope_check():
    assert not delay_edd_schedulable([(600.0, 100.0, 1.0)] * 2, 1000.0)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def test_mean_and_stddev():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert stddev([1.0, 2.0, 3.0]) == pytest.approx(1.0)
    assert stddev([5.0]) == 0.0
    with pytest.raises(ValueError):
        mean([])


def test_percentile():
    values = list(range(101))
    assert percentile(values, 0) == 0
    assert percentile(values, 50) == 50
    assert percentile(values, 100) == 100
    assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_windowed_throughput():
    tracer = Tracer()
    tracer.add(_record("f", 0, 100, 0.0, 0.0, 0.5))
    tracer.add(_record("f", 1, 100, 0.0, 0.5, 1.5))
    series = windowed_throughput(tracer, "f", window=1.0, horizon=2.0)
    assert series == [(1.0, 100.0), (2.0, 100.0)]
    with pytest.raises(ValueError):
        windowed_throughput(tracer, "f", 0.0, 1.0)


def test_delay_summary():
    tracer = Tracer()
    tracer.add(_record("f", 0, 100, 0.0, 0.0, 1.0))
    tracer.add(_record("f", 1, 100, 0.0, 1.0, 3.0))
    summary = delay_summary(tracer, "f")
    assert summary["count"] == 2
    assert summary["mean"] == pytest.approx(2.0)
    assert summary["max"] == pytest.approx(3.0)
    assert delay_summary(tracer, "ghost")["count"] == 0
