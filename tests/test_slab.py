"""Tests for the struct-of-arrays flow slab (repro.core.slab).

The churn-regression half is the point: flow ids joining and leaving
must *recycle* slab slots (bounded capacity) and must not perturb tag
arithmetic — the schedule a churned population produces is identical
run-to-run and across campaign ``--jobs`` fan-out.
"""

from __future__ import annotations

import math

import pytest

from repro.core import Packet, SchedulerError
from repro.core.arrayheap import ArraySFQ
from repro.core.registry import make_scheduler
from repro.core.slab import FlowSlab, FlowView, SlabFlowMapping
from repro.experiments.campaign import run_campaign
from repro.faults.injectors import FlowChurn
from repro.servers import ConstantCapacity, Link
from repro.simulation import NullTracer, RandomStreams, Simulator
from repro.traffic import CBRSource


# ---------------------------------------------------------------------------
# Slab mechanics


def test_alloc_release_recycles_slots_lifo():
    slab = FlowSlab()
    a = slab.alloc("a", 1.0)
    b = slab.alloc("b", 2.0)
    assert (a, b) == (0, 1)
    assert slab.capacity == 2 and len(slab) == 2
    slab.release(b)
    assert slab.capacity == 2 and len(slab) == 1
    # Freed slot is reused (LIFO), not appended.
    c = slab.alloc("c", 3.0)
    assert c == b
    assert slab.capacity == 2 and len(slab) == 2
    assert slab.weight[c] == 3.0


def test_recycled_slot_state_is_reset():
    slab = FlowSlab()
    s = slab.alloc("a", 1.0)
    slab.last_finish[s] = 42.0
    slab.bits_enqueued[s] = 999
    slab.release(s)
    s2 = slab.alloc("b", 1.0)
    assert s2 == s
    assert slab.last_finish[s2] == 0.0
    assert slab.bits_enqueued[s2] == 0
    assert slab.eat_prev[s2] == -math.inf
    assert slab.eat_service[s2] == 0.0


def test_alloc_validation():
    slab = FlowSlab()
    slab.alloc("a", 1.0)
    with pytest.raises(ValueError):
        slab.alloc("a", 1.0)  # duplicate registration
    with pytest.raises(ValueError):
        slab.alloc("b", 0.0)  # non-positive weight
    with pytest.raises(ValueError):
        slab.alloc("c", -1.0)


def test_release_rejects_backlogged_and_unknown():
    slab = FlowSlab()
    s = slab.alloc("a", 1.0)
    slab.queues[s].append(Packet("a", 100))
    with pytest.raises(ValueError):
        slab.release(s)
    slab.queues[s].clear()
    slab.release(s)
    with pytest.raises(ValueError):
        slab.release(s)  # already free


def test_flow_view_and_mapping_surface():
    sched = ArraySFQ(auto_register=False)
    sched.add_flow("a", 2.0)
    sched.add_flow("b", 1.0)
    assert isinstance(sched.flows, SlabFlowMapping)
    view = sched.flows["a"]
    assert isinstance(view, FlowView)
    assert view.weight == 2.0 and view.flow_id == "a"
    assert set(sched.flows) == {"a", "b"}
    assert len(sched.flows) == 2
    assert sched.flows.get("missing") is None
    sched.enqueue(Packet("a", 800), 0.0)
    assert view.backlogged and view.backlog_packets == 1
    assert view.backlog_bits == 800
    assert view.head().length == 800


# ---------------------------------------------------------------------------
# Churn regression: slots recycle, capacity stays bounded


def test_10k_churn_cycles_keep_slab_bounded():
    """10_000 add/enqueue/dequeue/remove cycles reuse one slot and leave
    deterministic tags: the regression that motivated the free list."""
    sched = ArraySFQ(auto_register=False)
    sched.add_flow("anchor", 1.0)  # keeps the scheduler non-empty
    finishes = []
    now = 0.0
    for i in range(10_000):
        fid = ("churn", i % 7)  # ids recur, like real churn pools
        sched.add_flow(fid, 2.0)
        sched.enqueue(Packet(fid, 1000, seqno=i), now)
        pkt = sched.dequeue(now)
        sched.on_service_complete(pkt, now + 0.1)
        finishes.append(pkt.finish_tag)
        sched.remove_flow(fid)
        now += 0.25
    # One churn flow at a time: anchor + one recycled slot, forever.
    assert sched.slab.capacity <= 2
    assert len(sched.flows) == 1
    # Deterministic: the identical loop reproduces the identical tags.
    sched2 = ArraySFQ(auto_register=False)
    sched2.add_flow("anchor", 1.0)
    now = 0.0
    for i in range(10_000):
        fid = ("churn", i % 7)
        sched2.add_flow(fid, 2.0)
        sched2.enqueue(Packet(fid, 1000, seqno=i), now)
        pkt = sched2.dequeue(now)
        sched2.on_service_complete(pkt, now + 0.1)
        assert pkt.finish_tag == finishes[i]
        sched2.remove_flow(fid)
        now += 0.25


def test_flowchurn_injector_bounds_slab_on_array_backend():
    """The real ``repro.faults.FlowChurn`` injector against an array-
    backed link: every leave frees its slot, so slab capacity is bounded
    by the anchor + peak concurrent churn population (the pool size),
    however many join/leave cycles occur."""
    sim = Simulator()
    streams = RandomStreams(7)
    sched = make_scheduler("SFQ", auto_register=False, backend="array")
    sched.add_flow("anchor", 1.0)
    link = Link(sim, sched, ConstantCapacity(64_000.0), tracer=NullTracer())
    CBRSource(sim, "anchor", link.send, rate=16_000.0, packet_length=800).start()

    def make_source(fid, start, stop):
        return CBRSource(
            sim, fid, link.send, rate=8_000.0, packet_length=400,
            start_time=start, stop_time=stop,
        )

    pool = [f"c{i}" for i in range(5)]
    churn = FlowChurn(
        sim, link, make_source, streams=streams, flow_ids=pool,
        mean_on=0.4, mean_off=0.2, stop_time=60.0,
    )
    churn.start()
    sim.run(until=80.0)
    assert churn.joins >= 20  # the run actually churned
    assert churn.leaves == churn.joins  # every join fully unwound
    assert sched.slab.capacity <= 1 + len(pool)
    assert set(sched.flows) == {"anchor"}


# ---------------------------------------------------------------------------
# Determinism across campaign --jobs fan-out


def test_scale_digest_identical_across_jobs(tmp_path):
    grids = {"scale": [{"flows": 300, "packets_target": 2_000,
                        "churn_cycles": 25}]}

    def digest(jobs, where):
        campaign = run_campaign(
            ["scale"], seeds=1, jobs=jobs, cache=False,
            results_dir=str(tmp_path / where), grids=grids,
        )
        (outcome,) = campaign.outcomes
        assert outcome.status == "ok", outcome.error
        (point,) = outcome.result.data["points"]
        assert point["churn_joined"] == point["churn_detached"] == 25
        return point["digest"]

    # The departure-schedule digest is a pure function of (seed, params):
    # in-process and worker-pool execution must agree exactly.
    assert digest(1, "j1") == digest(2, "j2")
