"""Tests for the int-keyed flow-head heap (repro.core.arrayheap).

Semantics under test: tie-breaking order, ``discard_tail``,
``debug_checks`` corruption detection, and backend selection — each
checked against (or alongside) the object-backed reference path, which
remains the behavioral oracle.
"""

from __future__ import annotations

import pytest

from repro.core import Packet, SchedulerError, TieBreak
from repro.core.arrayheap import (
    ArraySCFQ,
    ArraySFQ,
    ArrayVirtualClock,
    ArrayWFQ,
)
from repro.core.registry import (
    default_backend,
    make_scheduler,
    set_default_backend,
)
from repro.core.scfq import SCFQ
from repro.core.sfq import SFQ


def _drain(sched, now=0.0, dt=0.001):
    out = []
    while True:
        pkt = sched.dequeue(now)
        if pkt is None:
            return out
        now += dt
        sched.on_service_complete(pkt, now)
        out.append((pkt.flow, pkt.seqno))


# ---------------------------------------------------------------------------
# Tie-breaking order


@pytest.mark.parametrize(
    "rule",
    [TieBreak.fifo, TieBreak.lowest_weight_first,
     TieBreak.highest_weight_first, TieBreak.shortest_packet_first],
)
def test_tie_break_order_matches_object_backend(rule):
    """Equal start tags, distinct weights/lengths: the array heap must
    order ties exactly as the object reference does (the tie key, then
    packet uid — never the payload slots)."""
    def build(cls):
        sched = cls(tie_break=rule, auto_register=False)
        for i, w in enumerate([4.0, 1.0, 2.0, 8.0]):
            sched.add_flow(f"f{i}", w)
        # All enqueued at t=0 on idle flows: every start tag is v(0)=0,
        # a four-way tie decided entirely by the rule.
        for i, length in enumerate([400, 800, 200, 800]):
            sched.enqueue(Packet(f"f{i}", length, seqno=0), 0.0)
        return sched

    assert _drain(build(ArraySFQ)) == _drain(build(SFQ))


def test_fifo_ties_resolve_by_uid_order():
    sched = ArraySFQ(auto_register=False)
    for i in range(3):
        sched.add_flow(f"f{i}", 1.0)
    # Same weight, same length, same instant: FIFO rule -> uid order,
    # which is construction order.
    for i in (2, 0, 1):
        sched.enqueue(Packet(f"f{i}", 500, seqno=0), 0.0)
    assert [f for f, _ in _drain(sched)] == ["f2", "f0", "f1"]


# ---------------------------------------------------------------------------
# discard_tail


@pytest.mark.parametrize("array_cls,object_cls", [(ArraySFQ, SFQ), (ArraySCFQ, SCFQ)])
def test_discard_tail_parity(array_cls, object_cls):
    def run(cls):
        sched = cls(auto_register=False)
        sched.add_flow("a", 1.0)
        sched.add_flow("b", 2.0)
        for s in range(4):
            sched.enqueue(Packet("a", 600, seqno=s), 0.0)
            sched.enqueue(Packet("b", 300, seqno=s), 0.0)
        dropped = [sched.discard_tail("a").seqno, sched.discard_tail("a").seqno]
        assert sched.discard_tail("missing") is None
        served = _drain(sched)
        # Tag re-chaining after the discard must survive a refill.
        sched.enqueue(Packet("a", 600, seqno=9), 1.0)
        served += _drain(sched, now=1.0)
        return dropped, served, sched.flows["a"].last_finish

    assert run(array_cls) == run(object_cls)


def test_discard_tail_empties_flow_completely():
    sched = ArraySCFQ(auto_register=False)
    sched.add_flow("a", 1.0)
    sched.enqueue(Packet("a", 500, seqno=0), 0.0)
    assert sched.discard_tail("a").seqno == 0
    assert sched.discard_tail("a") is None
    assert sched.dequeue(0.0) is None
    assert not sched.flows["a"].backlogged


def test_discard_tail_unsupported_matches_object_backend():
    for backend in ("object", "array"):
        sched = make_scheduler(
            "WFQ", auto_register=False, backend=backend, capacity=1e6
        )
        sched.add_flow("a", 1.0)
        sched.enqueue(Packet("a", 500), 0.0)
        with pytest.raises(NotImplementedError):
            sched.discard_tail("a")


# ---------------------------------------------------------------------------
# debug_checks: head-divergence detection


def test_debug_checks_detect_queue_heap_divergence():
    sched = ArraySFQ(auto_register=False, debug_checks=True)
    sched.add_flow("a", 1.0)
    sched.add_flow("b", 1.0)
    sched.enqueue(Packet("a", 500, seqno=0), 0.0)
    sched.enqueue(Packet("a", 500, seqno=1), 0.0)
    sched.enqueue(Packet("b", 500, seqno=0), 0.0)
    # Corrupt the slab behind the heap's back: the queue head no longer
    # matches the packet the heap entry was built for.
    slot = sched.slab.slot_of("a")
    sched.slab.queues[slot].popleft()
    with pytest.raises(SchedulerError, match="head"):
        _drain(sched)


def test_debug_checks_off_is_default_and_quiet():
    sched = ArraySFQ(auto_register=False)
    assert sched.debug_checks is False
    sched.add_flow("a", 1.0)
    sched.enqueue(Packet("a", 500, seqno=0), 0.0)
    assert _drain(sched) == [("a", 0)]


# ---------------------------------------------------------------------------
# Backend selection


def test_make_scheduler_backend_argument():
    assert isinstance(make_scheduler("SFQ", backend="array"), ArraySFQ)
    assert isinstance(make_scheduler("SFQ", backend="object"), SFQ)
    assert isinstance(make_scheduler("SCFQ", backend="array"), ArraySCFQ)
    assert isinstance(
        make_scheduler("VirtualClock", backend="array"), ArrayVirtualClock
    )
    assert isinstance(
        make_scheduler("WFQ", backend="array", capacity=1e6), ArrayWFQ
    )
    with pytest.raises(ValueError):
        make_scheduler("SFQ", backend="vectorized")


def test_default_backend_process_and_env(monkeypatch):
    assert default_backend() == "object"
    assert isinstance(make_scheduler("SFQ"), SFQ)
    try:
        set_default_backend("array")
        assert default_backend() == "array"
        assert isinstance(make_scheduler("SFQ"), ArraySFQ)
        # Explicit argument still beats the process default.
        assert isinstance(make_scheduler("SFQ", backend="object"), SFQ)
    finally:
        set_default_backend(None)
    monkeypatch.setenv("REPRO_SCHED_BACKEND", "array")
    assert default_backend() == "array"
    assert isinstance(make_scheduler("SFQ"), ArraySFQ)
    # A process-level default set via set_default_backend wins over env.
    try:
        set_default_backend("object")
        assert isinstance(make_scheduler("SFQ"), SFQ)
    finally:
        set_default_backend(None)


def test_disciplines_without_array_variant_fall_back_to_object():
    # DRR has no slab implementation; backend="array" must still build
    # the (object) scheduler rather than fail — the flag selects an
    # implementation where one exists, it is not a hard requirement.
    sched = make_scheduler("DRR", backend="array")
    assert sched.algorithm == "DRR"
