"""Tests for trace file I/O and the TCP delayed-ACK / receiver-window
options."""

from __future__ import annotations

import pytest

from repro.core import FIFO, Packet
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator
from repro.traffic import (
    CBRSource,
    TraceSource,
    load_trace,
    record_source,
    save_trace,
)
from repro.transport import TcpReceiver, TcpSender


# ----------------------------------------------------------------------
# Trace file I/O
# ----------------------------------------------------------------------
def test_save_load_roundtrip(tmp_path):
    trace = [(0.0, 100), (0.5, 200), (1.25, 100)]
    path = tmp_path / "t.csv"
    save_trace(path, trace, header="demo trace\nsecond line")
    loaded = load_trace(path)
    assert loaded == trace
    text = path.read_text()
    assert text.startswith("# demo trace")


def test_load_sorts_and_skips_comments(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("# c\n1.0,50\n\n0.5,60\n")
    assert load_trace(path) == [(0.5, 60), (1.0, 50)]


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("abc,def\n")
    with pytest.raises(ValueError):
        load_trace(path)
    path.write_text("1.0,-5\n")
    with pytest.raises(ValueError):
        load_trace(path)
    with pytest.raises(ValueError):
        save_trace(path, [(0.0, 0)])


def test_record_and_replay_identical_offered_load(tmp_path):
    # Record a CBR source, replay via TraceSource: identical arrivals.
    sim = Simulator()
    tap, trace = record_source()
    CBRSource(sim, "f", tap, rate=1000.0, packet_length=100, max_packets=7).start()
    sim.run()
    path = tmp_path / "cbr.csv"
    save_trace(path, trace)

    sim2 = Simulator()
    replayed = []
    TraceSource(sim2, "f", lambda p: replayed.append((p.arrival, p.length)),
                load_trace(path)).start()
    sim2.run()
    assert replayed == trace


def test_record_source_forwards(tmp_path):
    sim = Simulator()
    link = Link(sim, FIFO(), ConstantCapacity(1000.0))
    tap, trace = record_source(link.send)
    CBRSource(sim, "f", tap, rate=1000.0, packet_length=100, max_packets=3).start()
    sim.run()
    assert len(trace) == 3
    assert len(link.tracer.departed("f")) == 3


# ----------------------------------------------------------------------
# TCP options
# ----------------------------------------------------------------------
def _connection(delayed_ack=False, receiver_window=None, max_segments=40):
    sim = Simulator()
    link = Link(sim, FIFO(), ConstantCapacity(1_000_000.0))
    receiver = TcpReceiver(sim, "t", ack_path_delay=0.002, delayed_ack=delayed_ack)
    sender = TcpSender(
        sim, "t", link.send, receiver, segment_bytes=200,
        max_segments=max_segments, receiver_window=receiver_window,
    )
    link.departure_hooks.append(receiver.on_packet)
    return sim, link, sender, receiver


def test_delayed_ack_halves_ack_count():
    sim, _link, sender, plain_rx = _connection(delayed_ack=False)
    sender.start()
    sim.run(until=20.0)
    plain_acks = plain_rx.acks_sent

    sim2, _link2, sender2, delack_rx = _connection(delayed_ack=True)
    sender2.start()
    sim2.run(until=20.0)
    assert delack_rx.in_order_count == 40  # everything still delivered
    assert delack_rx.acks_sent < 0.7 * plain_acks


def test_delayed_ack_timer_flushes_odd_segment():
    sim, _link, sender, receiver = _connection(delayed_ack=True, max_segments=1)
    sender.start()
    sim.run(until=5.0)
    # One in-order segment: the delack timer (200 ms) must flush it.
    assert receiver.acks_sent == 1
    assert sender.highest_acked == 1


def test_dup_acks_not_delayed():
    sim = Simulator()
    receiver = TcpReceiver(sim, "t", delayed_ack=True)
    acks = []

    class FakeSender:
        def on_ack(self, ackno):
            acks.append(ackno)

    receiver.sender = FakeSender()
    receiver.on_packet(Packet("t", 1600, seqno=0), 0.0)  # in order: held
    receiver.on_packet(Packet("t", 1600, seqno=2), 0.1)  # gap: immediate
    receiver.on_packet(Packet("t", 1600, seqno=3), 0.2)  # still gapped
    sim.run(until=0.3)
    assert acks == [1, 1]  # two immediate (dup) ACKs for the hole


def test_receiver_window_caps_outstanding():
    sim, _link, sender, _rx = _connection(receiver_window=4, max_segments=100)
    sender.cwnd = 64.0
    peak = [0]

    def watch():
        peak[0] = max(peak[0], sender.outstanding)
        if sim.peek() is not None:
            sim.after(0.0005, watch)

    sender.start()
    sim.at(0.0, watch)
    sim.run(until=5.0)
    assert peak[0] <= 4
    assert sender.effective_window == 4
