"""Tests for strict priority bands."""

from __future__ import annotations

import pytest

from repro.core import FIFO, SFQ, Packet
from repro.core.base import SchedulerError
from repro.core.priority import PriorityBands
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator


def make_two_band():
    bands = PriorityBands([FIFO(auto_register=False), SFQ(auto_register=False)])
    bands.assign_flow("hi", 0, weight=1.0)
    bands.assign_flow("lo1", 1, weight=1.0)
    bands.assign_flow("lo2", 1, weight=1.0)
    return bands


def test_high_band_served_first():
    bands = make_two_band()
    bands.enqueue(Packet("lo1", 100, seqno=0), 0.0)
    bands.enqueue(Packet("hi", 100, seqno=0), 0.0)
    assert bands.dequeue(0.0).flow == "hi"
    assert bands.dequeue(0.0).flow == "lo1"


def test_low_band_scheduler_applies_within_band():
    bands = make_two_band()
    for i in range(4):
        bands.enqueue(Packet("lo1", 100, seqno=i), 0.0)
        bands.enqueue(Packet("lo2", 100, seqno=i), 0.0)
    order = [bands.dequeue(0.0).flow for _ in range(4)]
    # SFQ interleaves the equal-weight low flows.
    assert order.count("lo1") == 2
    assert order.count("lo2") == 2


def test_unassigned_flow_rejected():
    bands = make_two_band()
    with pytest.raises(SchedulerError):
        bands.enqueue(Packet("ghost", 100), 0.0)


def test_flow_cannot_be_assigned_twice():
    bands = make_two_band()
    with pytest.raises(SchedulerError):
        bands.assign_flow("hi", 1)


def test_band_index_validated():
    bands = make_two_band()
    with pytest.raises(SchedulerError):
        bands.assign_flow("new", 7)


def test_backlog_and_flow_backlog():
    bands = make_two_band()
    bands.enqueue(Packet("hi", 100, seqno=0), 0.0)
    bands.enqueue(Packet("lo1", 200, seqno=0), 0.0)
    assert bands.backlog_packets == 2
    assert bands.backlog_bits == 300
    assert bands.flow_backlog("lo1") == 1
    assert bands.flow_backlog("ghost") == 0


def test_nonpreemptive_priority_on_link():
    """A low-priority packet in transmission is not preempted; the high
    priority packet goes next."""
    sim = Simulator()
    bands = make_two_band()
    link = Link(sim, bands, ConstantCapacity(100.0))
    sim.at(0.0, lambda: link.send(Packet("lo1", 100, seqno=0)))
    sim.at(0.1, lambda: link.send(Packet("hi", 100, seqno=0)))
    sim.at(0.1, lambda: link.send(Packet("lo1", 100, seqno=1)))
    sim.run()
    records = sorted(link.tracer.records, key=lambda r: r.start_service)
    assert [(r.flow, r.seqno) for r in records] == [
        ("lo1", 0),
        ("hi", 0),
        ("lo1", 1),
    ]
    # lo1's first packet was never preempted.
    assert records[0].departure == pytest.approx(1.0)


def test_low_band_sees_residual_capacity():
    """With a saturating high band, the low band's throughput equals
    the link rate minus the high-priority load."""
    sim = Simulator()
    bands = make_two_band()
    link = Link(sim, bands, ConstantCapacity(1000.0))

    def hi_cbr(i=0):
        if sim.now < 10.0:
            link.send(Packet("hi", 60, seqno=i))
            sim.after(0.1, hi_cbr, i + 1)  # 600 b/s of priority load

    sim.at(0.0, hi_cbr)
    sim.at(0.0, lambda: [link.send(Packet("lo1", 100, seqno=i)) for i in range(200)])
    sim.run(until=10.0)
    lo_work = link.tracer.work_in_interval("lo1", 0, 10)
    assert lo_work == pytest.approx(4000, rel=0.1)  # ~(1000-600)*10


def test_on_service_complete_routed_to_owning_band():
    bands = make_two_band()
    bands.enqueue(Packet("lo1", 100, seqno=0), 0.0)
    p = bands.dequeue(0.0)
    bands.on_service_complete(p, 1.0)  # must not raise
    assert bands.backlog_packets == 0


def test_peek_prefers_high_band():
    bands = make_two_band()
    bands.enqueue(Packet("lo1", 100, seqno=0), 0.0)
    bands.enqueue(Packet("hi", 100, seqno=0), 0.0)
    assert bands.peek(0.0).flow == "hi"
