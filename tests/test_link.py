"""Tests for the Link service loop."""

from __future__ import annotations

import pytest

from repro.core import FIFO, SFQ, Packet
from repro.servers import ConstantCapacity, Link, PeriodicStall
from repro.simulation import Simulator


def make_link(rate=1000.0, **kwargs):
    sim = Simulator()
    sched = FIFO()
    link = Link(sim, sched, ConstantCapacity(rate), **kwargs)
    return sim, link


def test_single_packet_timing():
    sim, link = make_link()
    sim.at(0.0, lambda: link.send(Packet("f", 500, seqno=0)))
    sim.run()
    record = link.tracer.records[0]
    assert record.start_service == 0.0
    assert record.departure == pytest.approx(0.5)
    assert link.bits_transmitted == 500
    assert link.packets_transmitted == 1


def test_nonpreemptive_service():
    sim, link = make_link()
    sim.at(0.0, lambda: link.send(Packet("f", 1000, seqno=0)))
    sim.at(0.5, lambda: link.send(Packet("f", 100, seqno=1)))
    sim.run()
    second = link.tracer.for_flow("f")[1]
    assert second.start_service == pytest.approx(1.0)


def test_departure_hooks_fire():
    sim, link = make_link()
    seen = []
    link.departure_hooks.append(lambda p, t: seen.append((p.seqno, t)))
    sim.at(0.0, lambda: link.send(Packet("f", 500, seqno=0)))
    sim.run()
    assert seen == [(0, pytest.approx(0.5))]


def test_buffer_packets_drop_tail():
    sim, link = make_link(buffer_packets=2)
    drops = []
    link.drop_hooks.append(lambda p, t: drops.append(p.seqno))
    # First packet goes straight into service (not buffered); the queue
    # then holds 2; the 4th arrival overflows.
    sim.at(0.0, lambda: [link.send(Packet("f", 100, seqno=i)) for i in range(4)])
    sim.run()
    assert link.packets_dropped == 1
    assert drops == [3]
    assert link.packets_transmitted == 3


def test_buffer_bits_drop_tail():
    sim, link = make_link(buffer_bits=250)
    sim.at(0.0, lambda: [link.send(Packet("f", 100, seqno=i)) for i in range(5)])
    sim.run()
    # In service: #0; queued: #1, #2 (200 bits); #3 and #4 overflow.
    assert link.packets_dropped == 2


def test_per_flow_buffer_limit():
    sim = Simulator()
    link = Link(
        sim,
        SFQ(),
        ConstantCapacity(1000.0),
        per_flow_buffer_packets={"greedy": 1},
    )
    sim.at(0.0, lambda: [link.send(Packet("greedy", 100, seqno=i)) for i in range(5)])
    sim.at(0.0, lambda: [link.send(Packet("polite", 100, seqno=i)) for i in range(3)])
    sim.run()
    # greedy: 1 in service + 1 queued allowed -> 3 dropped.
    assert link.packets_dropped == 3
    assert len(link.tracer.departed("polite")) == 3


def test_send_returns_false_on_drop():
    sim, link = make_link(buffer_packets=0)
    results = []
    sim.at(0.0, lambda: results.append(link.send(Packet("f", 100, seqno=0))))
    sim.at(0.0, lambda: results.append(link.send(Packet("f", 100, seqno=1))))
    sim.run()
    assert results == [True, False]  # first goes into service


def test_busy_periods_recorded():
    sim, link = make_link()
    sim.at(0.0, lambda: link.send(Packet("f", 1000, seqno=0)))
    sim.at(5.0, lambda: link.send(Packet("f", 1000, seqno=1)))
    sim.run()
    assert link.busy_periods == [
        (0.0, pytest.approx(1.0)),
        (5.0, pytest.approx(6.0)),
    ]


def test_reentrant_departure_hook_does_not_double_serve():
    """Regression: a hook that sends a new packet during _complete must
    not start a second concurrent transmission."""
    sim, link = make_link()
    sent = {"n": 0}

    def refill(packet, now):
        if sent["n"] < 10:
            sent["n"] += 1
            link.send(Packet("f", 1000, seqno=sent["n"]))

    link.departure_hooks.append(refill)
    sim.at(0.0, lambda: link.send(Packet("f", 1000, seqno=0)))
    end = sim.run()
    # 11 packets x 1s each, strictly serialized.
    assert end == pytest.approx(11.0)
    departures = sorted(r.departure for r in link.tracer.departed())
    for a, b in zip(departures, departures[1:]):
        assert b - a == pytest.approx(1.0)


def test_utilization():
    sim, link = make_link()
    sim.at(0.0, lambda: [link.send(Packet("f", 100, seqno=i)) for i in range(5)])
    sim.run(until=1.0)
    assert link.utilization(0.0, 1.0) == pytest.approx(0.5)


def test_link_on_stalling_server():
    sim = Simulator()
    link = Link(sim, FIFO(), PeriodicStall(2000.0, 0.5, 1.0))
    sim.at(0.0, lambda: link.send(Packet("f", 1500, seqno=0)))
    sim.run()
    # 1000 bits by t=0.5, stall to 1.0, remaining 500 at 2000 b/s.
    assert link.tracer.records[0].departure == pytest.approx(1.25)
