"""Tests for events, random streams, and tracing."""

from __future__ import annotations

import pytest

from repro.simulation import PacketRecord, RandomStreams, Tracer
from repro.simulation.events import Event, EventCancelled


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
def test_event_ordering_by_time_priority_seq():
    a = Event(1.0, lambda: None)
    b = Event(2.0, lambda: None)
    assert a < b
    c = Event(1.0, lambda: None, priority=-1)
    assert c < a  # same time, lower priority value first
    d = Event(1.0, lambda: None)
    assert a < d  # same time+priority: earlier seq first


def test_cancelled_event_cannot_fire():
    event = Event(1.0, lambda: None)
    event.cancel()
    with pytest.raises(EventCancelled):
        event._fire()


def test_event_releases_callback_after_fire():
    fired = []
    event = Event(1.0, fired.append, (42,))
    event._fire()
    assert fired == [42]
    assert event.callback is None  # no lingering references


# ----------------------------------------------------------------------
# Random streams
# ----------------------------------------------------------------------
def test_same_seed_same_streams():
    a = RandomStreams(7).stream("x")
    b = RandomStreams(7).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent():
    streams = RandomStreams(7)
    x = streams.stream("x")
    y = streams.stream("y")
    assert [x.random() for _ in range(5)] != [y.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("a") is streams.stream("a")


def test_adding_stream_does_not_perturb_existing():
    s1 = RandomStreams(3)
    first = s1.stream("x").random()
    s2 = RandomStreams(3)
    s2.stream("unrelated")  # created before "x" this time
    assert s2.stream("x").random() == first


def test_getitem_alias():
    streams = RandomStreams(1)
    assert streams["z"] is streams.stream("z")


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def test_record_delay_fields():
    record = PacketRecord(flow="f", seqno=0, length=100, arrival=1.0)
    assert record.delay is None
    assert record.queueing_delay is None
    record.start_service = 2.0
    record.departure = 3.0
    assert record.queueing_delay == 1.0
    assert record.delay == 2.0


def test_tracer_indexes_by_flow():
    tracer = Tracer()
    tracer.on_arrival("a", 0, 100, 0.0)
    tracer.on_arrival("b", 0, 200, 0.5)
    tracer.on_arrival("a", 1, 100, 1.0)
    assert len(tracer) == 3
    assert sorted(tracer.flows()) == ["a", "b"]
    assert len(tracer.for_flow("a")) == 2


def test_work_in_interval_counts_fully_contained_service_only():
    tracer = Tracer()
    inside = tracer.on_arrival("f", 0, 100, 0.0)
    inside.start_service, inside.departure = 1.0, 2.0
    straddles = tracer.on_arrival("f", 1, 100, 0.0)
    straddles.start_service, straddles.departure = 2.5, 4.5
    # Paper semantics: a packet is served in [t1,t2] iff it starts AND
    # finishes within it.
    assert tracer.work_in_interval("f", 0.0, 3.0) == 100
    assert tracer.work_in_interval("f", 0.0, 5.0) == 200
    assert tracer.work_in_interval("f", 1.5, 5.0) == 100


def test_departed_and_dropped_filters():
    tracer = Tracer()
    done = tracer.on_arrival("f", 0, 100, 0.0)
    done.departure = 1.0
    lost = tracer.on_arrival("f", 1, 100, 0.0)
    lost.dropped = True
    assert [r.seqno for r in tracer.departed("f")] == [0]
    assert [r.seqno for r in tracer.dropped("f")] == [1]
    assert tracer.delays("f") == [1.0]


def test_tracer_clear():
    tracer = Tracer()
    tracer.on_arrival("f", 0, 100, 0.0)
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.for_flow("f") == ()
