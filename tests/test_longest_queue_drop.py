"""Tests for longest-queue-drop buffer management."""

from __future__ import annotations

import pytest

from repro.core import DRR, SFQ, Packet
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator


def make_link(policy="longest_queue", buffer_packets=4):
    sim = Simulator()
    sfq = SFQ(auto_register=False)
    sfq.add_flow("hog", 1.0)
    sfq.add_flow("meek", 1.0)
    link = Link(
        sim,
        sfq,
        ConstantCapacity(100.0),
        buffer_packets=buffer_packets,
        drop_policy=policy,
    )
    return sim, sfq, link


# ----------------------------------------------------------------------
# SFQ.discard_tail mechanics
# ----------------------------------------------------------------------
def test_discard_tail_removes_youngest_packet():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    p0, p1 = Packet("f", 100, seqno=0), Packet("f", 100, seqno=1)
    sfq.enqueue(p0, 0.0)
    sfq.enqueue(p1, 0.0)
    victim = sfq.discard_tail("f")
    assert victim is p1
    assert sfq.backlog_packets == 1
    assert sfq.dequeue(0.0) is p0
    assert sfq.dequeue(0.0) is None  # stale heap entry skipped


def test_discard_tail_rechains_finish_tags():
    sfq = SFQ()
    sfq.add_flow("f", 100.0)
    sfq.enqueue(Packet("f", 100, seqno=0), 0.0)  # F = 1
    sfq.enqueue(Packet("f", 100, seqno=1), 0.0)  # F = 2
    sfq.discard_tail("f")
    # The next arrival chains off the surviving tail (F = 1), leaving no
    # virtual-time hole for the discarded packet.
    p = Packet("f", 100, seqno=2)
    sfq.enqueue(p, 0.0)
    assert p.start_tag == pytest.approx(1.0)


def test_discard_tail_empty_flow_returns_none():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    assert sfq.discard_tail("f") is None
    assert sfq.discard_tail("ghost") is None


def test_discard_tail_unsupported_scheduler_raises():
    drr = DRR()
    drr.add_flow("f", 1.0)
    drr.enqueue(Packet("f", 100), 0.0)
    with pytest.raises(NotImplementedError):
        drr.discard_tail("f")


def test_peek_skips_discarded_head():
    sfq = SFQ()
    sfq.add_flow("f", 1.0)
    sfq.enqueue(Packet("f", 100, seqno=0), 0.0)
    sfq.discard_tail("f")
    assert sfq.peek(0.0) is None


# ----------------------------------------------------------------------
# Link-level policy
# ----------------------------------------------------------------------
def test_lqd_protects_light_flow_at_full_buffer():
    sim, sfq, link = make_link()
    # Fill the buffer with hog packets (1 in service + 4 queued).
    sim.at(0.0, lambda: [link.send(Packet("hog", 100, seqno=i)) for i in range(5)])
    # A meek packet arrives into the full buffer: under LQD it gets in,
    # evicting the hog's youngest packet.
    sim.at(0.5, lambda: link.send(Packet("meek", 100, seqno=0)))
    sim.run()
    assert len(link.tracer.departed("meek")) == 1
    assert link.packets_dropped == 1
    dropped = link.tracer.dropped("hog")
    assert len(dropped) == 1
    assert dropped[0].seqno == 4  # the youngest queued hog packet


def test_drop_tail_would_have_dropped_the_meek_packet():
    sim, sfq, link = make_link(policy="drop_tail")
    sim.at(0.0, lambda: [link.send(Packet("hog", 100, seqno=i)) for i in range(5)])
    sim.at(0.5, lambda: link.send(Packet("meek", 100, seqno=0)))
    sim.run()
    assert len(link.tracer.departed("meek")) == 0
    assert len(link.tracer.dropped("meek")) == 1


def test_lqd_falls_back_to_drop_when_nothing_to_evict():
    # Buffer "full" with zero queued packets can't happen with
    # buffer_packets >= 1; emulate per-flow cap: the arriving flow over
    # its own cap must NOT steal from others.
    sim = Simulator()
    sfq = SFQ(auto_register=False)
    sfq.add_flow("hog", 1.0)
    sfq.add_flow("meek", 1.0)
    link = Link(
        sim,
        sfq,
        ConstantCapacity(100.0),
        per_flow_buffer_packets={"hog": 1},
        drop_policy="longest_queue",
    )
    sim.at(0.0, lambda: [link.send(Packet("meek", 100, seqno=i)) for i in range(3)])
    sim.at(0.0, lambda: [link.send(Packet("hog", 100, seqno=i)) for i in range(3)])
    sim.run()
    # hog was capped at one queued packet; its overflow (seqnos 1-2) was
    # dropped rather than evicting meek's packets, which all got through.
    assert len(link.tracer.departed("meek")) == 3
    assert len(link.tracer.departed("hog")) == 1
    assert len(link.tracer.dropped("hog")) == 2
    assert len(link.tracer.dropped("meek")) == 0


def test_lqd_evicts_enough_for_a_large_packet_under_bits_buffer():
    sim = Simulator()
    sfq = SFQ(auto_register=False)
    sfq.add_flow("hog", 1.0)
    sfq.add_flow("meek", 1.0)
    link = Link(
        sim, sfq, ConstantCapacity(100.0), buffer_bits=400,
        drop_policy="longest_queue",
    )
    # Fill: one in service (exempt) + 4x100 bits queued = full.
    sim.at(0.0, lambda: [link.send(Packet("hog", 100, seqno=i)) for i in range(5)])
    # A 300-bit meek packet needs THREE evictions to fit.
    sim.at(0.5, lambda: link.send(Packet("meek", 300, seqno=0)))
    watch = []
    sim.at(0.6, lambda: watch.append(sfq.backlog_bits))
    sim.run(until=0.7)
    assert len(link.tracer.dropped("hog")) == 3
    assert sfq.flow_backlog("meek") == 1
    assert watch[0] <= 400


def test_invalid_policy_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, SFQ(), ConstantCapacity(1.0), drop_policy="random")


def test_lqd_keeps_aggregate_buffer_bounded():
    sim, sfq, link = make_link(buffer_packets=3)
    for i in range(20):
        sim.at(i * 0.01, lambda s=i: link.send(Packet("hog", 100, seqno=s)))
        sim.at(i * 0.01, lambda s=i: link.send(Packet("meek", 100, seqno=s)))
    peak = [0]

    def watch():
        peak[0] = max(peak[0], sfq.backlog_packets)
        if sim.peek() is not None:
            sim.after(0.005, watch)

    sim.at(0.0, watch)
    sim.run()
    assert peak[0] <= 3
