"""Tests for the parallel campaign runner (repro.experiments.campaign)."""

from __future__ import annotations

import json

import pytest

from repro.experiments import ACCEPTS_SEED, REGISTRY
from repro.experiments.campaign import (
    PARAM_GRIDS,
    Shard,
    cache_key,
    derive_shard_seed,
    expand_campaign,
    repro_source_digest,
    run_campaign,
    write_manifest,
)
from repro.experiments.harness import ExperimentResult
from repro.simulation.random import derive_seed

#: Synthetic experiments from tests/helpers.py, injected via targets=.
SYNTH_TARGETS = {
    "tiny": "tests.helpers:run_tiny",
    "tiny2": "tests.helpers:run_tiny",
    "boom": "tests.helpers:run_boom",
    "crash": "tests.helpers:run_exit",
    "sleepy": "tests.helpers:run_sleepy",
}
SYNTH_SEEDED = frozenset(SYNTH_TARGETS)


# ---------------------------------------------------------------------------
# Seed derivation


def test_derive_seed_is_stable_and_sensitive():
    a = derive_seed("campaign", 0, "table1", "{}", 0)
    assert a == derive_seed("campaign", 0, "table1", "{}", 0)
    assert a != derive_seed("campaign", 0, "table1", "{}", 1)
    assert a != derive_seed("campaign", 1, "table1", "{}", 0)
    assert a != derive_seed("campaign", 0, "figure1", "{}", 0)
    assert 0 <= a < 2**63


def test_shard_seed_independent_of_order():
    seeds = [derive_shard_seed("table1", (), slot, 0) for slot in range(5)]
    assert len(set(seeds)) == 5
    # Re-deriving in any order yields the same values.
    assert [derive_shard_seed("table1", (), s, 0) for s in (3, 1, 4, 0, 2)] == [
        seeds[3], seeds[1], seeds[4], seeds[0], seeds[2]
    ]


# ---------------------------------------------------------------------------
# Expansion


def test_expand_only_seed_accepting_experiments_fan_out():
    shards = expand_campaign(["example1", "table1"], seeds=3)
    by_name = {}
    for shard in shards:
        by_name.setdefault(shard.experiment, []).append(shard)
    assert len(by_name["example1"]) == 1  # deterministic: one shard
    assert len(by_name["table1"]) == 3
    assert by_name["example1"][0].seed is None
    assert all(s.seed is not None for s in by_name["table1"])


def test_expand_applies_param_grid_for_faults():
    shards = expand_campaign(["faults"], seeds=1)
    assert len(shards) == len(PARAM_GRIDS["faults"])
    params = [dict(s.params) for s in shards]
    assert {"algorithms": ("SFQ",), "include_churn": False} in params
    assert {"algorithms": (), "include_churn": True} in params


def test_expand_unknown_experiment_raises():
    with pytest.raises(KeyError):
        expand_campaign(["nope"])


def test_expand_direct_seed_mode():
    shards = expand_campaign(["table1"], seeds=2, base_seed=7,
                             derive_seeds=False)
    assert [s.seed for s in shards] == [7, 8]
    shards = expand_campaign(["table1"], seeds=1, base_seed=None,
                             derive_seeds=False)
    assert shards[0].seed is None


# ---------------------------------------------------------------------------
# Cache keys


def test_cache_key_sensitive_to_all_inputs():
    shard = Shard("tiny", "tests.helpers:run_tiny", (("label", "x"),), 0, 5)
    base = cache_key(shard, "digest-a")
    assert base == cache_key(shard, "digest-a")
    assert base != cache_key(shard, "digest-b")
    other = Shard("tiny", "tests.helpers:run_tiny", (("label", "y"),), 0, 5)
    assert base != cache_key(other, "digest-a")
    reseeded = Shard("tiny", "tests.helpers:run_tiny", (("label", "x"),), 0, 6)
    assert base != cache_key(reseeded, "digest-a")


def test_source_digest_changes_with_content(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    d1 = repro_source_digest(tmp_path)
    assert d1 == repro_source_digest(tmp_path)
    (tmp_path / "a.py").write_text("x = 2\n")
    assert repro_source_digest(tmp_path) != d1


# ---------------------------------------------------------------------------
# Campaign execution: cache, failure isolation, timeouts


def test_campaign_cache_roundtrip(tmp_path):
    kwargs = dict(targets=SYNTH_TARGETS, accepts_seed=SYNTH_SEEDED,
                  results_dir=str(tmp_path))
    cold = run_campaign(["tiny", "tiny2"], seeds=2, jobs=1, **kwargs)
    assert cold.stats == dict(shards=4, ok=4, failed=0, cached=0,
                              retried=0, jobs=1, seeds=2)
    warm = run_campaign(["tiny", "tiny2"], seeds=2, jobs=1, **kwargs)
    assert warm.stats["cached"] == 4
    assert [s.render() for s in cold.summaries.values()] == [
        s.render() for s in warm.summaries.values()
    ]
    # --no-cache ignores the populated cache.
    fresh = run_campaign(["tiny"], seeds=1, jobs=1, cache=False, **kwargs)
    assert fresh.stats["cached"] == 0
    # A different base seed is a different content address: cache misses.
    other = run_campaign(["tiny", "tiny2"], seeds=2, jobs=1, base_seed=1,
                         **kwargs)
    assert other.stats["cached"] == 0


def test_cache_files_are_content_addressed(tmp_path):
    run_campaign(["tiny"], seeds=1, jobs=1, targets=SYNTH_TARGETS,
                 accepts_seed=SYNTH_SEEDED, results_dir=str(tmp_path))
    cache_dir = tmp_path / ".cache"
    files = list(cache_dir.glob("*.json"))
    assert len(files) == 1
    payload = json.loads(files[0].read_text())
    assert payload["schema"] == "campaign-shard/1"
    assert payload["shard"]["experiment"] == "tiny"
    restored = ExperimentResult.from_payload(payload["result"])
    assert restored.rows


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    run_campaign(["tiny"], seeds=1, jobs=1, targets=SYNTH_TARGETS,
                 accepts_seed=SYNTH_SEEDED, results_dir=str(tmp_path))
    for path in (tmp_path / ".cache").glob("*.json"):
        path.write_text("{not json")
    again = run_campaign(["tiny"], seeds=1, jobs=1, targets=SYNTH_TARGETS,
                         accepts_seed=SYNTH_SEEDED, results_dir=str(tmp_path))
    assert again.stats["cached"] == 0
    assert again.stats["ok"] == 1


def test_raising_shard_fails_without_aborting_others():
    campaign = run_campaign(
        ["tiny", "boom", "tiny2"], seeds=1, jobs=2, cache=False,
        targets=SYNTH_TARGETS, accepts_seed=SYNTH_SEEDED,
    )
    statuses = {o.shard.experiment: o.status for o in campaign.outcomes}
    assert statuses == {"tiny": "ok", "boom": "failed", "tiny2": "ok"}
    boom = next(o for o in campaign.outcomes if o.shard.experiment == "boom")
    assert "RuntimeError" in boom.error
    assert boom.attempts == 1  # deterministic raise: no retry
    # The failure lands in the summary, not an exception.
    assert any("boom" in s.experiment or "failed" in s.description
               for s in campaign.summaries.values())


def test_crashed_worker_is_retried_then_failed():
    campaign = run_campaign(
        ["crash", "tiny"], seeds=1, jobs=2, cache=False, retries=1,
        targets=SYNTH_TARGETS, accepts_seed=SYNTH_SEEDED,
    )
    crash = next(o for o in campaign.outcomes if o.shard.experiment == "crash")
    tiny = next(o for o in campaign.outcomes if o.shard.experiment == "tiny")
    assert tiny.status == "ok"
    assert crash.status == "failed"
    assert crash.attempts == 2  # original + one bounded retry
    assert "died" in crash.error


@pytest.mark.parametrize("jobs", [1, 2])
def test_timeout_shard_marked_failed_not_hung(jobs):
    grids = {"sleepy": [{"seconds": 30.0}], "tiny": [{}]}
    campaign = run_campaign(
        ["sleepy", "tiny"], seeds=1, jobs=jobs, cache=False, timeout=1.0,
        targets=SYNTH_TARGETS, accepts_seed=SYNTH_SEEDED, grids=grids,
    )
    sleepy = next(o for o in campaign.outcomes if o.shard.experiment == "sleepy")
    tiny = next(o for o in campaign.outcomes if o.shard.experiment == "tiny")
    assert sleepy.status == "timeout"
    assert tiny.status == "ok"
    assert campaign.wall_s < 25.0  # nowhere near the 30s sleep
    assert campaign.stats["failed"] == 1


def test_failed_shards_do_not_poison_cache(tmp_path):
    campaign = run_campaign(
        ["boom"], seeds=1, jobs=1, targets=SYNTH_TARGETS,
        accepts_seed=SYNTH_SEEDED, results_dir=str(tmp_path),
    )
    assert campaign.stats["failed"] == 1
    cache_dir = tmp_path / ".cache"
    assert not cache_dir.exists() or not list(cache_dir.glob("*.json"))
    again = run_campaign(
        ["boom"], seeds=1, jobs=1, targets=SYNTH_TARGETS,
        accepts_seed=SYNTH_SEEDED, results_dir=str(tmp_path),
    )
    assert again.stats["cached"] == 0


# ---------------------------------------------------------------------------
# Determinism under parallelism (the acceptance criterion)


def test_jobs4_seeds5_bit_identical_to_jobs1():
    """--jobs 4 --seeds 5 must render bit-identically to --jobs 1."""
    names = ["ebf", "residual", "vbr", "faults"]
    serial = run_campaign(names, seeds=5, jobs=1, cache=False)
    parallel = run_campaign(names, seeds=5, jobs=4, cache=False)
    assert all(o.ok for o in serial.outcomes)
    assert all(o.ok for o in parallel.outcomes)
    assert list(serial.summaries) == list(parallel.summaries)
    for name in serial.summaries:
        assert serial.summaries[name].render() == parallel.summaries[name].render(), name
        assert serial.summaries[name].to_json() == parallel.summaries[name].to_json(), name


def test_cached_and_fresh_shards_are_indistinguishable(tmp_path):
    names = ["residual", "vbr"]
    cold = run_campaign(names, seeds=2, jobs=1, results_dir=str(tmp_path))
    warm = run_campaign(names, seeds=2, jobs=1, results_dir=str(tmp_path))
    assert warm.stats["cached"] == warm.stats["shards"]
    for name in cold.summaries:
        assert cold.summaries[name].to_json() == warm.summaries[name].to_json()


# ---------------------------------------------------------------------------
# Aggregation and artifacts


def test_faults_grid_concatenation_matches_monolithic_run():
    from repro.experiments.fault_tolerance import run_fault_tolerance

    mono = run_fault_tolerance(seed=5)
    campaign = run_campaign(["faults"], jobs=1, cache=False,
                            derive_seeds=False, base_seed=5)
    summary = campaign.summaries["faults"]
    assert summary.headers == mono.headers
    assert summary.rows == mono.rows
    assert summary.notes == mono.notes


def test_multi_seed_summary_aggregates_mean_and_ranges():
    campaign = run_campaign(
        ["tiny"], seeds=3, jobs=1, cache=False,
        targets=SYNTH_TARGETS, accepts_seed=SYNTH_SEEDED,
    )
    summary = campaign.summaries["tiny"]
    [row] = summary.rows
    seeds = [o.shard.seed for o in campaign.outcomes]
    assert row[1] == pytest.approx(sum(seeds) / 3)
    assert row[2] == pytest.approx(sum(s % 97 for s in seeds) / 3)
    [ranges] = summary.data["ranges"]
    assert ranges[0][1] == [pytest.approx(min(seeds)), pytest.approx(max(seeds))]
    assert any("means over 3" in note for note in summary.notes)


def test_manifest_written_and_machine_readable(tmp_path):
    campaign = run_campaign(
        ["tiny", "boom"], seeds=1, jobs=1, cache=False,
        targets=SYNTH_TARGETS, accepts_seed=SYNTH_SEEDED,
    )
    path = tmp_path / "campaign_manifest.json"
    write_manifest(campaign, path)
    payload = json.loads(path.read_text())
    assert payload["schema"] == "campaign-manifest/1"
    assert payload["stats"]["shards"] == 2
    assert payload["stats"]["failed"] == 1
    statuses = {s["key"]["experiment"]: s["status"] for s in payload["shards"]}
    assert statuses == {"tiny": "ok", "boom": "failed"}


def test_campaign_summary_markdown_renders():
    from repro.analysis.report import campaign_to_markdown

    campaign = run_campaign(
        ["tiny", "boom"], seeds=2, jobs=1, cache=False,
        targets=SYNTH_TARGETS, accepts_seed=SYNTH_SEEDED,
    )
    text = campaign_to_markdown(campaign)
    assert "# Campaign summary" in text
    assert "## synthetic tiny" in text
    assert "## Failed shards" in text
    assert "RuntimeError" in text


def test_run_all_names_cover_registry():
    campaign_default = expand_campaign(sorted(REGISTRY), seeds=1)
    assert {s.experiment for s in campaign_default} == set(REGISTRY)
    # Every seed-accepting experiment would fan out under seeds>1.
    fanned = expand_campaign(sorted(REGISTRY), seeds=2)
    fan_counts = {}
    for shard in fanned:
        fan_counts[shard.experiment] = fan_counts.get(shard.experiment, 0) + 1
    for name in ACCEPTS_SEED:
        grid = len(PARAM_GRIDS.get(name, [{}]))
        assert fan_counts[name] == 2 * grid


# ---------------------------------------------------------------------------
# Retry backoff and partial aggregation (campaign hardening)


def test_retry_backoff_deterministic_and_shaped():
    from repro.experiments.campaign import (
        RETRY_BACKOFF_BASE,
        RETRY_BACKOFF_CAP,
        retry_backoff,
    )

    shard = Shard("x", "m:f", (), 0, 1)
    first = retry_backoff(shard, 1)
    assert first == retry_backoff(shard, 1)  # derived jitter, no live RNG
    assert 0.75 * RETRY_BACKOFF_BASE <= first <= 1.25 * RETRY_BACKOFF_BASE
    second = retry_backoff(shard, 2)
    assert 0.75 * 2 * RETRY_BACKOFF_BASE <= second <= 1.25 * 2 * RETRY_BACKOFF_BASE
    assert retry_backoff(shard, 50) <= 1.25 * RETRY_BACKOFF_CAP
    # Jitter depends on the shard identity and the attempt number.
    other = Shard("y", "m:f", (), 0, 1)
    assert len({first, second, retry_backoff(other, 1)}) == 3
    with pytest.raises(ValueError):
        retry_backoff(shard, 0)


def test_timeout_shard_yields_truncated_partial_aggregate():
    grids = {
        "probe": [{"duration": 30.0, "tag": 0}, {"duration": 0.01, "tag": 1}]
    }
    targets = {"probe": "repro.experiments.campaign:run_sleep_probe"}
    campaign = run_campaign(
        ["probe"], jobs=2, cache=False, timeout=1.0,
        grids=grids, targets=targets,
    )
    assert campaign.stats["failed"] == 1
    summary = campaign.summaries["probe"]
    info = summary.data["campaign"]
    assert info["truncated"] is True
    assert {s["status"] for s in info["shards"]} == {"ok", "timeout"}
    assert any("TRUNCATED" in note for note in summary.notes)
    # The surviving shard's row is aggregated, not discarded.
    assert [row[0] for row in summary.rows] == [1]


def test_healthy_campaign_not_flagged_truncated():
    campaign = run_campaign(
        ["tiny"], seeds=2, jobs=1, cache=False,
        targets=SYNTH_TARGETS, accepts_seed=SYNTH_SEEDED,
    )
    info = campaign.summaries["tiny"].data["campaign"]
    assert info["truncated"] is False
    assert campaign.stats["retried"] == 0


def test_all_failed_summary_flagged_truncated():
    campaign = run_campaign(
        ["boom"], seeds=1, jobs=1, cache=False,
        targets=SYNTH_TARGETS, accepts_seed=SYNTH_SEEDED,
    )
    info = campaign.summaries["boom"].data["campaign"]
    assert info["truncated"] is True
    assert info["shards"][0]["status"] == "failed"


def test_crashed_shard_retry_is_backoff_gated():
    from repro.experiments.campaign import retry_backoff

    campaign = run_campaign(
        ["crash", "tiny"], seeds=1, jobs=2, cache=False, retries=1,
        targets=SYNTH_TARGETS, accepts_seed=SYNTH_SEEDED,
    )
    crash = next(o for o in campaign.outcomes if o.shard.experiment == "crash")
    assert crash.status == "failed"
    assert crash.attempts == 2
    assert campaign.stats["retried"] == 1
    # The wall clock shows at least the first attempt's backoff window.
    assert campaign.wall_s >= retry_backoff(crash.shard, 1) * 0.5
