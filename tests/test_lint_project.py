"""Tests for the whole-program lint engine (v2): semantic rules,
call graph + dataflow plumbing, cache, baseline, dedup, CLI formats.

Each semantic rule is exercised against a *seeded mutation* — the
disciplined code from the real tree with the violation re-introduced —
plus a passing fixture of the disciplined spelling. The suite also
pins the engine's operational budget (cold/warm analysis time on the
real ``src/`` tree) and the self-check that the tree stays clean modulo
the committed baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import pytest

from repro.lint import (
    AnalysisCache,
    Baseline,
    Finding,
    PROJECT_RULES,
    analyze_paths,
    load_project,
)
from repro.lint.baseline import DEFAULT_BASELINE_PATH
from repro.lint.callgraph import build_callgraph
from repro.lint.cli import main as lint_main, render_sarif
from repro.lint.dataflow import (
    LABEL_UNORDERED,
    build_cfg,
    build_summaries,
    reaching_definitions,
)
from repro.lint.engine import _dedup

REPO_ROOT = Path(__file__).resolve().parent.parent

FilePair = Tuple[str, str]


def analyze(
    files: Sequence[FilePair],
    select: Optional[Sequence[str]] = None,
    **kwargs,
) -> List[Finding]:
    """Run the full engine over in-memory fixtures."""
    result = analyze_paths(
        [path for path, _ in files], select=select, files=list(files), **kwargs
    )
    return result.findings


def codes(findings: Sequence[Finding]) -> List[str]:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# CACHE001 — experiment entry purity over the call graph
# ---------------------------------------------------------------------------

_REGISTRY_SRC = 'REGISTRY = {"demo": "repro.experiments.demo:run_demo"}\n'


def _experiment(body: str) -> List[FilePair]:
    return [
        ("src/repro/experiments/__init__.py", _REGISTRY_SRC),
        ("src/repro/experiments/demo.py", body),
    ]


def test_cache001_catches_env_read_in_entry():
    findings = analyze(
        _experiment(
            "import os\n\ndef run_demo(seed=0):\n    return os.environ.get('HOME')\n"
        ),
        select=["CACHE001"],
    )
    assert codes(findings) != [] and all(c == "CACHE001" for c in codes(findings))
    assert "os.environ" in findings[0].message


def test_cache001_catches_impurity_via_transitive_helper():
    findings = analyze(
        _experiment(
            "import time\n"
            "\n"
            "def _helper():\n"
            "    return time.perf_counter()\n"
            "\n"
            "def run_demo(seed=0):\n"
            "    return _helper()\n"
        ),
        select=["CACHE001"],
    )
    assert "CACHE001" in codes(findings)
    assert "reached via" in findings[0].message
    assert "wall clock" in findings[0].message


def test_cache001_catches_module_level_mutable_state():
    findings = analyze(
        _experiment(
            "_CACHE = {}\n"
            "\n"
            "def run_demo(seed=0):\n"
            "    _CACHE[seed] = 1\n"
            "    return _CACHE\n"
        ),
        select=["CACHE001"],
    )
    assert "CACHE001" in codes(findings)
    assert "mutable state" in findings[0].message


def test_cache001_passes_pure_entry():
    findings = analyze(
        _experiment(
            "def _shape(seed):\n"
            "    return seed * 3\n"
            "\n"
            "def run_demo(seed=0):\n"
            "    return _shape(seed)\n"
        ),
        select=["CACHE001"],
    )
    assert findings == []


def test_cache001_ignores_impurity_outside_entry_reachability():
    # The impure function exists but no registry entry reaches it.
    findings = analyze(
        _experiment(
            "import os\n"
            "\n"
            "def run_demo(seed=0):\n"
            "    return seed\n"
            "\n"
            "def unregistered_tool():\n"
            "    return os.environ.get('HOME')\n"
        ),
        select=["CACHE001"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# TAG002 — tag-math parity (eq. 4 / eq. 37 only in repro.core.tagmath)
# ---------------------------------------------------------------------------


def _one_module(source: str, path: str = "src/repro/core/sched.py") -> List[FilePair]:
    return [(path, source)]


def test_tag002_catches_inline_eq4():
    findings = analyze(
        _one_module(
            "def enqueue(v, last_finish, length, rate):\n"
            "    return max(v, last_finish) + length / rate\n"
        ),
        select=["TAG002"],
    )
    assert codes(findings) == ["TAG002"]
    assert "eq. 4" in findings[0].message


def test_tag002_catches_split_eq4_via_reaching_definitions():
    # The max() and the + length/rate are statements apart; only the
    # dataflow connection (reaching definitions) ties them together.
    findings = analyze(
        _one_module(
            "def enqueue(v, last_finish, length, rate):\n"
            "    start = max(v, last_finish)\n"
            "    if rate <= 0:\n"
            "        raise ValueError(rate)\n"
            "    finish = start + length / rate\n"
            "    return start, finish\n"
        ),
        select=["TAG002"],
    )
    assert codes(findings) == ["TAG002"]
    assert "start" in findings[0].message


def test_tag002_catches_inline_eq37():
    findings = analyze(
        _one_module(
            "def expected_arrival(arrival, prev_eat, prev_service):\n"
            "    return max(arrival, prev_eat + prev_service)\n"
        ),
        select=["TAG002"],
    )
    assert codes(findings) == ["TAG002"]
    assert "eq. 37" in findings[0].message


def test_tag002_exempts_the_tagmath_kernel_itself():
    findings = analyze(
        _one_module(
            "def start_finish(v, last_finish, length, weight, rate=None):\n"
            "    start = max(v, last_finish)\n"
            "    return start, start + length / weight\n",
            path="src/repro/core/tagmath.py",
        ),
        select=["TAG002"],
    )
    assert findings == []


def test_tag002_passes_disciplined_call():
    findings = analyze(
        _one_module(
            "from repro.core.tagmath import start_finish\n"
            "\n"
            "def enqueue(v, last_finish, length, rate):\n"
            "    return start_finish(v, last_finish, length, rate, None)\n"
        ),
        select=["TAG002"],
    )
    assert findings == []


def test_tag002_passes_unrelated_max_plus_division():
    # max() whose reaching definition never feeds an add, and adds
    # without a connected max: no re-derivation.
    findings = analyze(
        _one_module(
            "def f(xs, n):\n"
            "    top = max(xs[0], xs[1])\n"
            "    mean = sum(xs) / n\n"
            "    return top, mean\n"
        ),
        select=["TAG002"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# DET006 — interprocedural taint into scheduling sinks
# ---------------------------------------------------------------------------


def test_det006_catches_wallclock_through_helper_into_call_at():
    findings = analyze(
        _one_module(
            "import time\n"
            "\n"
            "def _stamp():\n"
            "    return time.time()\n"
            "\n"
            "def schedule(sim, handler):\n"
            "    t = _stamp()\n"
            "    sim.call_at(t, handler)\n",
            path="src/repro/simulation/sched.py",
        ),
        select=["DET006"],
    )
    assert "DET006" in codes(findings)
    assert "wallclock" in findings[0].message
    assert "call_at" in findings[0].message


def test_det006_catches_unordered_iteration_across_calls():
    findings = analyze(
        _one_module(
            "def _pick(flows):\n"
            "    for f in set(flows):\n"
            "        return f\n"
            "\n"
            "def arm(sim, flows, handler):\n"
            "    sim.call_at(_pick(flows), handler)\n",
            path="src/repro/simulation/sched.py",
        ),
        select=["DET006"],
    )
    assert "DET006" in codes(findings)
    assert LABEL_UNORDERED in findings[0].message


def test_det006_sorted_launders_iteration_order():
    findings = analyze(
        _one_module(
            "def _pick(flows):\n"
            "    for f in sorted(set(flows)):\n"
            "        return f\n"
            "\n"
            "def arm(sim, flows, handler):\n"
            "    sim.call_at(_pick(flows), handler)\n",
            path="src/repro/simulation/sched.py",
        ),
        select=["DET006"],
    )
    assert findings == []


def test_det006_passes_simulation_derived_time():
    findings = analyze(
        _one_module(
            "def _next(now, step):\n"
            "    return now + step\n"
            "\n"
            "def schedule(sim, handler):\n"
            "    sim.call_at(_next(sim.now, 0.5), handler)\n",
            path="src/repro/simulation/sched.py",
        ),
        select=["DET006"],
    )
    assert findings == []


def test_det006_exempts_benchmark_wallclock():
    findings = analyze(
        _one_module(
            "import time\n"
            "\n"
            "def arm(sim, handler):\n"
            "    sim.call_at(time.time(), handler)\n",
            path="benchmarks/bench_sched.py",
        ),
        select=["DET006"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# Engine plumbing: project loader, call graph, CFG/dataflow primitives
# ---------------------------------------------------------------------------


def test_project_loader_resolves_import_aliases():
    project = load_project(
        ["src"],
        files=[
            ("src/repro/util.py", "def helper():\n    return 1\n"),
            (
                "src/repro/user.py",
                "from repro.util import helper as h\n\ndef go():\n    return h()\n",
            ),
        ],
    )
    graph = build_callgraph(project)
    assert "repro.util.helper" in graph.edges.get("repro.user.go", set())


def test_callgraph_resolves_method_calls_on_annotated_receivers():
    project = load_project(
        ["src"],
        files=[
            (
                "src/repro/m.py",
                "class Sched:\n"
                "    def enqueue(self, p):\n"
                "        return p\n"
                "\n"
                "def drive(s: Sched, p):\n"
                "    return s.enqueue(p)\n",
            ),
        ],
    )
    graph = build_callgraph(project)
    assert "repro.m.Sched.enqueue" in graph.edges.get("repro.m.drive", set())


def test_cfg_and_reaching_definitions_track_branches():
    import ast

    tree = ast.parse(
        "def f(a):\n"
        "    x = 1\n"
        "    if a:\n"
        "        x = 2\n"
        "    return x\n"
    )
    fn = tree.body[0]
    cfg = build_cfg(fn.body)
    envs = reaching_definitions(cfg)
    ret_index = next(
        i for i, node in enumerate(cfg.nodes) if isinstance(node.stmt, ast.Return)
    )
    # Both definitions of x (line 2 and line 4) reach the return.
    assert envs[ret_index]["x"] == frozenset({"2", "4"})


def test_taint_summaries_propagate_through_returns():
    project = load_project(
        ["src"],
        files=[
            (
                "src/repro/t.py",
                "import time\n"
                "\n"
                "def a():\n"
                "    return time.time()\n"
                "\n"
                "def b():\n"
                "    return a()\n",
            ),
        ],
    )
    table = build_summaries(project)
    assert "wallclock" in table.summaries["repro.t.a"].returns
    assert "wallclock" in table.summaries["repro.t.b"].returns


# ---------------------------------------------------------------------------
# Dedup, SYNTAX columns, output formats
# ---------------------------------------------------------------------------


def test_dedup_drops_same_path_line_rule():
    first = Finding("DET006", "from module pass", "a.py", 3, 0)
    dup = Finding("DET006", "same spot, later pass", "a.py", 3, 8)
    kept = _dedup([first, dup])
    assert kept == [first]
    # Different rule at the same location survives.
    other = Finding("DET003", "different rule", "a.py", 3, 0)
    assert _dedup([first, other]) == [first, other]


def test_syntax_findings_carry_column_in_all_formats(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    base = [str(bad), "--no-cache", "--no-baseline"]

    assert lint_main(base) == 1
    text = capsys.readouterr().out
    first = text.splitlines()[0]
    # path:line:col: SYNTAX ... — the col field is a real offset.
    col = int(first.split(":")[2])
    assert col > 0 and "SYNTAX" in first

    assert lint_main(base + ["--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "SYNTAX"
    assert payload["findings"][0]["col"] == col

    assert lint_main(base + ["--format", "sarif"]) == 1
    sarif = json.loads(capsys.readouterr().out)
    result = sarif["runs"][0]["results"][0]
    assert result["ruleId"] == "SYNTAX"
    assert result["level"] == "error"
    assert result["locations"][0]["physicalLocation"]["region"][
        "startColumn"
    ] == col + 1


def test_sarif_document_shape():
    findings = [
        Finding("DET001", "unseeded rng", "src/x.py", 4, 2),
        Finding("CACHE001", "env read", "src/y.py", 9, 0),
    ]
    sarif = json.loads(render_sarif(findings))
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted({"DET001", "CACHE001"})
    for res, finding in zip(run["results"], findings):
        assert res["ruleId"] == finding.rule
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == finding.path
        assert loc["region"]["startLine"] == finding.line
        assert loc["region"]["startColumn"] == finding.col + 1
        assert rule_ids[res["ruleIndex"]] == res["ruleId"]


# ---------------------------------------------------------------------------
# Changed-file scoping
# ---------------------------------------------------------------------------


def test_changed_files_scope_report_but_not_analysis():
    files = _experiment(
        "import os\n\ndef run_demo(seed=0):\n    return os.environ.get('HOME')\n"
    )
    entry_path = str(Path("src/repro/experiments/demo.py").resolve())
    registry_path = str(Path("src/repro/experiments/__init__.py").resolve())

    scoped = analyze(files, select=["CACHE001"], changed_files={entry_path})
    assert "CACHE001" in codes(scoped)

    # Only the registry module "changed": the finding (in demo.py) is
    # scoped out of the report even though the analysis still saw the
    # whole project.
    other = analyze(files, select=["CACHE001"], changed_files={registry_path})
    assert other == []


# ---------------------------------------------------------------------------
# Baseline workflow
# ---------------------------------------------------------------------------


def test_baseline_subtracts_known_findings_and_reports_new_ones():
    files = _one_module(
        "def enqueue(v, last_finish, length, rate):\n"
        "    return max(v, last_finish) + length / rate\n"
    )
    raw = analyze(files, select=["TAG002"])
    assert codes(raw) == ["TAG002"]

    baseline = Baseline.from_findings(raw)
    assert analyze(files, select=["TAG002"], baseline=baseline) == []
    assert baseline.unused() == []

    # A second occurrence of the same violation is NEW (count exceeded).
    files2 = _one_module(
        "def enqueue(v, last_finish, length, rate):\n"
        "    return max(v, last_finish) + length / rate\n"
        "\n"
        "def enqueue2(v, last_finish, length, rate):\n"
        "    return max(v, last_finish) + length / rate\n"
    )
    leftover = analyze(files2, select=["TAG002"], baseline=baseline)
    assert codes(leftover) == ["TAG002"]


def test_baseline_round_trips_and_flags_stale_entries(tmp_path):
    baseline = Baseline.from_findings(
        [Finding("TAG002", "gone finding", "src/old.py", 7, 0)]
    )
    path = tmp_path / "baseline.json"
    baseline.write(str(path))
    loaded = Baseline.load(str(path))
    assert loaded is not None
    assert loaded.filter([]) == []
    assert loaded.unused() == [("src/old.py", "TAG002", "gone finding")]


# ---------------------------------------------------------------------------
# Analysis cache
# ---------------------------------------------------------------------------


def test_project_cache_hit_on_unchanged_tree(tmp_path):
    cache = AnalysisCache(str(tmp_path / "cache"))
    files = _one_module(
        "def enqueue(v, last_finish, length, rate):\n"
        "    return max(v, last_finish) + length / rate\n"
    )
    cold = analyze_paths(
        [p for p, _ in files], select=["TAG002"], files=files, cache=cache
    )
    assert not cold.project_cache_hit
    warm = analyze_paths(
        [p for p, _ in files], select=["TAG002"], files=files, cache=cache
    )
    assert warm.project_cache_hit
    assert warm.findings == cold.findings


def test_cache_invalidated_by_source_or_ruleset_change(tmp_path):
    cache = AnalysisCache(str(tmp_path / "cache"))
    files = _one_module("x = 1\n")
    analyze_paths([p for p, _ in files], files=files, cache=cache)
    edited = _one_module("x = 2\n")
    assert not analyze_paths(
        [p for p, _ in edited], files=edited, cache=cache
    ).project_cache_hit
    assert not analyze_paths(
        [p for p, _ in files], select=["TAG002"], files=files, cache=cache
    ).project_cache_hit


# ---------------------------------------------------------------------------
# Operational budget + self-check on the real tree
# ---------------------------------------------------------------------------


def test_full_analysis_meets_time_budget(tmp_path):
    src = str(REPO_ROOT / "src")
    cache = AnalysisCache(str(tmp_path / "cache"))

    t0 = time.perf_counter()
    cold = analyze_paths([src], cache=cache)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = analyze_paths([src], cache=cache)
    warm_s = time.perf_counter() - t0

    assert warm.project_cache_hit
    assert warm.raw_findings == cold.raw_findings
    assert cold_s < 10.0, f"cold full analysis took {cold_s:.2f}s (budget 10s)"
    assert warm_s < 2.0, f"warm full analysis took {warm_s:.2f}s (budget 2s)"


def test_source_tree_clean_or_exactly_baselined(monkeypatch):
    """src/ has no findings beyond the committed baseline — and the
    baseline holds no stale entries (it only ever ratchets down)."""
    # The baseline stores repo-relative paths, so analyze like the CLI
    # does: from the repo root.
    monkeypatch.chdir(REPO_ROOT)
    baseline = Baseline.load(DEFAULT_BASELINE_PATH)
    result = analyze_paths(["src"], baseline=baseline)
    assert result.findings == [], (
        "new findings not covered by the baseline:\n"
        + "\n".join(f.format() for f in result.findings)
    )
    if baseline is not None:
        assert baseline.unused() == [], (
            "stale baseline entries (fixed findings still listed): "
            f"{baseline.unused()}"
        )


def test_every_project_rule_is_exercised_here():
    """Registry sweep: adding a project rule without fixtures fails."""
    exercised = {"CACHE001", "TAG002", "DET006"}
    assert set(PROJECT_RULES) == exercised
