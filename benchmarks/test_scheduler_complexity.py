"""Bench: per-packet scheduling cost vs number of flows.

The paper's complexity claims: SFQ and SCFQ are O(log Q) per packet
(tag computation is O(1), the priority queue costs the log); DRR is
O(1); WFQ pays the fluid GPS simulation on top of its O(log Q) heap.
These are real pytest-benchmark micro-benchmarks: each measures one
enqueue+dequeue+complete cycle over a standing population of Q
backlogged flows.

``test_cost_flat_in_backlog_depth`` is the hard gate for the flow-head
heap rewrite: with the flow count pinned, deepening every flow's
backlog 10x must leave per-packet cost within 20% — the cost is
O(log F) in backlogged *flows*, not O(log N) in queued *packets* (the
seed core's global packet heap). Skipped under ``--benchmark-disable``
(CI smoke mode).
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core import Packet, make_scheduler
from repro.experiments.bench import _per_packet_seconds

FLOW_COUNTS = [16, 256]

MAKERS = {
    "SFQ": lambda: make_scheduler("SFQ", auto_register=False),
    "SCFQ": lambda: make_scheduler("SCFQ", auto_register=False),
    "WFQ": lambda: make_scheduler("WFQ", capacity=1e6, auto_register=False),
    "VirtualClock": lambda: make_scheduler("VirtualClock", auto_register=False),
    "DRR": lambda: make_scheduler("DRR", quantum_scale=1000.0, auto_register=False),
    "FIFO": lambda: make_scheduler("FIFO", auto_register=False),
    # Appendix B claims FA's complexity matches dynamic-priority
    # algorithms (O(log Q)); the release heap makes that true here too.
    "FairAirport": lambda: make_scheduler("FairAirport", auto_register=False),
}


def build_loaded_scheduler(name: str, n_flows: int):
    """Scheduler with n_flows registered and 4 packets queued each."""
    rng = random.Random(17)
    sched = MAKERS[name]()
    for i in range(n_flows):
        sched.add_flow(f"f{i}", 1000.0 + i)
    uid = itertools.count()
    for i in range(n_flows):
        for j in range(4):
            sched.enqueue(Packet(f"f{i}", rng.choice((400, 800)), seqno=j), 0.0)
    return sched


@pytest.mark.parametrize("n_flows", FLOW_COUNTS)
@pytest.mark.parametrize("algorithm", sorted(MAKERS))
def test_per_packet_cost(benchmark, algorithm, n_flows):
    sched = build_loaded_scheduler(algorithm, n_flows)
    clock = itertools.count()
    seq = itertools.count(1000)
    rng = random.Random(23)
    flow_ids = [f"f{i}" for i in range(n_flows)]

    def cycle():
        now = float(next(clock)) * 1e-3
        packet = sched.dequeue(now)
        sched.on_service_complete(packet, now)
        # Refill the flow we just drained to keep the population stable.
        sched.enqueue(
            Packet(rng.choice(flow_ids), 400, seqno=next(seq)), now
        )

    benchmark.group = f"per-packet cost, Q={n_flows}"
    benchmark(cycle)


# ----------------------------------------------------------------------
# Hard gate: cost is O(log F) in flows, not O(log N) in packets
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["SFQ", "SCFQ", "VirtualClock"])
def test_cost_flat_in_backlog_depth(request, algorithm):
    """16 flows; growing per-flow backlog 4 -> 40 (total packets 64 ->
    640) changes per-packet cost by <20%.

    The seed core's global packet heap pays log(total backlog) per
    operation plus a stale-uid skim; the flow-head heap compares only
    the 16 flow heads regardless of queue depth.
    """
    if request.config.getoption("benchmark_disable"):
        pytest.skip("timing assertions disabled in smoke mode")
    factory = MAKERS[algorithm]
    cycles = 20_000
    repeats = 5
    costs = {
        backlog: min(
            _per_packet_seconds(factory, 16, backlog, cycles)
            for _ in range(repeats)
        ) / cycles
        for backlog in (4, 40)
    }
    ratio = costs[40] / costs[4]
    assert ratio < 1.2, (
        f"{algorithm}: per-packet cost grew {ratio:.2f}x when per-flow "
        f"backlog grew 10x (must stay <1.2x): "
        f"{costs[4] * 1e9:.0f}ns -> {costs[40] * 1e9:.0f}ns"
    )
