"""Benchmark suite configuration.

Every benchmark regenerates one table/figure of the paper: it runs the
experiment (timed via pytest-benchmark), asserts the paper's qualitative
claims, prints the rendered table, and archives it under ``results/`` so
the artifacts survive output capturing.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def save_result(result) -> str:
    """Print and archive an ExperimentResult; returns the rendering.

    If the experiment attached ASCII charts (``result.data["charts"]``),
    they are appended — the archived artifact then regenerates the
    paper's *figure*, not just its headline numbers.
    """
    text = result.render()
    charts = result.data.get("charts")
    if charts:
        text = text + "\n\n" + "\n\n".join(charts)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = "".join(
        ch if ch.isalnum() or ch in "._-" else "_"
        for ch in result.experiment.lower().replace(" ", "_")
    ).strip("_")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    print()
    print(text)
    return text
