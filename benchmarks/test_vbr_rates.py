"""Bench: Section 2.3's generalized SFQ (eq. 36) — per-packet rate
allocation for VBR, with the rate-function admission test."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.vbr_rates import run_vbr_rates


def test_vbr_rates(benchmark):
    result = benchmark.pedantic(run_vbr_rates, rounds=1, iterations=1)
    assert result.data["admission"]
    assert result.data["worst_slack"] >= -1e-9
    assert result.data["n_high"] > 0 and result.data["n_low"] > 0
    save_result(result)
