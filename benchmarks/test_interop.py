"""Bench: Section 2.4 — heterogeneous schedulers (SFQ, Virtual Clock,
SCFQ) interoperate under the composed Corollary 1 bound."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.interop import run_interop


def test_interop(benchmark):
    result = benchmark.pedantic(run_interop, rounds=1, iterations=1)
    assert result.data["checked"] > 100
    assert result.data["worst_slack"] >= -1e-9
    save_result(result)
