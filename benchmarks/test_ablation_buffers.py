"""Ablation benches: buffer policy (drop-tail vs longest-queue-drop)
and work conservation (Delay EDD vs Jitter EDD).

Neither knob is in the paper's evaluation, but both are the classic
companions of fair queueing deployments: Demers et al. pair FQ with
longest-queue dropping, and the paper's Appendix B contrasts FA's
complexity with non-work-conserving Jitter EDD. The benches quantify
what each choice costs.
"""

from __future__ import annotations

import pytest

from conftest import save_result
from repro.analysis.stats import mean
from repro.core import Packet, make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link
from repro.simulation import Simulator
from repro.traffic import CBRSource


# ----------------------------------------------------------------------
# Drop-tail vs LQD under a buffer hog
# ----------------------------------------------------------------------
def _run_buffer_policy(policy: str):
    sim = Simulator()
    sfq = make_scheduler("SFQ", auto_register=False)
    sfq.add_flow("hog", 1000.0)
    sfq.add_flow("meek", 1000.0)
    link = Link(
        sim, sfq, ConstantCapacity(2000.0), buffer_packets=8, drop_policy=policy
    )
    # The hog dumps bursts far beyond its share; meek is a polite CBR.
    for k in range(40):
        sim.at(k * 1.0, lambda k=k: [
            link.send(Packet("hog", 200, seqno=k * 50 + i)) for i in range(20)
        ])
    CBRSource(
        sim, "meek", link.send, rate=800.0, packet_length=200, stop_time=40.0
    ).start()
    sim.run(until=45.0)
    delivered = len(link.tracer.departed("meek"))
    offered = delivered + len(link.tracer.dropped("meek"))
    return delivered / max(offered, 1), link


def test_ablation_buffer_policy(benchmark):
    def run():
        tail_ratio, _l1 = _run_buffer_policy("drop_tail")
        lqd_ratio, _l2 = _run_buffer_policy("longest_queue")
        return tail_ratio, lqd_ratio

    tail_ratio, lqd_ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="Ablation: buffer policy",
        description=(
            "Delivery ratio of a polite CBR flow sharing an 8-packet "
            "buffer with a bursting hog, drop-tail vs longest-queue-drop."
        ),
        headers=["policy", "meek delivery ratio"],
    )
    result.add_row("drop-tail", tail_ratio)
    result.add_row("longest-queue-drop", lqd_ratio)
    result.note("LQD makes the buffer fair the way SFQ makes the link fair")
    assert lqd_ratio > tail_ratio
    assert lqd_ratio > 0.95
    save_result(result)


# ----------------------------------------------------------------------
# Work conservation: Delay EDD vs Jitter EDD
# ----------------------------------------------------------------------
def _run_edd(work_conserving: bool):
    sim = Simulator()
    if work_conserving:
        edd = make_scheduler("DelayEDD", auto_register=False)
    else:
        edd = make_scheduler("JitterEDD", auto_register=False)
    edd.add_flow_with_deadline("rt", rate=500.0, deadline=1.0)
    edd.add_flow_with_deadline("bulk", rate=1500.0, deadline=4.0)
    link = Link(sim, edd, ConstantCapacity(2000.0))
    # rt: bursty but within its reservation on average.
    for k in range(20):
        sim.at(k * 2.0, lambda k=k: [
            link.send(Packet("rt", 200, seqno=k * 5 + i)) for i in range(5)
        ])
    # bulk: greedy backlog.
    sim.at(0.0, lambda: [link.send(Packet("bulk", 200, seqno=i)) for i in range(350)])
    sim.run(until=60.0)
    bulk_done = link.tracer.work_in_interval("bulk", 0, 40.0)
    rt_delays = link.tracer.delays("rt")
    return bulk_done, mean(rt_delays), max(rt_delays)


def test_ablation_work_conservation(benchmark):
    def run():
        return _run_edd(True), _run_edd(False)

    (wc_bulk, wc_mean, wc_max), (nwc_bulk, nwc_mean, nwc_max) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    result = ExperimentResult(
        experiment="Ablation: work conservation (Delay EDD vs Jitter EDD)",
        description=(
            "Same workload under work-conserving Delay EDD and "
            "non-work-conserving Jitter EDD: held bandwidth is lost to "
            "the bulk flow; jitter removal smooths the realtime flow."
        ),
        headers=["discipline", "bulk bits by t=40s", "rt mean delay (s)", "rt max delay (s)"],
    )
    result.add_row("Delay EDD (work conserving)", wc_bulk, wc_mean, wc_max)
    result.add_row("Jitter EDD (rate controlled)", nwc_bulk, nwc_mean, nwc_max)
    result.note("the paper's SFQ is deliberately work conserving: idle "
                "bandwidth goes to whoever can use it")
    # Work conservation moves the bulk flow strictly ahead.
    assert wc_bulk >= nwc_bulk
    save_result(result)
