"""Bench: regenerate Figure 2(b) — average delay of low-throughput
Poisson flows under WFQ vs SFQ across utilizations.

The paper simulated 1000 s per point; we default to 150 s per point so
the full 9-point, 2-scheduler sweep stays in benchmark budget (pass a
longer duration to `run_figure2b` to reproduce the paper's horizon — the
comparative shape is unchanged).
"""

from __future__ import annotations

from conftest import save_result
from repro.experiments.figure2b import run_figure2b


def test_figure2b_avg_delay(benchmark):
    result = benchmark.pedantic(
        run_figure2b,
        kwargs={"n_low_values": range(2, 11, 2), "duration": 150.0},
        rounds=1,
        iterations=1,
    )
    points = result.data["points"]
    # WFQ's average delay for the 32 Kb/s flows exceeds SFQ's at every
    # non-overloaded utilization (the paper: +53% at 80.81%).
    for wfq_point, sfq_point in zip(points["WFQ"], points["SFQ"]):
        if wfq_point.utilization < 1.0:
            assert wfq_point.avg_delay_low > sfq_point.avg_delay_low
    # At ~82.8% utilization the excess is large (paper: 53% at 80.81%).
    mid = [p for p in points["WFQ"] if abs(p.utilization - 0.828) < 1e-6][0]
    mid_sfq = [p for p in points["SFQ"] if abs(p.utilization - 0.828) < 1e-6][0]
    assert mid.avg_delay_low / mid_sfq.avg_delay_low - 1 > 0.25
    save_result(result)
