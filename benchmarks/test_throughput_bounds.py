"""Bench: Theorems 2/3 — SFQ throughput guarantees on FC/EBF servers."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.throughput_bounds import run_throughput_bounds


def test_throughput_bounds(benchmark):
    result = benchmark.pedantic(run_throughput_bounds, rounds=1, iterations=1)
    for server, worst in result.data["worst_slack"].items():
        for flow, slack in worst.items():
            assert slack >= -1e-9, f"eq. 22 violated on {server} for {flow}"
    save_result(result)
