"""Bench: robustness of the two headline simulation results to the
parameters the paper left unstated (TCP buffer depth, RNG seed)."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.robustness import (
    run_figure1_robustness,
    run_figure2b_robustness,
)


def test_figure1_shape_robust(benchmark):
    result = benchmark.pedantic(
        run_figure1_robustness,
        kwargs={"buffers": (200, 240, 320), "seeds": (1, 2, 3)},
        rounds=1,
        iterations=1,
    )
    points = result.data["points"]
    # The qualitative claim at EVERY point of the standing-queue regime:
    for p in points:
        assert p["wfq_ratio"] > 1.3, p        # WFQ favors the incumbent
        assert 0.7 < p["sfq_ratio"] < 1.4, p  # SFQ shares near-evenly
        assert p["sfq_435"] > p["wfq_435"], p  # SFQ ramps src3 faster
        assert p["sfq_435"] >= 140, p
    # WFQ's starvation deepens with the buffer; SFQ is insensitive.
    by_buffer = {}
    for p in points:
        by_buffer.setdefault(p["buffer"], []).append(p)
    wfq_means = {
        b: sum(x["wfq_ratio"] for x in ps) / len(ps)
        for b, ps in by_buffer.items()
    }
    buffers = sorted(wfq_means)
    assert wfq_means[buffers[-1]] > 2 * wfq_means[buffers[0]]
    save_result(result)


def test_figure2b_excess_robust(benchmark):
    result = benchmark.pedantic(
        run_figure2b_robustness,
        kwargs={"seeds": (11, 12, 13), "duration": 100.0},
        rounds=1,
        iterations=1,
    )
    assert result.data["mean"] > 0.25  # paper: +53%; shape needs >> 0
    assert min(result.data["values"]) > 0.10
    save_result(result)
