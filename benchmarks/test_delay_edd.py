"""Bench: Theorem 7 — Delay EDD guarantees on FC servers and inside an
SFQ hierarchy (separation of delay and throughput)."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.delay_edd_exp import run_delay_edd


def test_delay_edd(benchmark):
    result = benchmark.pedantic(run_delay_edd, rounds=1, iterations=1)
    assert result.data["schedulable"]  # eq. 67
    for server, checks in result.data["checks"].items():
        for flow, slack in checks.items():
            assert slack >= -1e-9, f"eq. 68 violated on {server} for {flow}"
    save_result(result)
