"""Bench: deterministic complexity accounting — WFQ's fluid-GPS work
vs SFQ's O(1) self-clocking (Sections 1.2 / 2 / 2.5)."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.complexity import run_complexity


def test_complexity_accounting(benchmark):
    result = benchmark.pedantic(
        run_complexity, kwargs={"flow_counts": (4, 16, 64, 256)},
        rounds=1, iterations=1,
    )
    worst = result.data["worst"]
    amortized = result.data["amortized"]
    # Worst single v(t) advance is linear in the flow population...
    assert worst[256] == 257
    assert worst[64] == 65
    # ...while the amortized cost stays O(1).
    assert max(amortized.values()) < 2.0
    save_result(result)
