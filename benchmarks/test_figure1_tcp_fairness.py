"""Bench: regenerate Figure 1(b) — TCP fairness over a variable-rate
server (priority VBR video + two TCP Reno flows, WFQ vs SFQ)."""

from __future__ import annotations

import pytest

from conftest import save_result
from repro.experiments.figure1 import run_figure1


def test_figure1_tcp_fairness(benchmark):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    wfq = result.data["runs"]["WFQ"]
    sfq = result.data["runs"]["SFQ"]
    # Paper: WFQ starves src3 (2 packets in its first 435 ms)...
    assert wfq.src3_first_435ms <= 15
    assert wfq.src2_last_half > 3 * wfq.src3_last_half
    # ...while SFQ shares almost exactly (189 vs 190 packets).
    assert sfq.src3_first_435ms >= 80
    assert sfq.src3_last_half == pytest.approx(sfq.src2_last_half, rel=0.15)
    save_result(result)
