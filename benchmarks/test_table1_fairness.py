"""Bench: regenerate Table 1 (fairness of all algorithms)."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.table1 import run_table1


def test_table1_fairness(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    rows = result.data["rows"]
    bound = result.data["sfq_bound"]
    # Theorem 1 for the start-time/self-clocked algorithms.
    assert rows["SFQ"]["const"] <= bound + 1e-9
    assert rows["SFQ"]["variable"] <= bound + 1e-9
    assert rows["SCFQ"]["variable"] <= bound + 1e-9
    # Table 1's qualitative rows.
    assert rows["WFQ"]["variable"] > 2 * bound  # unfair on variable rate
    assert rows["FQS"]["variable"] > 2 * bound
    assert (
        rows["DRR (quantum=16xlmax)"]["const"]
        > 4 * rows["DRR (quantum=1xlmax)"]["const"]
    )  # unbounded with quantum
    save_result(result)
