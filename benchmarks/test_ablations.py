"""Ablation benches for the design choices called out in DESIGN.md §4.

* SFQ tie-breaking rule (Section 2.3): FIFO vs lowest-weight-first —
  the delay *guarantee* is rule-independent, but favoring low-weight
  flows reduces their average delay.
* WFQ's assumed capacity: correct vs mis-specified (Example 2's knob).
* Hierarchy depth: the eq. 65 recursion grows the delay bound per level.
"""

from __future__ import annotations

import pytest

from conftest import save_result
from repro.analysis.delay_bounds import hierarchical_fc_params, sfq_delay_bound
from repro.analysis.fairness import empirical_fairness_measure
from repro.analysis.stats import mean
from repro.core import HierarchicalScheduler, Packet, TieBreak, make_scheduler
from repro.experiments.harness import ExperimentResult
from repro.servers import ConstantCapacity, Link, TwoRateSquareWave
from repro.simulation import Simulator


# ----------------------------------------------------------------------
# Tie-break ablation
# ----------------------------------------------------------------------
def _run_tiebreak(rule):
    sim = Simulator()
    sched = make_scheduler("SFQ", tie_break=rule, auto_register=False)
    sched.add_flow("light", 50.0)
    for i in range(9):
        sched.add_flow(f"heavy{i}", 100.0)
    link = Link(sim, sched, ConstantCapacity(1000.0))

    def burst(t):
        # Everyone becomes backlogged at once -> equal start tags ->
        # ties. The light flow arrives last, so FIFO tie-breaking puts
        # it at the back of the burst.
        for i in range(9):
            link.send(Packet(f"heavy{i}", 100, seqno=int(t)))
        link.send(Packet("light", 100, seqno=int(t)))

    for k in range(40):
        sim.at(k * 1.1, burst, k * 1.1)
    sim.run()
    return mean(link.tracer.delays("light"))


def test_ablation_tiebreak(benchmark):
    def run():
        fifo_delay = _run_tiebreak(TieBreak.fifo)
        favored_delay = _run_tiebreak(TieBreak.lowest_weight_first)
        return fifo_delay, favored_delay

    fifo_delay, favored_delay = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="Ablation: SFQ tie-breaking",
        description="Mean delay (s) of a tagged flow under synchronized "
        "bursts (maximal ties), per Section 2.3's discussion.",
        headers=["rule", "tagged-flow mean delay (s)"],
    )
    result.add_row("FIFO ties", fifo_delay)
    result.add_row("lowest-weight-first", favored_delay)
    assert favored_delay < fifo_delay
    save_result(result)


# ----------------------------------------------------------------------
# WFQ assumed-capacity ablation
# ----------------------------------------------------------------------
def _run_wfq_capacity(assumed: float) -> float:
    capacity = TwoRateSquareWave(2000.0, 5.0, 0.0, 5.0)  # mean 1000
    sim = Simulator()
    sched = make_scheduler("WFQ", capacity=assumed, auto_register=False)
    sched.add_flow("f", 500.0)
    sched.add_flow("m", 500.0)
    link = Link(sim, sched, capacity)
    sim.at(0.0, lambda: [link.send(Packet("f", 200, seqno=i)) for i in range(200)])
    sim.at(5.0, lambda: [link.send(Packet("m", 200, seqno=i)) for i in range(150)])
    sim.run()
    return empirical_fairness_measure(link.tracer, "f", "m", 500.0, 500.0)


def test_ablation_wfq_capacity(benchmark):
    sweep = [500.0, 1000.0, 2000.0, 4000.0]

    def run():
        return {assumed: _run_wfq_capacity(assumed) for assumed in sweep}

    measures = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="Ablation: WFQ assumed capacity",
        description="Empirical H(f,m) (s) on a square-wave server with "
        "mean rate 1000 b/s, as WFQ's assumed capacity varies "
        "(Example 2's mechanism; SFQ's bound here is 0.8 s).",
        headers=["assumed capacity (b/s)", "empirical H (s)"],
    )
    for assumed, h in measures.items():
        result.add_row(f"{assumed:g}", h)
    # Overestimating the (fluctuating) capacity degrades fairness
    # substantially relative to the SFQ bound.
    sfq_bound = 200 / 500.0 + 200 / 500.0
    assert measures[4000.0] > 2 * sfq_bound
    save_result(result)


# ----------------------------------------------------------------------
# Hierarchy depth ablation
# ----------------------------------------------------------------------
def _nested_tree(depth: int):
    hs = HierarchicalScheduler()
    parent = "root"
    for level in range(depth):
        hs.add_class(parent, f"inner{level}", weight=1.0)
        hs.add_class(parent, f"side{level}", weight=1.0)
        hs.attach_flow(f"cross{level}", f"side{level}", weight=1.0)
        parent = f"inner{level}"
    hs.attach_flow("tagged", parent, weight=1.0)
    return hs


def _run_depth(depth: int) -> float:
    sim = Simulator()
    hs = _nested_tree(depth)
    link = Link(sim, hs, ConstantCapacity(1000.0))
    sim.at(0.0, lambda: [link.send(Packet("tagged", 100, seqno=i)) for i in range(50)])
    for level in range(depth):
        sim.at(
            0.0,
            lambda lv: [
                link.send(Packet(f"cross{lv}", 100, seqno=i)) for i in range(400)
            ],
            level,
        )
    sim.run()
    return max(link.tracer.delays("tagged"))


def test_ablation_hierarchy_depth(benchmark):
    depths = [1, 2, 3, 4]

    def run():
        return {d: _run_depth(d) for d in depths}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    result = ExperimentResult(
        experiment="Ablation: hierarchy depth",
        description="Max delay (s) of a flow nested d levels deep, with "
        "greedy cross traffic at every level, vs the eq. 65-recursed "
        "Theorem 4 bound.",
        headers=["depth", "measured max delay (s)", "recursed bound (s)"],
    )
    capacity, packet = 1000.0, 100
    for depth in depths:
        # Recurse eq. 65: each level halves the rate and adds burstiness.
        rate, delta = capacity, 0.0
        for _level in range(depth):
            rate, delta = hierarchical_fc_params(rate / 2, 2 * packet, rate, delta, packet)
        bound = sfq_delay_bound(0.0, packet, packet, rate, delta) + 50 * packet / rate
        result.add_row(depth, measured[depth], bound)
        assert measured[depth] <= bound + 1e-9
    # Deeper nesting costs delay.
    assert measured[4] > measured[1]
    save_result(result)
