"""Bench: Section 3, eq. 69-73 — delay shifting via partitioning."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.delay_shifting import run_delay_shifting


def test_delay_shifting(benchmark):
    result = benchmark.pedantic(run_delay_shifting, rounds=1, iterations=1)
    assert result.data["condition"]  # eq. 73 predicts a shift
    assert result.data["part_bound"] < result.data["flat_bound"]
    measured = result.data["measured"]
    assert measured["part_fast"] < measured["flat_fast"]  # favored gain
    assert measured["part_slow"] >= measured["flat_slow"]  # others pay
    save_result(result)
