"""Bench: campaign runner — multiprocess fan-out with a content-addressed
cache. Asserts the two properties the runner sells: a warm re-run is
served entirely from the cache with bit-identical summaries, and a
parallel run renders identically to a serial one."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.campaign import run_campaign
from repro.experiments.harness import ExperimentResult

NAMES = ["table1", "example1", "example2"]


def test_campaign_cold_then_warm(benchmark, tmp_path):
    cold = benchmark.pedantic(
        run_campaign,
        args=(NAMES,),
        kwargs={"seeds": 2, "jobs": 1, "results_dir": str(tmp_path)},
        rounds=1,
        iterations=1,
    )
    assert cold.stats["failed"] == 0
    assert cold.stats["cached"] == 0

    warm = run_campaign(NAMES, seeds=2, jobs=1, results_dir=str(tmp_path))
    assert warm.stats["cached"] == warm.stats["shards"]
    assert [s.render() for s in warm.summaries.values()] == [
        s.render() for s in cold.summaries.values()
    ]

    # Archive under a campaign-specific slug — the per-experiment
    # benchmarks own results/<experiment>.txt, and a seeds=2 aggregate
    # must not clobber their single-seed artifacts.
    combined = ExperimentResult(
        experiment="campaign runner smoke",
        description=(
            "cold-vs-warm campaign over "
            + ", ".join(NAMES)
            + " (seeds=2); warm run served entirely from the cache"
        ),
        headers=["run", "shards", "ok", "cached"],
    )
    for label, stats in (("cold", cold.stats), ("warm", warm.stats)):
        combined.add_row(label, stats["shards"], stats["ok"], stats["cached"])
    save_result(combined)


def test_campaign_parallel_matches_serial(tmp_path):
    serial = run_campaign(NAMES, seeds=2, jobs=1, cache=False)
    parallel = run_campaign(NAMES, seeds=2, jobs=2, cache=False)
    assert [s.render() for s in serial.summaries.values()] == [
        s.render() for s in parallel.summaries.values()
    ]
