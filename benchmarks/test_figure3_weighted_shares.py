"""Bench: regenerate Figure 3(b) — weighted shares (1:2:3) on a
fluctuating-capacity interface as connections terminate."""

from __future__ import annotations

import pytest

from conftest import save_result
from repro.experiments.figure3 import run_figure3


def test_figure3_weighted_shares(benchmark):
    result = benchmark.pedantic(
        run_figure3, kwargs={"packets_per_connection": 3000}, rounds=1, iterations=1
    )
    p1 = result.data["phases"]["p1"]
    assert p1["w2"] / p1["w1"] == pytest.approx(2.0, rel=0.05)
    assert p1["w3"] / p1["w1"] == pytest.approx(3.0, rel=0.05)
    p2 = result.data["phases"]["p2"]
    assert p2["w3"] == 0
    assert p2["w2"] / p2["w1"] == pytest.approx(2.0, rel=0.05)
    p3 = result.data["phases"]["p3"]
    assert p3["w1"] > 0 and p3["w2"] == 0 and p3["w3"] == 0
    save_result(result)
