"""Bench: Corollary 1 — end-to-end delay over K SFQ hops."""

from __future__ import annotations

import pytest

from conftest import save_result
from repro.experiments.end_to_end_exp import run_end_to_end


def test_end_to_end_delay(benchmark):
    result = benchmark.pedantic(
        run_end_to_end, kwargs={"max_hops": 5, "horizon": 8.0}, rounds=1, iterations=1
    )
    per_k = result.data["per_k"]
    for k, row in per_k.items():
        assert row["worst_slack"] >= -1e-9, f"Corollary 1 violated at K={k}"
    # The SCFQ-SFQ bound gap grows linearly with K (paper: 24.4 ms ->
    # 122 ms at K=5 in the 100 Mb/s example).
    assert per_k[5]["scfq_gap"] == pytest.approx(5 * per_k[1]["scfq_gap"])
    # Measured worst delay grows with hop count.
    assert per_k[5]["max_delay"] > per_k[1]["max_delay"]
    save_result(result)
