"""Bench: Theorem 1 under self-similar (Pareto) traffic on a
Gilbert-Elliott outage link — the fairness bound is distribution-free."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.stress import run_stress


def test_stress_offdistribution(benchmark):
    result = benchmark.pedantic(run_stress, rounds=1, iterations=1)
    measures = result.data["measures"]
    bound = result.data["bound"]
    assert measures["SFQ"] <= bound + 1e-9
    assert measures["WFQ (assumed mean rate)"] > 2 * bound
    save_result(result)
