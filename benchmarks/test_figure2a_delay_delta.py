"""Bench: regenerate Figure 2(a) — reduction in max delay, SFQ vs WFQ."""

from __future__ import annotations

import pytest

from conftest import save_result
from repro.experiments.figure2a import run_figure2a


def test_figure2a_delay_delta(benchmark):
    result = benchmark.pedantic(run_figure2a, rounds=1, iterations=1)
    series = result.data["series"]
    # Low-throughput flows gain under SFQ; crowded high-rate flows lose.
    assert all(series[q][0] > 0 for q in series)  # 16 Kb/s always gains
    assert series[400][-1] < 0  # 1 Mb/s with 400 flows loses
    # Paper's mixed example: 64 Kb/s flows gain ~20.39 ms, 1 Mb/s flows
    # lose ~2.48 ms (we compute 20.70/2.70 from eq. 58 exactly).
    assert result.data["audio_delta"] == pytest.approx(0.0204, rel=0.05)
    assert -result.data["video_delta"] == pytest.approx(0.0025, rel=0.15)
    save_result(result)
