"""Bench: Theorems 4/5 + eq. 56-57 — per-packet delay bounds and the
SFQ-vs-SCFQ maximum-delay comparison."""

from __future__ import annotations

import pytest

from conftest import save_result
from repro.experiments.delay_bounds_exp import run_delay_bounds


def test_delay_bounds(benchmark):
    result = benchmark.pedantic(run_delay_bounds, rounds=1, iterations=1)
    checks = result.data["checks"]
    for server, per_sched in checks.items():
        for sched, flows in per_sched.items():
            for flow, (slack, _maxd) in flows.items():
                assert slack >= -1e-9, (server, sched, flow)
    # SFQ's slow-flow max delay beats SCFQ's on the constant server,
    # realizing the eq. 57 gap.
    const = checks["constant"]
    assert const["SFQ"]["slow"][1] < const["SCFQ"]["slow"][1]
    # Paper's 100 Mb/s worked example: ~24.4 ms (exact eq. 57: 24.98 ms).
    assert result.data["paper_example_gap"] == pytest.approx(0.02498, rel=1e-3)
    save_result(result)
