"""Bench: Theorem 5 — the statistical delay guarantee on EBF servers."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.ebf_delay import run_ebf_delay


def test_ebf_delay_tail(benchmark):
    result = benchmark.pedantic(run_ebf_delay, rounds=1, iterations=1)
    measured = result.data["measured"]
    envelope = result.data["envelope"]
    for gamma, p in measured.items():
        assert p <= envelope[gamma] + 1e-9, (gamma, p, envelope[gamma])
    # The violation probability actually decays (not vacuously zero).
    gammas = sorted(measured)
    assert measured[gammas[0]] > 0
    assert measured[gammas[-1]] < measured[gammas[0]]
    save_result(result)
