"""Bench: Section 3 / Example 3 — hierarchical link sharing phases and
the recursive (eq. 65) throughput guarantee."""

from __future__ import annotations

import pytest

from conftest import save_result
from repro.experiments.link_sharing_exp import run_link_sharing


def test_hierarchical_sharing(benchmark):
    result = benchmark.pedantic(run_link_sharing, rounds=1, iterations=1)
    p1, p2, p3 = result.data["phases"]
    # Phase 1: C takes A's half; D idle; B takes its half.
    assert p1["fc"] == pytest.approx(p1["fb"], rel=0.05)
    assert p1["fd"] == 0
    # Phase 2: C == D == link/4 each; B == link/2.
    assert p2["fc"] == pytest.approx(p2["fd"], rel=0.1)
    assert p2["fb"] == pytest.approx(p2["fc"] + p2["fd"], rel=0.1)
    # Phase 3: B idle; C == D == link/2.
    assert p3["fb"] == 0
    assert p3["fc"] == pytest.approx(p3["fd"], rel=0.05)
    # Recursive Theorem 2 through eq. 65.
    assert result.data["recursive_measured"] >= result.data["recursive_floor"]
    save_result(result)
