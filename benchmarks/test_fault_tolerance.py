"""Bench: fault tolerance — SFQ re-converges to fair shares after a
link outage (Theorem 1 holds online); WFQ's stale GPS virtual time
starves the late joiner. Faulted runs are seed-deterministic."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.fault_tolerance import (
    run_fault_tolerance,
    run_outage_scenario,
)


def test_fault_tolerance(benchmark):
    result = benchmark.pedantic(
        run_fault_tolerance, kwargs={"seed": 1}, rounds=1, iterations=1
    )
    scenarios = result.data["scenarios"]
    sfq, wfq = scenarios["SFQ"], scenarios["WFQ"]

    # SFQ: the late joiner gets its full fair share right after recovery
    # and over the whole recovery window; the online Theorem-1 monitor
    # never fires.
    assert sfq["late_share"]["recovery 1st s"] > 0.85
    assert sfq["late_share"]["recovery"] > 0.9
    assert sfq["fairness_violations"] == 0

    # WFQ: virtual time raced ahead during the outage, so the late
    # joiner is starved behind stale low tags — visibly in the first
    # second after recovery, and the monitor catches the bound breaking.
    assert wfq["late_share"]["recovery 1st s"] < 0.75
    assert wfq["fairness_violations"] > 0
    assert wfq["late_share"]["recovery 1st s"] < sfq["late_share"]["recovery 1st s"]

    # Both runs conserve packets through pause/replay and never hit the
    # event budget.
    for scenario in (sfq, wfq):
        assert scenario["conservation_ok"]
        assert scenario["info"]["truncated"] is False
        assert scenario["info"]["outages"] == 1

    # Churn + flapping outage on SFQ: every monitor stays clean.
    assert result.data["churn_violations"] == []
    assert result.data["churn"]["joins"] > 0
    assert result.data["churn"]["leaves"] > 0
    assert result.data["churn"]["truncated"] is False

    save_result(result)


def test_faulted_run_is_deterministic():
    """Same seed + same outage schedule => identical packet traces."""
    _, _, info_a = run_outage_scenario("SFQ", seed=7)
    _, _, info_b = run_outage_scenario("SFQ", seed=7)
    assert info_a["receive_series"] == info_b["receive_series"]
    assert info_a["transmitted"] == info_b["transmitted"]

    _, _, info_c = run_outage_scenario("SFQ", seed=8)
    assert info_c["receive_series"] != info_a["receive_series"]
