"""Bench: raw event-engine throughput.

Not a paper artifact, but the number that decides whether laptop-scale
reproduction of the paper's 1000-second simulations is practical: how
many events per second the heapq loop sustains, and how event cost
scales with heap population.
"""

from __future__ import annotations

import pytest

from repro.simulation import Simulator


@pytest.mark.parametrize("pending", [16, 4096])
def test_event_dispatch_cost(benchmark, pending):
    """Cost of one schedule+fire cycle with `pending` events queued."""
    sim = Simulator()
    clock = [0.0]
    for i in range(pending):
        sim.at(1e12 + i, lambda: None)  # far-future ballast

    def cycle():
        clock[0] += 1.0
        sim.at(clock[0], lambda: None)
        sim.run(until=clock[0])

    benchmark.group = "engine: schedule+fire"
    benchmark(cycle)


def test_end_to_end_simulation_rate(benchmark):
    """Packets per wall-second through a full SFQ link pipeline."""
    from repro.core import SFQ, Packet
    from repro.servers import ConstantCapacity, Link

    def run_chunk():
        sim = Simulator()
        sched = SFQ(auto_register=False)
        for i in range(8):
            sched.add_flow(f"f{i}", 1000.0)
        link = Link(sim, sched, ConstantCapacity(8000.0))
        for i in range(8):
            for s in range(125):
                sim.at(0.0, lambda fl, q: link.send(Packet(fl, 100, seqno=q)), f"f{i}", s)
        sim.run()
        assert link.packets_transmitted == 1000

    benchmark.group = "engine: full pipeline"
    benchmark(run_chunk)
