"""Bench: raw event-engine throughput, seed vs optimized.

Not a paper artifact, but the number that decides whether laptop-scale
reproduction of the paper's 1000-second simulations is practical: how
many events per second the loop sustains, and how event cost scales
with heap population.

Two kinds of test live here:

* pytest-benchmark microbenchmarks (timing tables for humans);
* hard comparative gates against the frozen seed implementations under
  ``tests/reference/`` — the optimized engine must dispatch >=1.5x
  faster than the seed at 4096 pending events, and the end-to-end SFQ
  pipeline must push >=1.5x the packets/wall-second with tracing
  disabled. The gates are skipped under ``--benchmark-disable`` (CI
  smoke mode: exercise the code, don't trust a shared runner's clock).
"""

from __future__ import annotations

import pytest

from repro.experiments.bench import bench_dispatch, bench_pipeline
from repro.simulation import NullTracer, Simulator


def _timing_gated(request) -> None:
    if request.config.getoption("benchmark_disable"):
        pytest.skip("timing assertions disabled in smoke mode")


@pytest.mark.parametrize("pending", [16, 4096])
def test_event_dispatch_cost(benchmark, pending):
    """Cost of one schedule+fire cycle with `pending` events queued."""
    sim = Simulator()
    clock = [0.0]
    for i in range(pending):
        sim.at(1e12 + i, lambda: None)  # far-future ballast

    def cycle():
        clock[0] += 1.0
        sim.call_at(clock[0], lambda: None)
        sim.run(until=clock[0])

    benchmark.group = "engine: schedule+fire"
    benchmark(cycle)


def test_end_to_end_simulation_rate(benchmark):
    """Packets per wall-second through a full SFQ link pipeline."""
    from repro.core import Packet, make_scheduler
    from repro.servers import ConstantCapacity, Link

    def run_chunk():
        sim = Simulator()
        sched = make_scheduler("SFQ", auto_register=False)
        for i in range(8):
            sched.add_flow(f"f{i}", 1000.0)
        link = Link(sim, sched, ConstantCapacity(8000.0), tracer=NullTracer())
        for i in range(8):
            for s in range(125):
                sim.call_at(0.0, link.send, Packet(f"f{i}", 100, seqno=s))
        sim.run()
        assert link.packets_transmitted == 1000

    benchmark.group = "engine: full pipeline"
    benchmark(run_chunk)


# ----------------------------------------------------------------------
# Comparative gates vs the frozen seed engine/core
# ----------------------------------------------------------------------
def test_dispatch_speedup_vs_seed(request):
    """Optimized dispatch >=1.5x the seed's at 4096 pending events.

    The fire-and-forget tuple path plus the hoisted run loop measure
    ~3x on an idle machine; 1.5x is the acceptance floor with margin
    for noisy runners.
    """
    _timing_gated(request)
    result = bench_dispatch(ops=20_000, repeats=3)
    speedup = result["pending=4096"]["speedup"]
    assert speedup >= 1.5, (
        f"engine dispatch at 4096 pending is only {speedup:.2f}x the seed "
        f"(floor 1.5x): {result}"
    )


def test_pipeline_speedup_vs_seed(request):
    """End-to-end SFQ link pipeline >=1.5x packets/wall-second with
    tracing disabled, against the seed engine + seed SFQ + seed
    always-on tracer."""
    _timing_gated(request)
    result = bench_pipeline(packets_per_flow=500, repeats=3)
    assert result["speedup"] >= 1.5, (
        f"SFQ pipeline is only {result['speedup']:.2f}x the seed "
        f"(floor 1.5x): {result}"
    )
