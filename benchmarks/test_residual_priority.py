"""Bench: Section 2.3 — the residual of a priority server is
FC(C - rho, sigma) and Theorem 4 applies to the low band."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.residual_exp import run_residual


def test_residual_priority(benchmark):
    result = benchmark.pedantic(run_residual, rounds=1, iterations=1)
    assert result.data["residual_delta"] <= result.data["sigma"] + 1e-6
    for flow, slack in result.data["worst_slack"].items():
        assert slack >= -1e-9, flow
    save_result(result)
