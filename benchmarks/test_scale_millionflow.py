"""Bench: hierarchical link-sharing at scale — per-packet cost stays
near-flat as the flow population grows 100x (the paper's O(log Q)
claim, §2.5, measured on the array backend), churn recycles slab slots,
and the departure schedule is backend-independent."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.scale import run_scale


def test_scale_flatness_and_churn(benchmark):
    # CI-sized sweep: 100x in flows, small packet budget. The committed
    # full-size numbers (10^3..10^6) live in BENCH_scale.json.
    result = benchmark.pedantic(
        run_scale,
        kwargs={"flows": [500, 50_000], "packets_target": 20_000,
                "churn_cycles": 100},
        rounds=1,
        iterations=1,
    )
    points = {p["flows"]: p for p in result.data["points"]}

    # O(log F): 100x the flows must not cost anywhere near 100x — allow
    # generous slack for shared-runner noise, the claim is "near-flat".
    assert result.data["flat_ratio"] < 3.0

    for p in points.values():
        # Every churned flow joined, drained, and detached; the churn
        # leaf's slab never grew past the anchor population.
        assert p["churn_joined"] == p["churn_detached"] == 100
        assert p["churn_slab_capacity"] is not None
        assert p["churn_slab_capacity"] <= 4
        assert p["packets"] > 0

    # The schedule is a pure function of (seed, params): the object
    # backend — a completely different data layout — reproduces the
    # departure digest bit-for-bit.
    ref = run_scale(flows=500, packets_target=20_000, churn_cycles=100,
                    backend="object")
    assert ref.data["points"][0]["digest"] == points[500]["digest"]

    save_result(result)
