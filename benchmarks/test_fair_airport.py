"""Bench: Appendix B — Fair Airport's Theorem 8 (fairness) and
Theorem 9 (WFQ-equivalent delay guarantee)."""

from __future__ import annotations

from conftest import save_result
from repro.experiments.fair_airport_exp import run_fair_airport


def test_fair_airport(benchmark):
    result = benchmark.pedantic(run_fair_airport, rounds=1, iterations=1)
    for server, case in result.data["cases"].items():
        assert min(case["delays"].values()) >= -1e-6, server  # Theorem 9
        for pair, (measured, bound) in case["fairness"].items():
            assert measured <= bound + 1e-9, (server, pair)  # Theorem 8
    assert result.data["cases"]["variable >= C"]["asq"] > 0
    save_result(result)
