"""Bench: regenerate Examples 1 and 2 (WFQ's fairness weaknesses)."""

from __future__ import annotations

import pytest

from conftest import save_result
from repro.experiments.examples_1_2 import run_example1, run_example2


def test_example1_wfq_factor_two(benchmark):
    result = benchmark.pedantic(run_example1, rounds=1, iterations=1)
    assert result.data["gap"] == pytest.approx(2 * result.data["lower_bound"])
    save_result(result)


def test_example2_wfq_variable_rate_unfairness(benchmark):
    result = benchmark.pedantic(
        run_example2, kwargs={"c": 10.0}, rounds=1, iterations=1
    )
    wfq_f, wfq_m = result.data["counts"]["WFQ"]
    sfq_f, sfq_m = result.data["counts"]["SFQ"]
    assert wfq_f >= 9 and wfq_m <= 1  # paper: C-1 <= W_f, W_m <= 1
    assert abs(sfq_f - sfq_m) <= 1
    save_result(result)
