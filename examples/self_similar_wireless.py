#!/usr/bin/env python3
"""SFQ off-distribution: self-similar traffic on a bursty wireless link.

Theorem 1's fairness proof never looks at the traffic or the server —
only at the tags. This example takes that seriously: heavy-tailed
Pareto on-off sources (the self-similar regime of 1990s traffic
measurement) share a Gilbert-Elliott link that suffers total outages,
and SFQ's normalized-service gap still respects the Theorem 1 bound
while WFQ — which must assume some fixed capacity — blows through it.

Run:  python examples/self_similar_wireless.py
"""

import random

from repro import GilbertElliottCapacity, Link, Packet, Simulator, make_scheduler
from repro.analysis import empirical_fairness_measure, sfq_fairness_bound
from repro.traffic import ParetoOnOffSource

MEAN_RATE = 50_000.0
PACKET = 500
HORIZON = 60.0


def run(name, make_sched, seed=13):
    sim = Simulator()
    sched = make_sched()
    sched.add_flow("video", 2.0)
    sched.add_flow("data", 1.0)
    link = Link(
        sim,
        sched,
        GilbertElliottCapacity(
            good_rate=2 * MEAN_RATE,
            bad_rate=0.0,
            p_gb=0.08,
            p_bg=0.08,
            slot=0.01,
            rng=random.Random(seed),
        ),
    )
    # A greedy flow and a heavy-tailed bursty flow.
    n = int(HORIZON * MEAN_RATE / PACKET)
    sim.at(0.0, lambda: [link.send(Packet("video", PACKET, seqno=i)) for i in range(n)])
    ParetoOnOffSource(
        sim, "data", link.send, peak_rate=MEAN_RATE, packet_length=PACKET,
        rng=random.Random(seed + 1), alpha=1.4, min_on=0.1, min_off=0.1,
        stop_time=HORIZON / 2,
    ).start()
    sim.at(HORIZON / 2, lambda: [
        link.send(Packet("data", PACKET, seqno=5000 + i)) for i in range(n // 2)
    ])
    sim.run(until=HORIZON)
    return empirical_fairness_measure(link.tracer, "video", "data", 2.0, 1.0, max_epochs=600)


bound = sfq_fairness_bound(PACKET, 2.0, PACKET, 1.0)
print("=== Theorem 1 on a Gilbert-Elliott outage link, Pareto traffic ===\n")
print(f"Theorem 1 bound for SFQ (any server, any traffic): {bound:.0f} s\n")
print(f"{'scheduler':<28}{'empirical H(video,data)':>24}")
for name, make in (
    ("SFQ", lambda: make_scheduler("SFQ", auto_register=False)),
    ("WFQ (assumes mean rate)", lambda: make_scheduler("WFQ", capacity=MEAN_RATE, auto_register=False)),
):
    h = run(name, make)
    flag = "  <= bound" if h <= bound else "  VIOLATES the SFQ bound"
    print(f"{name:<28}{h:>22.0f} s{flag}")

print(
    "\nWFQ is not *wrong* — no constant capacity is correct for a link "
    "that is\nsometimes dark. SFQ's self-clocking (v = start tag in "
    "service) needs no\ncapacity estimate at all; that is the paper's "
    "central argument."
)
