#!/usr/bin/env python3
"""Hierarchical link sharing (paper Section 3).

Builds the link-sharing structure an ISP might configure on a 10 Mb/s
access link:

    root
    ├── realtime (40%)          <- Delay EDD leaf: deadline flows
    ├── business (40%)
    │   ├── video  (3)
    │   └── data   (1)
    └── besteffort (20%)

and demonstrates: (a) weighted sharing at every level, (b) isolation —
best-effort saturation cannot touch the business classes, (c) unused
bandwidth redistribution when the realtime class goes quiet, and
(d) separation of delay and throughput via the Delay EDD leaf.

Run:  python examples/link_sharing.py
"""

from repro import (
    ConstantCapacity,
    HierarchicalScheduler,
    Link,
    Packet,
    Simulator,
    make_scheduler,
    mbps,
)
from repro.analysis import delay_summary

LINK = mbps(10)
PACKET = 1000 * 8

sim = Simulator()
hs = HierarchicalScheduler()

edd = make_scheduler("DelayEDD", auto_register=False)
edd.add_flow_with_deadline("voip", rate=mbps(0.5), deadline=0.02)
edd.add_flow_with_deadline("gaming", rate=mbps(1.5), deadline=0.05)
hs.add_class("root", "realtime", weight=4.0, scheduler=edd)
hs.add_class("root", "business", weight=4.0)
hs.add_class("root", "besteffort", weight=2.0)
hs.add_class("business", "video", weight=3.0)
hs.add_class("business", "data", weight=1.0)
hs.attach_flow("voip", "realtime", weight=mbps(0.5))
hs.attach_flow("gaming", "realtime", weight=mbps(1.5))
hs.attach_flow("conf", "video", weight=1.0)
hs.attach_flow("erp", "data", weight=1.0)
hs.attach_flow("web", "besteffort", weight=1.0)

print("Link-sharing structure:")
print(hs.describe())
print()

link = Link(sim, hs, ConstantCapacity(LINK), name="access")


def cbr(flow, rate, stop, seq=0):
    def tick(seq=0):
        if sim.now < stop:
            link.send(Packet(flow, PACKET, seqno=seq))
            sim.after(PACKET / rate, tick, seq + 1)

    return tick


# Realtime flows run for the first 6 s only; everything else is greedy.
sim.at(0.0, cbr("voip", mbps(0.5), stop=6.0))
sim.at(0.0, cbr("gaming", mbps(1.5), stop=6.0))
for flow in ("conf", "erp", "web"):
    sim.at(0.0, lambda fl=flow: [link.send(Packet(fl, PACKET, seqno=i)) for i in range(12000)])
sim.run(until=12.0)


def mbps_in(flow, t1, t2):
    return link.tracer.work_in_interval(flow, t1, t2) / (t2 - t1) / 1e6


print("Throughput (Mb/s) while realtime is active [0s, 6s]:")
for flow in ("voip", "gaming", "conf", "erp", "web"):
    print(f"  {flow:<7} {mbps_in(flow, 0, 6):6.2f}")
print("\nThroughput (Mb/s) after realtime stops [6s, 12s]:")
for flow in ("conf", "erp", "web"):
    print(f"  {flow:<7} {mbps_in(flow, 6, 12):6.2f}")

print("\nRealtime delay (Delay EDD separates deadline from rate):")
for flow in ("voip", "gaming"):
    stats = delay_summary(link.tracer, flow)
    print(f"  {flow:<7} mean {stats['mean']*1e3:6.2f} ms   max {stats['max']*1e3:6.2f} ms")

print(
    "\nNotes: business video:data holds 3:1 at every load; when the "
    "realtime class\nidles, its 40% flows back to business and "
    "best-effort in 4:2 proportion —\nExample 3's redistribution, "
    "powered by SFQ's variable-rate fairness at each\ninterior node "
    "(eq. 65 makes every class an FC virtual server)."
)
