#!/usr/bin/env python3
"""Side-by-side comparison of every scheduler in the library.

One workload, seven disciplines: a low-throughput interactive flow, two
bulk flows with different weights, and an on-off burst flow share a
1 Mb/s link. For each discipline the script reports weighted-share
accuracy, the interactive flow's delay and delivery count, and the
empirical fairness measure — the paper's Table 1 axes, measured rather
than asserted. (For variable-rate servers, see the Table 1 benchmark
and examples/variable_rate_fairness.py.)

Run:  python examples/scheduler_comparison.py
"""

import random

from repro import (
    ConstantCapacity,
    Link,
    Packet,
    Simulator,
    kbps,
    make_scheduler,
)
from repro.analysis import delay_summary, empirical_fairness_measure
from repro.traffic import CBRSource, OnOffSource

CAPACITY = 1_000_000.0
WEIGHTS = {
    "interactive": kbps(50),
    "bulk_small": kbps(300),
    "bulk_big": kbps(600),
    "bursty": kbps(50),
}
PACKET = 500 * 8
HORIZON = 30.0

MAKERS = {
    "SFQ": lambda: make_scheduler("SFQ", auto_register=False),
    "SCFQ": lambda: make_scheduler("SCFQ", auto_register=False),
    "WFQ": lambda: make_scheduler("WFQ", capacity=CAPACITY, auto_register=False),
    "WF2Q": lambda: make_scheduler("WF2Q", capacity=CAPACITY, auto_register=False),
    "VirtualClock": lambda: make_scheduler("VirtualClock", auto_register=False),
    "DRR": lambda: make_scheduler("DRR", quantum_scale=PACKET / kbps(50), auto_register=False),
    "FairAirport": lambda: make_scheduler("FairAirport", auto_register=False),
    "FIFO": lambda: make_scheduler("FIFO", auto_register=False),
}


def run(name):
    sim = Simulator()
    sched = MAKERS[name]()
    for flow, weight in WEIGHTS.items():
        sched.add_flow(flow, weight)
    link = Link(sim, sched, ConstantCapacity(CAPACITY))
    CBRSource(
        sim, "interactive", link.send, rate=kbps(50), packet_length=PACKET,
        stop_time=HORIZON,
    ).start()
    OnOffSource(
        sim, "bursty", link.send, peak_rate=kbps(200), packet_length=PACKET,
        mean_on=0.5, mean_off=1.5, rng=random.Random(5), stop_time=HORIZON,
    ).start()
    for flow in ("bulk_small", "bulk_big"):
        sim.at(0.0, lambda fl=flow: [
            link.send(Packet(fl, PACKET, seqno=i)) for i in range(8000)
        ])
    sim.run(until=HORIZON)
    return link


print(f"{'scheduler':<13}{'bulk ratio':>11}{'inter. mean':>13}"
      f"{'inter. max':>12}{'inter. rx':>10}{'H(bulks)':>10}")
print("-" * 69)
for name in MAKERS:
    link = run(name)
    big = link.tracer.work_in_interval("bulk_big", 0, HORIZON)
    small = link.tracer.work_in_interval("bulk_small", 0, HORIZON)
    stats = delay_summary(link.tracer, "interactive")
    h = empirical_fairness_measure(
        link.tracer, "bulk_big", "bulk_small",
        WEIGHTS["bulk_big"], WEIGHTS["bulk_small"], max_epochs=400,
    )
    print(
        f"{name:<13}{big / max(small, 1):>11.2f}{stats['mean'] * 1e3:>11.1f}ms"
        f"{stats['max'] * 1e3:>10.1f}ms{stats['count']:>10.0f}{h * 1e3:>8.1f}ms"
    )

print(
    "\nReading: 'bulk ratio' should be 2.00 (weights 600:300). FIFO has "
    "no isolation:\nthe interactive flow's packets sit behind the bulk "
    "dump (few delivered in\n30 s). SFQ's start-tag scheduling gives the "
    "low-throughput interactive flow\nlower delay than the finish-tag "
    "algorithms (WFQ/SCFQ), the paper's Figure 2(b)\nclaim."
)
