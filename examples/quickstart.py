#!/usr/bin/env python3
"""Quickstart: Start-time Fair Queuing in ~40 lines.

Three flows — interactive audio, bulk FTP, and VBR-ish video — share a
1.5 Mb/s link under SFQ. The example shows the three things SFQ is for:

1. weighted bandwidth shares hold while everyone is backlogged;
2. a flow using idle bandwidth is never punished later;
3. the low-throughput audio flow sees low delay.

Run:  python examples/quickstart.py
"""

from repro import ConstantCapacity, Link, Packet, Simulator, kbps, make_scheduler, mbps
from repro.analysis import delay_summary

LINK_RATE = mbps(1.5)

sim = Simulator()
sfq = make_scheduler("SFQ", auto_register=False)
sfq.add_flow("audio", weight=kbps(64))
sfq.add_flow("ftp", weight=kbps(436))
sfq.add_flow("video", weight=mbps(1))
link = Link(sim, sfq, ConstantCapacity(LINK_RATE), name="uplink")


def audio_talkspurt(seq=0):
    """64 Kb/s CBR: one 160-byte packet every 20 ms."""
    if sim.now < 10.0:
        link.send(Packet("audio", 160 * 8, seqno=seq))
        sim.after(0.020, audio_talkspurt, seq + 1)


def ftp_bulk():
    """FTP dumps a large backlog at t=0: always backlogged."""
    for i in range(800):
        link.send(Packet("ftp", 1500 * 8, seqno=i))


def video_frames(seq=0, frame=0):
    """30 fps, alternating large/small frames, 1000-byte packets."""
    if sim.now < 10.0:
        frame_bits = (60_000 if frame % 12 == 0 else 25_000)
        for _ in range(frame_bits // 8000):
            link.send(Packet("video", 8000, seqno=seq))
            seq += 1
        sim.after(1 / 30, video_frames, seq, frame + 1)


sim.at(0.0, audio_talkspurt)
sim.at(0.0, ftp_bulk)
sim.at(0.0, video_frames)
sim.run(until=10.0)

print("=== SFQ quickstart: 10 s on a 1.5 Mb/s link ===\n")
print(f"{'flow':<8} {'weight':>10} {'received':>12} {'mean delay':>12} {'max delay':>12}")
for flow in ("audio", "ftp", "video"):
    stats = delay_summary(link.tracer, flow)
    bits = link.tracer.work_in_interval(flow, 0.0, 10.0)
    weight = sfq.flows[flow].weight
    print(
        f"{flow:<8} {weight / 1000:>8.0f}Kb {bits / 10 / 1000:>10.1f}Kb/s"
        f" {stats['mean'] * 1e3:>10.2f}ms {stats['max'] * 1e3:>10.2f}ms"
    )

print(
    "\nNote how the 64 Kb/s audio flow's delay stays near its own "
    "packet time\nalthough an always-backlogged FTP flow shares the "
    "link: that is SFQ's\nstart-tag scheduling (Theorem 4's bound does "
    "not couple delay to rate\nthe way WFQ's l/r term does)."
)
