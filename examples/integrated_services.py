#!/usr/bin/env python3
"""The paper's Section 1 scenario, end to end: one integrated-services
network carrying everything at once.

A two-switch campus backbone (src -> sw1 -> sw2 -> dst) runs
hierarchical SFQ on the bottleneck edge:

    root
    ├── realtime (50%)   -- interactive audio (CBR) + VBR video
    └── besteffort (50%)
        ├── bulk (1)     -- TCP Reno file transfer
        └── interactive (1) -- telnet-like Poisson traffic

The run demonstrates the paper's five requirements in one place:
low delay for the audio flow, fairness for VBR video, fair throughput
for flow-controlled data, hierarchical sharing, and self-clocked
operation (no capacity estimates anywhere).

Run:  python examples/integrated_services.py
"""

import random

from repro import (
    ConstantCapacity,
    HierarchicalScheduler,
    Link,
    Packet,
    Simulator,
    kbps,
    make_scheduler,
    mbps,
)
from repro.analysis import delay_summary
from repro.simulation import RandomStreams
from repro.traffic import CBRSource, PoissonSource, VBRVideoSource
from repro.transport import PacketSink, TcpReceiver, TcpSender

BOTTLENECK = mbps(4)
ACCESS = mbps(10)
HORIZON = 20.0

sim = Simulator()
streams = RandomStreams(2)

# --- Bottleneck edge: hierarchical SFQ --------------------------------
hs = HierarchicalScheduler()
hs.add_class("root", "realtime", weight=1.0)
hs.add_class("root", "besteffort", weight=1.0)
hs.attach_flow("audio", "realtime", weight=kbps(64))
hs.attach_flow("video", "realtime", weight=mbps(1.5))
hs.add_class("besteffort", "bulk", weight=1.0)
hs.add_class("besteffort", "interactive", weight=1.0)
hs.attach_flow("ftp", "bulk", weight=1.0)
hs.attach_flow("telnet", "interactive", weight=1.0)

access = Link(sim, make_scheduler("SFQ"), ConstantCapacity(ACCESS), name="sw1-access")
bottleneck = Link(
    sim, hs, ConstantCapacity(BOTTLENECK), name="sw1->sw2",
    per_flow_buffer_packets={"ftp": 64},
)
access.departure_hooks.append(lambda p, t: bottleneck.send(p.fork()))
sink = PacketSink("dst")
bottleneck.departure_hooks.append(sink.on_packet)

# --- Sources -----------------------------------------------------------
CBRSource(
    sim, "audio", access.send, rate=kbps(64), packet_length=160 * 8,
    stop_time=HORIZON,
).start()
VBRVideoSource(
    sim, "video", access.send, mean_rate=mbps(1.21),
    rng=streams.stream("video"), stop_time=HORIZON,
).start()
PoissonSource(
    sim, "telnet", access.send, rate=kbps(40), packet_length=64 * 8,
    rng=streams.stream("telnet"), stop_time=HORIZON,
).start()

rx = TcpReceiver(sim, "ftp", ack_path_delay=0.004)
tx = TcpSender(sim, "ftp", access.send, rx, segment_bytes=1000)
bottleneck.departure_hooks.append(rx.on_packet)
tx.start()

sim.run(until=HORIZON)

# --- Report ------------------------------------------------------------
print("=== Integrated services on a 4 Mb/s bottleneck (hierarchical SFQ) ===\n")
print(hs.describe())
print()
print(f"{'flow':<8}{'goodput':>12}{'mean delay':>13}{'max delay':>12}")
for flow in ("audio", "video", "telnet", "ftp"):
    stats = delay_summary(bottleneck.tracer, flow)
    bits = bottleneck.tracer.work_in_interval(flow, 0, HORIZON)
    print(
        f"{flow:<8}{bits / HORIZON / 1e6:>10.2f}Mb{stats['mean'] * 1e3:>11.2f}ms"
        f"{stats['max'] * 1e3:>10.2f}ms"
    )

audio = delay_summary(bottleneck.tracer, "audio")
telnet = delay_summary(bottleneck.tracer, "telnet")
ftp_bits = bottleneck.tracer.work_in_interval("ftp", 0, HORIZON)
video_bits = bottleneck.tracer.work_in_interval("video", 0, HORIZON)
assert audio["max"] < 0.050, "audio delay must stay interactive"
assert telnet["mean"] < 0.050, "telnet delay must stay interactive"
assert ftp_bits > 0.3 * BOTTLENECK * HORIZON, "ftp must soak spare capacity"
print(
    "\nThe audio/telnet flows keep interactive delays although an "
    "unconstrained TCP\nfills every spare bit; VBR video rides its "
    "reservation without being penalized\nfor bursts — the paper's "
    "Section 1 checklist, all at once."
)
print(f"\nTCP state: cwnd={tx.cwnd:.1f} segs, retransmits={tx.retransmissions}, "
      f"timeouts={tx.timeouts}")
