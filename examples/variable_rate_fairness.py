#!/usr/bin/env python3
"""Variable-rate fairness: the paper's Figure 1 scenario, end to end.

A 2.5 Mb/s switch output link carries a strict-priority MPEG VBR video
stream (1.21 Mb/s mean, 50-byte packets) plus two TCP Reno flows that
share the fluctuating residual under either WFQ or SFQ. TCP flow 3
starts 500 ms late.

This is the paper's headline experiment: WFQ — whose fluid virtual
time assumes the full link rate — lets the incumbent TCP flow lock out
the newcomer for hundreds of milliseconds; SFQ shares the residual
almost perfectly from the first packet.

Run:  python examples/variable_rate_fairness.py
"""

from repro.experiments.figure1 import run_figure1, run_figure1_variant

result = run_figure1()
print(result.render())

print()
print("Receive-progress detail (packets delivered to the destination):")
for algorithm in ("WFQ", "SFQ"):
    run = run_figure1_variant(algorithm)
    print(
        f"  {algorithm}: totals src2={run.src2_total}, src3={run.src3_total}; "
        f"video={run.video_packets} pkts"
    )

print(
    "\nPaper reference: under WFQ source 3 received 2 packets in its "
    "first 435 ms\n(vs 145 under SFQ); in the final 500 ms SFQ "
    "delivered 189/190 packets for\nsources 2/3. Our Reno and buffer "
    "parameters differ from REAL's defaults, so\nabsolute counts "
    "shift, but the starvation-vs-equal-share shape is identical."
)
