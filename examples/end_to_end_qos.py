#!/usr/bin/env python3
"""End-to-end QoS over a multi-hop path (paper Section 2.4, Cor. 1).

A leaky-bucket-shaped audio flow crosses 4 SFQ switches with bursty
cross traffic at every hop. The example computes the Corollary 1 /
Appendix A.5 end-to-end delay bound from the flow's (sigma, rho)
specification alone — no knowledge of the cross traffic — and compares
it with the measured worst case.

Run:  python examples/end_to_end_qos.py
"""

from repro import ConstantCapacity, Packet, Simulator, kbps, make_scheduler, mbps
from repro.analysis import leaky_bucket_e2e_delay_bound
from repro.network import Tandem
from repro.traffic import CBRSource, LeakyBucketShaper, conforms

K = 4
CAPACITY = mbps(1)
PROP = 0.005  # 5 ms per inter-switch hop
AUDIO_RATE = kbps(64)
AUDIO_PACKET = 200 * 8
SIGMA = 5 * AUDIO_PACKET  # bucket: 5-packet bursts allowed
CROSS = [("x1", kbps(300), 1500 * 8), ("x2", kbps(300), 600 * 8)]

sim = Simulator()
schedulers = []
for _ in range(K):
    sched = make_scheduler("SFQ", auto_register=False)
    sched.add_flow("audio", AUDIO_RATE)
    for flow, rate, _length in CROSS:
        sched.add_flow(flow, rate)
    schedulers.append(sched)
tandem = Tandem(
    sim,
    schedulers,
    [ConstantCapacity(CAPACITY)] * K,
    propagation_delays=[PROP] * (K - 1),
    # Cross traffic is hop-local; only the audio flow crosses the path.
    forward_filter=lambda packet: packet.flow == "audio",
)

# The audio source is bursty but shaped to (SIGMA, AUDIO_RATE). Its raw
# rate briefly exceeds the bucket rate, so the shaper smooths bursts.
shaper = LeakyBucketShaper(sim, tandem.ingress, sigma=SIGMA, rho=AUDIO_RATE)
audio = CBRSource(
    sim, "audio", shaper.send, rate=AUDIO_RATE * 1.25, packet_length=AUDIO_PACKET,
    stop_time=16.0,
)
audio.start()

# Independent bursty cross traffic at every hop.
for link in tandem.links:
    for flow, rate, length in CROSS:
        gap = 8 * length / rate
        t = 0.0
        seq = 0
        while t < 20.0:
            for _ in range(8):
                sim.at(
                    t,
                    lambda lk, fl, lb, s: lk.send(Packet(fl, lb, seqno=s)),
                    link, flow, length, seq,
                )
                seq += 1
            t += gap
sim.run(until=30.0)

# ----------------------------------------------------------------------
# Corollary 1 + A.5 bound from (sigma, rho) only.
# ----------------------------------------------------------------------
sum_lmax_others = sum(length for _f, _r, length in CROSS)
beta_per_hop = sum_lmax_others / CAPACITY + AUDIO_PACKET / CAPACITY  # delta = 0
bound = leaky_bucket_e2e_delay_bound(
    sigma=SIGMA,
    rho=AUDIO_RATE,
    r_hat=AUDIO_RATE,
    l_packet=AUDIO_PACKET,
    betas=[beta_per_hop] * K,
    propagation_delays=[PROP] * (K - 1),
)

first_hop = tandem.links[0].tracer.for_flow("audio")
arrivals = [(r.arrival, r.length) for r in first_hop]
# Corollary 1 / A.5 bound the delay from *arrival at the first server*
# (post-shaper) to departure from server K.
arrival_by_seq = {r.seqno: r.arrival for r in first_hop}
delays = [
    exit_time - arrival_by_seq[seqno]
    for exit_time, seqno in tandem.sink.series("audio")
]

print(f"=== {K}-hop end-to-end delay guarantee (Corollary 1 + A.5) ===\n")
print(f"audio flow: 64 Kb/s, 200 B packets, shaped to sigma = 5 packets")
print(f"shaped arrivals conform to (sigma, rho): "
      f"{conforms(arrivals, SIGMA * 1.000001, AUDIO_RATE)}")
print(f"packets delivered end-to-end: {len(delays)}")
print(f"measured mean delay:  {sum(delays)/len(delays)*1e3:8.2f} ms")
print(f"measured max delay:   {max(delays)*1e3:8.2f} ms")
print(f"analytic e2e bound:   {bound*1e3:8.2f} ms")
assert max(delays) <= bound + 1e-9, "Corollary 1 violated!"
print(
    "\nThe bound needed only the flow's own (sigma, rho) and per-hop "
    "beta terms —\nindependent of cross-traffic behaviour (the "
    "isolation property of the\nEAT-based guarantee)."
)
