#!/usr/bin/env python3
"""Admission control in front of an SFQ link.

The paper's theorems assume "appropriate admission control procedures";
this example shows what that control plane looks like in practice. A
ReservationManager fronts a 10 Kb/s SFQ link: callers ask for
(rate, max packet, optional delay requirement), get quoted a Theorem 4
bound or a refusal with the reason, and the admitted set is then
simulated to show every quoted bound holding.

Run:  python examples/reservation_control.py
"""

from repro import ConstantCapacity, Link, Packet, Simulator, make_scheduler
from repro.analysis.delay_bounds import expected_arrival_times
from repro.analysis.reservation import AdmissionError, ReservationManager

LINK_RATE = 10_000.0
manager = ReservationManager(capacity=LINK_RATE, utilization_cap=0.9)

requests = [
    # (flow, rate b/s, max packet bits, delay requirement s)
    ("voice", 1_000.0, 400, 0.5),
    ("video", 4_000.0, 800, 1.0),
    ("bulk", 3_000.0, 1000, None),
    ("greedy", 4_000.0, 1000, None),     # would blow the rate budget
    ("urgent", 500.0, 200, 0.0001),      # impossible delay ask
]

print(f"=== Admission control on a {LINK_RATE/1e3:.0f} Kb/s SFQ link ===\n")
for flow, rate, lmax, requirement in requests:
    try:
        admissible, bound = manager.quote(rate, lmax)
        if requirement is not None and bound > requirement:
            raise AdmissionError(
                f"achievable bound {bound*1e3:.1f} ms exceeds the "
                f"{requirement*1e3:.2f} ms requirement"
            )
        reservation = manager.admit_with_headroom(
            flow, rate, lmax, bound_headroom=0.5
        )
    except AdmissionError as exc:
        print(f"  REFUSED {flow:<7} {exc}")
        continue
    print(
        f"  ADMITTED {flow:<7} rate={rate/1e3:4.1f}Kb/s  "
        f"quoted bound={reservation.quoted_delay_bound*1e3:7.1f} ms"
    )

print(f"\nreserved {manager.reserved_rate/1e3:.1f} of "
      f"{LINK_RATE*manager.utilization_cap/1e3:.1f} Kb/s admissible")

# --- Simulate the admitted set and check the quotes --------------------
sim = Simulator()
sfq = make_scheduler("SFQ", auto_register=False)
manager.configure_scheduler(sfq)
link = Link(sim, sfq, ConstantCapacity(LINK_RATE))
for flow, reservation in manager.reservations.items():
    gap = 3 * reservation.max_packet / reservation.rate
    t, seq = 0.0, 0
    while t < 30.0:
        for _ in range(3):
            sim.at(
                t,
                lambda fl, s, lb: link.send(Packet(fl, lb, seqno=s)),
                flow, seq, reservation.max_packet,
            )
            seq += 1
        t += gap
sim.run(until=60.0)

print("\nquoted vs measured (EAT-relative max delay):")
all_ok = True
for flow, reservation in manager.reservations.items():
    records = sorted(link.tracer.departed(flow), key=lambda r: r.seqno)
    eats = expected_arrival_times(
        [r.arrival for r in records], [r.length for r in records],
        [reservation.rate] * len(records),
    )
    worst = max(r.departure - e for r, e in zip(records, eats))
    ok = worst <= reservation.quoted_delay_bound + 1e-9
    all_ok = all_ok and ok
    print(
        f"  {flow:<7} quoted {reservation.quoted_delay_bound*1e3:7.1f} ms   "
        f"measured {worst*1e3:7.1f} ms   {'OK' if ok else 'VIOLATED'}"
    )
assert all_ok, "a quoted bound was violated"
print("\nEvery quote held — Theorem 4 is an enforceable SLA, not a heuristic.")
