#!/usr/bin/env python3
"""Compare a fresh benchmark run against the committed ``BENCH_*.json``.

Usage (from the repo root)::

    PYTHONPATH=src python scripts/bench_compare.py            # run + compare
    PYTHONPATH=src python scripts/bench_compare.py --fresh-dir /tmp/bench
    PYTHONPATH=src python scripts/bench_compare.py --threshold 0.5

Runs the full microbenchmark suite (``python -m repro bench``) into a
scratch directory, then diffs every *optimized* wall-clock metric
against the committed baseline at the repo root. Exits non-zero if any
metric regressed by more than ``--threshold`` (default 0.30 = 30%), or
if a baseline metric is missing from the fresh run entirely (a renamed
or dropped bench section must re-baseline, not silently pass).

Only the optimized implementation is gated — the frozen seed numbers
are context, not a contract. Improvements (negative regressions) are
reported but never fail. Nanosecond metrics are compared as
fresh/baseline; throughput metrics (``*_per_sec``) as baseline/fresh,
so >1 + threshold always means "got slower".

Sub-millisecond latency metrics are *exempt* from the gate (reported as
``exempt``, never fail): a timing whose absolute magnitude is below
``--floor-ns`` (default 1 ms) is dominated by scheduler jitter and
clock granularity on shared CI machines, so a 30% swing there is noise,
not a regression. Throughput metrics are never exempt.

Absolute numbers are machine-dependent: comparing against a baseline
produced on different hardware is meaningless. CI therefore runs the
bench in ``--smoke`` mode only (rot check); this script is for
developers re-baselining on one machine before and after a change.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = ("BENCH_engine.json", "BENCH_schedulers.json", "BENCH_scale.json")


def _walk_metrics(payload, prefix=""):
    """Yield (dotted_path, value) for every optimized timing metric."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, (dict, list)):
                yield from _walk_metrics(value, path)
            elif key.startswith("optimized_") and (
                key.endswith("_ns_per_event")
                or key.endswith("_ns_per_packet")
                or key.endswith("_pkts_per_sec")
            ):
                yield path, float(value)
    elif isinstance(payload, list):
        for i, value in enumerate(payload):
            yield from _walk_metrics(value, f"{prefix}[{i}]")


#: Latency metrics below this absolute value (ns) are exempt from the
#: gate: 1 ms, the scale at which CI timer noise swamps a 30% threshold.
DEFAULT_FLOOR_NS = 1e6


def compare(
    baseline: dict, fresh: dict, threshold: float,
    floor_ns: float = DEFAULT_FLOOR_NS,
) -> list:
    """Return [(metric, baseline, fresh, regression_fraction), ...] for
    metrics regressed beyond ``threshold``.

    A baseline metric *absent* from the fresh run (a renamed or dropped
    bench section) is itself a failure — reported as ``MISSING`` with
    ``fresh``/``regression`` of ``None`` — otherwise a rename would
    silently shrink the gate's coverage to nothing.

    Latency metrics whose baseline *and* fresh values are both below
    ``floor_ns`` are reported but exempt from failing — sub-millisecond
    timings on shared machines regress by noise alone. Throughput
    metrics (``*_pkts_per_sec``) are always gated.
    """
    fresh_metrics = dict(_walk_metrics(fresh))
    failures = []
    for path, base_value in _walk_metrics(baseline):
        new_value = fresh_metrics.get(path)
        if new_value is None:
            print(
                f"{'MISSING':>9}  {path}: present in baseline, absent from "
                "the fresh run (renamed or dropped bench section?)"
            )
            failures.append((path, base_value, None, None))
            continue
        if base_value <= 0:
            continue  # degenerate baseline: not comparable
        is_throughput = path.endswith("_pkts_per_sec")
        if is_throughput:
            slowdown = base_value / new_value  # throughput: lower is worse
        else:
            slowdown = new_value / base_value  # latency: higher is worse
        regression = slowdown - 1.0
        sub_floor = not is_throughput and max(base_value, new_value) < floor_ns
        if regression <= threshold:
            status = "ok"
        elif sub_floor:
            status = "exempt"
        else:
            status = "REGRESSED"
        print(
            f"{status:>9}  {path}: baseline={base_value:g} fresh={new_value:g} "
            f"({regression:+.1%})"
        )
        if status == "REGRESSED":
            failures.append((path, base_value, new_value, regression))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold", type=float, default=0.30,
        help="maximum allowed fractional slowdown (default 0.30)",
    )
    parser.add_argument(
        "--fresh-dir", default=None,
        help="directory with a fresh run's BENCH_*.json "
             "(default: run the bench now into a temp dir)",
    )
    parser.add_argument(
        "--baseline-dir", default=str(REPO_ROOT),
        help="directory with the baseline BENCH_*.json (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats when running the bench here (default 5)",
    )
    parser.add_argument(
        "--floor-ns", type=float, default=DEFAULT_FLOOR_NS,
        help="latency metrics below this absolute value (ns) are exempt "
             "from the gate (default 1e6 = 1 ms)",
    )
    args = parser.parse_args(argv)

    if args.fresh_dir is None:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.experiments.bench import run_bench

        fresh_dir = Path(tempfile.mkdtemp(prefix="bench_fresh_"))
        print(f"running fresh benchmark into {fresh_dir} ...")
        run_bench(smoke=False, output_dir=str(fresh_dir), repeats=args.repeats)
    else:
        fresh_dir = Path(args.fresh_dir)

    baseline_dir = Path(args.baseline_dir)
    all_failures = []
    for name in BENCH_FILES:
        base_path = baseline_dir / name
        fresh_path = fresh_dir / name
        if not base_path.exists():
            print(f"missing baseline {base_path}; run `python -m repro bench` "
                  "at the repo root and commit the result", file=sys.stderr)
            return 2
        if not fresh_path.exists():
            print(f"missing fresh result {fresh_path}", file=sys.stderr)
            return 2
        baseline = json.loads(base_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        if baseline.get("mode") == "smoke" or fresh.get("mode") == "smoke":
            print(f"{name}: smoke-mode numbers are not comparable", file=sys.stderr)
            return 2
        print(f"\n== {name} (threshold {args.threshold:.0%}, "
              f"floor {args.floor_ns:g} ns) ==")
        all_failures.extend(
            compare(baseline, fresh, args.threshold, floor_ns=args.floor_ns)
        )

    if all_failures:
        print(f"\n{len(all_failures)} metric(s) regressed or missing:",
              file=sys.stderr)
        for path, base_value, new_value, regression in all_failures:
            if new_value is None:
                print(f"  {path}: {base_value:g} -> MISSING", file=sys.stderr)
            else:
                print(f"  {path}: {base_value:g} -> {new_value:g} "
                      f"({regression:+.1%})", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
