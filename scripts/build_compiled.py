#!/usr/bin/env python
"""Opt-in compiled build of the hot pure-Python modules.

Compiles ``repro.core.tagmath`` and ``repro.simulation.eventq`` to C
extensions with mypyc, placing the resulting shared objects next to
their source files so the import system prefers them transparently
(`foo.cpython-*.so` shadows `foo.py` on import). Nothing in the repo
*requires* this: the pure-Python modules are the reference
implementation, every test passes without a compiler, and the
compiled form is gated by the same trace-equivalence suite.

Usage::

    python scripts/build_compiled.py            # build (if toolchain present)
    python scripts/build_compiled.py --clean    # remove built artifacts
    python scripts/build_compiled.py --check    # report what would be used

The script *always exits 0 when the toolchain is missing* — "no
compiler" is a supported configuration, not an error — so CI can run it
best-effort. A real compile failure (toolchain present, build broke)
exits nonzero.
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: Modules compiled, by design, in dependency-free isolation: both are
#: leaves (tagmath imports nothing from repro; eventq only stdlib), so
#: mypyc never needs to follow imports into the uncompiled package.
TARGETS = [
    SRC / "repro" / "core" / "tagmath.py",
    SRC / "repro" / "simulation" / "eventq.py",
]


def built_artifacts() -> list[Path]:
    """Existing compiled artifacts for the target modules."""
    found: list[Path] = []
    for target in TARGETS:
        found.extend(target.parent.glob(target.stem + ".*.so"))
        found.extend(target.parent.glob(target.stem + ".*.pyd"))
    return found


def clean() -> int:
    removed = 0
    for artifact in built_artifacts():
        artifact.unlink()
        print(f"removed {artifact.relative_to(ROOT)}")
        removed += 1
    for target in TARGETS:
        build_dir = target.parent / "build"
        if build_dir.is_dir():
            shutil.rmtree(build_dir)
    if not removed:
        print("nothing to clean")
    return 0


def check() -> int:
    artifacts = built_artifacts()
    for target in TARGETS:
        module = ".".join(target.relative_to(SRC).with_suffix("").parts)
        compiled = [a for a in artifacts if a.stem.startswith(target.stem)]
        form = compiled[0].name if compiled else "pure Python"
        print(f"{module}: {form}")
    return 0


def build() -> int:
    try:
        from mypyc.build import mypycify  # noqa: F401
    except ImportError:
        print(
            "mypyc not available (pip install mypy); skipping compiled "
            "build — the pure-Python modules remain in use."
        )
        return 0
    if shutil.which("cc") is None and shutil.which("gcc") is None:
        print("no C compiler on PATH; skipping compiled build.")
        return 0
    # Run setup.py-style builds in each target's own directory so the
    # .so lands next to the .py it shadows.
    for target in TARGETS:
        script = (
            "from mypyc.build import mypycify\n"
            "from setuptools import setup\n"
            f"setup(name={target.stem!r}, ext_modules=mypycify([{target.name!r}]),\n"
            "      script_args=['build_ext', '--inplace'])\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=target.parent,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            print(f"FAILED compiling {target.relative_to(ROOT)}", file=sys.stderr)
            return 1
        print(f"compiled {target.relative_to(ROOT)}")
    print(
        "done. Run the trace-equivalence suite to validate the build:\n"
        "  PYTHONPATH=src python -m pytest -q tests/test_trace_equivalence.py"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--clean", action="store_true", help="remove built artifacts")
    group.add_argument("--check", action="store_true", help="report active forms")
    args = parser.parse_args()
    if args.clean:
        return clean()
    if args.check:
        return check()
    return build()


if __name__ == "__main__":
    raise SystemExit(main())
