"""Command-line interface: run any paper experiment from the shell.

::

    python -m repro list
    python -m repro run figure1
    python -m repro run figure2b --duration 1000
    python -m repro run all --seed 7

Each experiment prints the same table/series the benchmark suite
archives under ``results/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments.harness import ExperimentResult

# Lazy imports keep `python -m repro list` fast.
_RUNNERS: Dict[str, str] = {
    "table1": "Table 1: fairness of WFQ/FQS/SCFQ/DRR vs SFQ",
    "example1": "Example 1: WFQ >= 2x the fairness lower bound",
    "example2": "Example 2: WFQ unfair on a variable-rate server",
    "figure1": "Figure 1(b): TCP fairness over a variable-rate server",
    "figure2a": "Figure 2(a): max-delay delta, SFQ vs WFQ (analytic)",
    "figure2b": "Figure 2(b): avg delay of low-throughput flows",
    "figure3": "Figure 3(b): weighted shares on a fluctuating interface",
    "throughput": "Theorems 2/3: throughput guarantees (FC/EBF)",
    "delay": "Theorems 4/5 + eq. 56-57: delay guarantees",
    "e2e": "Corollary 1: end-to-end delay over K hops",
    "linkshare": "Example 3: hierarchical link sharing",
    "shifting": "Delay shifting (eq. 69-73)",
    "edd": "Theorem 7: Delay EDD on FC servers",
    "fa": "Fair Airport (Theorems 8/9)",
    "ebf": "Theorem 5: statistical delay tail on EBF servers",
    "residual": "Section 2.3: priority residual is FC(C-rho, sigma)",
    "vbr": "Section 2.3: generalized SFQ with per-packet rates",
    "interop": "Section 2.4: heterogeneous schedulers interoperate",
    "stress": "Theorem 1 under Pareto traffic + Gilbert-Elliott link",
    "faults": "Fault tolerance: link outage + flow churn, invariant monitors",
    "robust-figure1": "Robustness: Figure 1(b) across buffers and seeds",
    "robust-figure2b": "Robustness: Figure 2(b) excess across seeds",
    "complexity": "Complexity accounting: GPS work vs self-clocking",
}


def _load(name: str) -> Callable[..., ExperimentResult]:
    if name == "table1":
        from repro.experiments.table1 import run_table1

        return run_table1
    if name == "example1":
        from repro.experiments.examples_1_2 import run_example1

        return run_example1
    if name == "example2":
        from repro.experiments.examples_1_2 import run_example2

        return run_example2
    if name == "figure1":
        from repro.experiments.figure1 import run_figure1

        return run_figure1
    if name == "figure2a":
        from repro.experiments.figure2a import run_figure2a

        return run_figure2a
    if name == "figure2b":
        from repro.experiments.figure2b import run_figure2b

        return run_figure2b
    if name == "figure3":
        from repro.experiments.figure3 import run_figure3

        return run_figure3
    if name == "throughput":
        from repro.experiments.throughput_bounds import run_throughput_bounds

        return run_throughput_bounds
    if name == "delay":
        from repro.experiments.delay_bounds_exp import run_delay_bounds

        return run_delay_bounds
    if name == "e2e":
        from repro.experiments.end_to_end_exp import run_end_to_end

        return run_end_to_end
    if name == "linkshare":
        from repro.experiments.link_sharing_exp import run_link_sharing

        return run_link_sharing
    if name == "shifting":
        from repro.experiments.delay_shifting import run_delay_shifting

        return run_delay_shifting
    if name == "edd":
        from repro.experiments.delay_edd_exp import run_delay_edd

        return run_delay_edd
    if name == "fa":
        from repro.experiments.fair_airport_exp import run_fair_airport

        return run_fair_airport
    if name == "ebf":
        from repro.experiments.ebf_delay import run_ebf_delay

        return run_ebf_delay
    if name == "residual":
        from repro.experiments.residual_exp import run_residual

        return run_residual
    if name == "vbr":
        from repro.experiments.vbr_rates import run_vbr_rates

        return run_vbr_rates
    if name == "interop":
        from repro.experiments.interop import run_interop

        return run_interop
    if name == "stress":
        from repro.experiments.stress import run_stress

        return run_stress
    if name == "faults":
        from repro.experiments.fault_tolerance import run_fault_tolerance

        return run_fault_tolerance
    if name == "robust-figure1":
        from repro.experiments.robustness import run_figure1_robustness

        return run_figure1_robustness
    if name == "robust-figure2b":
        from repro.experiments.robustness import run_figure2b_robustness

        return run_figure2b_robustness
    if name == "complexity":
        from repro.experiments.complexity import run_complexity

        return run_complexity
    raise KeyError(name)


#: Experiments accepting each optional CLI knob.
_ACCEPTS_SEED = {
    "table1", "figure1", "figure2b", "ebf", "residual", "vbr", "stress",
    "faults",
}
_ACCEPTS_DURATION = {"figure1", "figure2b"}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (list / run / report subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Start-time Fair Queuing (SIGCOMM '96) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(_RUNNERS) + ["all"])
    run.add_argument("--seed", type=int, default=None, help="experiment seed")
    run.add_argument(
        "--duration", type=float, default=None, help="simulated horizon (s)"
    )
    bench = sub.add_parser(
        "bench",
        help="run the perf microbenchmarks and write BENCH_*.json",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="tiny op counts (CI rot-check); numbers are not comparable",
    )
    bench.add_argument(
        "--output-dir", default=None,
        help="directory for BENCH_*.json (default: current directory)",
    )
    bench.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per measurement; min is reported (default 5)",
    )
    report = sub.add_parser(
        "report", help="run the full evaluation and write a Markdown report"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="report path (default REPORT.md)"
    )
    report.add_argument("--seed", type=int, default=None)
    report.add_argument(
        "--experiments", nargs="*", default=None,
        help="subset of experiment names (default: all)",
    )
    return parser


def run_experiment(
    name: str, seed: Optional[int] = None, duration: Optional[float] = None
) -> ExperimentResult:
    """Run one experiment by CLI name and return its result."""
    runner = _load(name)
    kwargs = {}
    if seed is not None and name in _ACCEPTS_SEED:
        kwargs["seed"] = seed
    if duration is not None and name in _ACCEPTS_DURATION:
        kwargs["duration"] = duration
    return runner(**kwargs)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(n) for n in _RUNNERS)
        for name in sorted(_RUNNERS):
            print(f"{name:<{width}}  {_RUNNERS[name]}")
        return 0
    if args.command == "bench":
        from repro.experiments.bench import run_bench

        run_bench(
            smoke=args.smoke, output_dir=args.output_dir, repeats=args.repeats
        )
        return 0
    if args.command == "report":
        from repro.analysis.report import generate_report

        _markdown, failures = generate_report(
            path=args.output, experiments=args.experiments, seed=args.seed
        )
        print(f"report written to {args.output}")
        for failure in failures:
            print(f"FAILED: {failure}")
        return 1 if failures else 0
    names = sorted(_RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = run_experiment(name, seed=args.seed, duration=args.duration)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
