"""Command-line interface: run any paper experiment from the shell.

::

    python -m repro list
    python -m repro run figure1
    python -m repro run figure2b --duration 1000
    python -m repro run all --seed 7 --jobs 4
    python -m repro run figure1 --metrics
    python -m repro metrics figure1
    python -m repro campaign --jobs 4 --seeds 5
    python -m repro campaign --only table1,figure1 --seeds 2 --jobs 2
    python -m repro campaign --only figure1 --seeds 3 --metrics

Each experiment prints the same table/series the benchmark suite
archives under ``results/``. Dispatch goes through the lazy registry in
:mod:`repro.experiments` (``name -> module:function``), shared with the
campaign runner, so ``python -m repro list`` never imports a simulation
module.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, List, Optional

from repro.experiments import (
    ACCEPTS_DURATION,
    ACCEPTS_SEED,
    DESCRIPTIONS,
    REGISTRY,
    load_experiment,
)
from repro.experiments.harness import ExperimentResult

#: Backwards-compatible aliases (pre-registry callers).
_RUNNERS = DESCRIPTIONS
_ACCEPTS_SEED = ACCEPTS_SEED
_ACCEPTS_DURATION = ACCEPTS_DURATION


def _load(name: str) -> Callable[..., ExperimentResult]:
    return load_experiment(name)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (list / run / bench / report /
    campaign subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Start-time Fair Queuing (SIGCOMM '96) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(REGISTRY) + ["all"])
    run.add_argument("--seed", type=int, default=None, help="experiment seed")
    run.add_argument(
        "--duration", type=float, default=None, help="simulated horizon (s)"
    )
    run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for 'run all' (default 1 = in-process)",
    )
    run.add_argument(
        "--metrics", action="store_true",
        help="collect an online metrics snapshot "
             "(written under <results>/metrics/)",
    )
    run.add_argument(
        "--results-dir", default="results",
        help="directory for --metrics snapshots (default: results)",
    )
    metrics = sub.add_parser(
        "metrics",
        help="run one experiment with metrics collection and print the "
             "per-server / per-flow telemetry summary",
    )
    metrics.add_argument("experiment", choices=sorted(REGISTRY))
    metrics.add_argument(
        "--seed", type=int, default=None, help="experiment seed"
    )
    metrics.add_argument(
        "--duration", type=float, default=None, help="simulated horizon (s)"
    )
    metrics.add_argument(
        "--results-dir", default="results",
        help="snapshot output directory root (default: results; files go "
             "to <results>/metrics/<experiment>.{json,csv})",
    )
    metrics.add_argument(
        "--table", action="store_true",
        help="also print the experiment's own result table",
    )
    bench = sub.add_parser(
        "bench",
        help="run the perf microbenchmarks and write BENCH_*.json",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="tiny op counts (CI rot-check); numbers are not comparable",
    )
    bench.add_argument(
        "--output-dir", default=None,
        help="directory for BENCH_*.json (default: current directory)",
    )
    bench.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per measurement; min is reported (default 5)",
    )
    bench.add_argument(
        "--flows", type=int, nargs="+", default=None, metavar="N",
        help="flow-count sweep for the scale family / BENCH_scale.json "
             "(default: 1000 10000 100000; e.g. --flows 1000 1000000)",
    )
    bench.add_argument(
        "--profile", type=int, default=None, metavar="N",
        help="instead of benchmarking, cProfile the pipeline section and "
             "print/dump the top-N hot functions under results/profile/",
    )
    report = sub.add_parser(
        "report", help="run the full evaluation and write a Markdown report"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="report path (default REPORT.md)"
    )
    report.add_argument("--seed", type=int, default=None)
    report.add_argument(
        "--experiments", nargs="*", default=None,
        help="subset of experiment names (default: all)",
    )
    campaign = sub.add_parser(
        "campaign",
        help="fan experiments x params x seeds across worker processes "
             "with a content-addressed result cache",
    )
    campaign.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1 = in-process)",
    )
    campaign.add_argument(
        "--seeds", type=int, default=1,
        help="seed slots per seed-accepting experiment (default 1)",
    )
    campaign.add_argument(
        "--base-seed", type=int, default=0,
        help="base seed mixed into every shard's derived seed (default 0)",
    )
    campaign.add_argument(
        "--only", default=None,
        help="comma-separated experiment subset (default: all)",
    )
    campaign.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    campaign.add_argument(
        "--timeout", type=float, default=None,
        help="per-shard timeout in seconds (shard is marked failed)",
    )
    campaign.add_argument(
        "--retries", type=int, default=1,
        help="retries for shards whose worker process dies (default 1)",
    )
    campaign.add_argument(
        "--results-dir", default="results",
        help="directory for the cache and campaign artifacts "
             "(default: results)",
    )
    campaign.add_argument(
        "--quiet", action="store_true", help="suppress per-shard progress"
    )
    campaign.add_argument(
        "--metrics", action="store_true",
        help="collect per-shard metrics snapshots and write the "
             "per-experiment merge under <results>/metrics/",
    )
    campaign.add_argument(
        "--bench", action="store_true",
        help="measure --jobs and warm-cache speedups instead of running "
             "a campaign; writes BENCH_campaign.json",
    )
    campaign.add_argument(
        "--bench-output", default="BENCH_campaign.json",
        help="path for --bench output (default BENCH_campaign.json)",
    )
    chaos = sub.add_parser(
        "chaos",
        help="randomized fault campaigns across the scheduler zoo, with "
             "failure minimization and artifact replay",
    )
    chaos.add_argument(
        "mode", nargs="?", choices=("run", "replay"), default="run",
        help="'run' a campaign (default) or 'replay' a chaos-repro artifact",
    )
    chaos.add_argument(
        "artifact", nargs="?", default=None,
        help="artifact path (replay mode only)",
    )
    chaos.add_argument(
        "--seeds", type=int, default=5,
        help="fault schedules per scheduler (default 5)",
    )
    chaos.add_argument(
        "--schedulers", default=None,
        help="comma-separated discipline subset (default: the stock zoo)",
    )
    chaos.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1 = in-process)",
    )
    chaos.add_argument(
        "--base-seed", type=int, default=0,
        help="base seed mixed into every schedule seed (default 0)",
    )
    chaos.add_argument(
        "--duration", type=float, default=6.0,
        help="simulated horizon per schedule in seconds (default 6)",
    )
    chaos.add_argument(
        "--timeout", type=float, default=None,
        help="per-run timeout in seconds (run is marked failed)",
    )
    chaos.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    chaos.add_argument(
        "--no-shrink", action="store_true",
        help="report violations without minimizing them",
    )
    chaos.add_argument(
        "--results-dir", default="results",
        help="directory for the cache and repro artifacts "
             "(default: results)",
    )
    chaos.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress"
    )
    lint = sub.add_parser(
        "lint",
        help="static determinism & scheduler-invariant analysis "
             "(DET*/TAG*/PERF* rules; see HACKING.md)",
    )
    from repro.lint.cli import build_lint_parser

    build_lint_parser(lint)
    return parser


def run_experiment(
    name: str, seed: Optional[int] = None, duration: Optional[float] = None
) -> ExperimentResult:
    """Run one experiment by CLI name and return its result."""
    runner = load_experiment(name)
    kwargs = {}
    if seed is not None and name in ACCEPTS_SEED:
        kwargs["seed"] = seed
    if duration is not None and name in ACCEPTS_DURATION:
        kwargs["duration"] = duration
    return runner(**kwargs)


def run_experiment_with_metrics(
    name: str,
    seed: Optional[int] = None,
    duration: Optional[float] = None,
):
    """Run one experiment inside a :class:`repro.metrics.MetricsSession`.

    Returns ``(result, snapshot)`` where the snapshot covers every
    Link/Switch the experiment constructed (ambient wiring — the
    experiment itself is unmodified).
    """
    from repro.metrics import MetricsSession

    meta = {"experiment": name}
    if seed is not None and name in ACCEPTS_SEED:
        meta["seed"] = seed
    if duration is not None and name in ACCEPTS_DURATION:
        meta["duration"] = duration
    with MetricsSession() as session:
        result = run_experiment(name, seed=seed, duration=duration)
    return result, session.snapshot(meta)


def _write_snapshot(snapshot, results_dir: str, basename: str) -> None:
    from pathlib import Path

    json_path, csv_path = snapshot.write(
        Path(results_dir) / "metrics", basename
    )
    print(f"metrics snapshot: {json_path}; csv: {csv_path}")


def _parse_only(only: Optional[str]) -> Optional[List[str]]:
    if only is None:
        return None
    names = [part.strip() for part in only.replace(",", " ").split() if part.strip()]
    unknown = sorted(set(names) - set(REGISTRY))
    if unknown:
        raise SystemExit(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(see `python -m repro list`)"
        )
    return names


def _write_campaign_snapshots(campaign, results_dir: str) -> None:
    """Write each experiment's merged snapshot (if it collected one)."""
    from repro.metrics import Snapshot

    for name, summary in campaign.summaries.items():
        payload = summary.data.get("metrics_snapshot")
        if payload:
            _write_snapshot(Snapshot.from_payload(payload), results_dir, name)


def _run_all(args: argparse.Namespace) -> int:
    """Legacy ``run all`` path, routed through the campaign runner.

    Seeds are passed through directly (no derivation) so output matches
    running each experiment by hand with the same ``--seed``; the cache
    is bypassed because ``run`` promises a fresh execution.
    """
    from pathlib import Path

    from repro.experiments.campaign import run_campaign

    grids = None
    if args.duration is not None:
        grids = dict()
        from repro.experiments.campaign import PARAM_GRIDS

        grids.update(PARAM_GRIDS)
        for name in sorted(ACCEPTS_DURATION):
            grids[name] = [{"duration": args.duration}]
    campaign = run_campaign(
        sorted(REGISTRY),
        seeds=1,
        jobs=max(1, args.jobs),
        base_seed=args.seed,
        derive_seeds=False,
        cache=False,
        grids=grids,
        results_dir=args.results_dir,
        metrics=args.metrics,
    )
    for name in sorted(campaign.summaries):
        print(campaign.summaries[name].render())
        print()
    if args.metrics:
        _write_campaign_snapshots(campaign, args.results_dir)
    print(campaign.render_stats())
    for outcome in campaign.failures:
        print(f"FAILED: {outcome.shard.describe()}: "
              f"{outcome.error.splitlines()[0] if outcome.error else outcome.status}")
    return 1 if campaign.failures else 0


def _run_campaign_command(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.campaign import (
        run_campaign,
        run_campaign_bench,
        write_manifest,
    )

    if args.bench:
        run_campaign_bench(
            output=args.bench_output,
            jobs=max(2, args.jobs) if args.jobs > 1 else 4,
            seeds=args.seeds,
            names=_parse_only(args.only),
            timeout=args.timeout,
        )
        return 0

    progress = None if args.quiet else (lambda line: print(line, flush=True))
    campaign = run_campaign(
        _parse_only(args.only),
        seeds=args.seeds,
        jobs=args.jobs,
        base_seed=args.base_seed,
        cache=not args.no_cache,
        results_dir=args.results_dir,
        timeout=args.timeout,
        retries=args.retries,
        progress=progress,
        metrics=args.metrics,
    )
    print()
    for name in campaign.summaries:
        print(campaign.summaries[name].render())
        print()
    print(campaign.render_stats())
    if args.metrics:
        _write_campaign_snapshots(campaign, args.results_dir)

    results_dir = Path(args.results_dir)
    write_manifest(campaign, results_dir / "campaign_manifest.json")
    from repro.analysis.report import campaign_to_markdown

    (results_dir / "campaign_summary.md").write_text(
        campaign_to_markdown(campaign)
    )
    print(f"manifest: {results_dir / 'campaign_manifest.json'}; "
          f"summary: {results_dir / 'campaign_summary.md'}")
    for outcome in campaign.failures:
        print(f"FAILED: {outcome.shard.describe()} ({outcome.status}): "
              f"{outcome.error.splitlines()[0] if outcome.error else ''}")
    return 1 if campaign.failures else 0


def _run_chaos_command(args: argparse.Namespace) -> int:
    """``python -m repro chaos [run|replay]``."""
    if args.mode == "replay":
        from repro.chaos import replay_artifact

        if args.artifact is None:
            print("chaos replay: missing artifact path")
            return 2
        outcome = replay_artifact(Path(args.artifact))
        print(outcome.describe())
        return 0 if outcome.reproduced else 1

    from repro.chaos import DEFAULT_ZOO, run_chaos_campaign

    schedulers = (
        [s for s in args.schedulers.split(",") if s]
        if args.schedulers
        else list(DEFAULT_ZOO)
    )
    result = run_chaos_campaign(
        schedulers,
        seeds=args.seeds,
        jobs=args.jobs,
        base_seed=args.base_seed,
        duration=args.duration,
        cache=not args.no_cache,
        results_dir=args.results_dir,
        timeout=args.timeout,
        shrink=not args.no_shrink,
        progress=None if args.quiet else print,
    )
    print(result.describe())
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(n) for n in DESCRIPTIONS)
        for name in sorted(DESCRIPTIONS):
            print(f"{name:<{width}}  {DESCRIPTIONS[name]}")
        return 0
    if args.command == "bench":
        if args.profile is not None:
            from repro.experiments.bench import profile_pipeline

            profile_pipeline(
                top_n=args.profile,
                output_dir=args.output_dir or "results/profile",
            )
            return 0
        from repro.experiments.bench import run_bench

        run_bench(
            smoke=args.smoke, output_dir=args.output_dir,
            repeats=args.repeats, flows=args.flows,
        )
        return 0
    if args.command == "report":
        from repro.analysis.report import generate_report

        _markdown, failures = generate_report(
            path=args.output, experiments=args.experiments, seed=args.seed
        )
        print(f"report written to {args.output}")
        for failure in failures:
            print(f"FAILED: {failure}")
        return 1 if failures else 0
    if args.command == "campaign":
        return _run_campaign_command(args)
    if args.command == "chaos":
        return _run_chaos_command(args)
    if args.command == "lint":
        from repro.lint.cli import run_lint

        return run_lint(args)
    if args.command == "metrics":
        result, snapshot = run_experiment_with_metrics(
            args.experiment, seed=args.seed, duration=args.duration
        )
        if args.table:
            print(result.render())
            print()
        for line in snapshot.summary_lines():
            print(line)
        _write_snapshot(snapshot, args.results_dir, args.experiment)
        return 0
    if args.experiment == "all":
        return _run_all(args)
    if args.metrics:
        result, snapshot = run_experiment_with_metrics(
            args.experiment, seed=args.seed, duration=args.duration
        )
        print(result.render())
        print()
        for line in snapshot.summary_lines():
            print(line)
        _write_snapshot(snapshot, args.results_dir, args.experiment)
        return 0
    result = run_experiment(
        args.experiment, seed=args.seed, duration=args.duration
    )
    print(result.render())
    print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
