"""v2 rule API: whole-program rules over the loaded :class:`Project`.

A :class:`ProjectRule` sees the entire module graph instead of one file
at a time, in two phases:

``collect(module)``
    Called once per module (sorted by path) before any analysis — the
    place to harvest per-module facts cheaply (experiment registry
    entries, module-level mutable globals) without forcing the call
    graph to exist.

``analyze(project)``
    Called once with the full project; may pull the memoized call graph
    (``project.callgraph()``) and taint summaries
    (``project.summaries()``). Yields findings.

Project rules are registered as *classes* (they carry collect-phase
state, so the engine instantiates a fresh rule per run) but share the
per-instance ``--select`` / ``--ignore`` / ``# lint: disable=`` plumbing
with the per-file rules — a directive on the reported line silences a
project finding exactly like a module finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Type

from repro.lint.callgraph import MODULE_BODY, CallGraph, FunctionInfo, _own_nodes
from repro.lint.dataflow import (
    CFG,
    LABEL_WALLCLOCK,
    build_cfg,
    reaching_definitions,
)
from repro.lint.findings import Finding
from repro.lint.project import ModuleInfo, Project
from repro.lint.rules import _TAG_WORDS, dotted_name

__all__ = [
    "PROJECT_RULES",
    "ProjectRule",
    "register_project",
    "all_project_rule_codes",
]


class ProjectRule:
    """Base class for whole-program rules (collect + analyze phases)."""

    code: str = ""
    summary: str = ""

    def collect(self, module: ModuleInfo) -> None:
        """Per-module fact harvesting; called before :meth:`analyze`."""

    def analyze(self, project: Project) -> Iterator[Finding]:
        """Yield findings over the whole project."""
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` inside ``module``."""
        return Finding(
            rule=self.code,
            message=message,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


#: Registry of code -> rule class (instantiated fresh per engine run).
PROJECT_RULES: Dict[str, Type[ProjectRule]] = {}


def register_project(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the registry."""
    if not cls.code:
        raise ValueError(f"project rule {cls.__name__} has no code")
    if cls.code in PROJECT_RULES:
        raise ValueError(f"duplicate project rule code {cls.code}")
    PROJECT_RULES[cls.code] = cls
    return cls


def all_project_rule_codes() -> Tuple[str, ...]:
    """Every registered project rule code, in registration order."""
    return tuple(PROJECT_RULES)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _benchmark_module(module: ModuleInfo) -> bool:
    parts = module.norm_path.split("/")
    return "benchmarks" in parts or parts[-1] == "bench.py"


_WALLCLOCK_NAMES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


def _canonical_call_name(module: ModuleInfo, func: ast.expr) -> Optional[str]:
    """Dotted callee name with the module's import table applied."""
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    canonical = module.imports.get(head)
    if canonical is None:
        return dotted
    return f"{canonical}.{rest}" if rest else canonical


# ---------------------------------------------------------------------------
# CACHE001 — campaign cache purity
# ---------------------------------------------------------------------------


_FS_READ_METHODS = frozenset({"read_text", "read_bytes"})
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "extend",
        "insert",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
    }
)
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


@register_project
class CachePurityRule(ProjectRule):
    """Experiment entry points must be pure functions of (name, params, seed).

    The campaign layer caches results content-addressed by experiment
    name + source digest + params + seed. Anything an entry point reads
    that is *not* in that key — ``os.environ``, files, the wall clock,
    module-level mutable state — silently poisons the cache: two runs
    with the same key may produce different payloads. This rule walks
    the call graph from every registry entry point and flags such reads
    (and mutations of module-level mutable globals) anywhere in the
    transitive callee set.
    """

    code = "CACHE001"
    summary = "experiment entry transitively reads env/fs/clock/mutable globals"

    def __init__(self) -> None:
        #: (target module, function, registry package, label) rows;
        #: resolved against the loaded project in :meth:`analyze`.
        self.raw_entries: List[Tuple[str, str, str, str]] = []
        #: entry qname -> "module:function" registry label
        self.entries: Dict[str, str] = {}
        #: module-level mutable global -> defining module name
        self.mutable_globals: Dict[str, str] = {}

    # -- collect ------------------------------------------------------
    def collect(self, module: ModuleInfo) -> None:
        if module.tree is None:
            return
        self._collect_mutable_globals(module)
        if not module.norm_path.endswith("experiments/__init__.py"):
            return
        for stmt in module.tree.body:
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and target.id == "REGISTRY":
                    value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if stmt.target.id == "REGISTRY":
                    value = stmt.value
            if not isinstance(value, ast.Dict):
                continue
            for val in value.values:
                if not (
                    isinstance(val, ast.Constant) and isinstance(val.value, str)
                ):
                    continue
                mod_part, _, fn_part = val.value.partition(":")
                if not fn_part:
                    continue
                self.raw_entries.append(
                    (mod_part, fn_part, module.name, val.value)
                )

    def _collect_mutable_globals(self, module: ModuleInfo) -> None:
        assert module.tree is not None
        for stmt in module.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            if value is None:
                continue
            mutable = isinstance(value, (ast.List, ast.Dict, ast.Set))
            if isinstance(value, ast.Call):
                callee = value.func
                callee_name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute) else None
                )
                mutable = callee_name in _MUTABLE_FACTORIES
            if not mutable:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.mutable_globals[f"{module.name}.{target.id}"] = module.name

    # -- analyze ------------------------------------------------------
    def analyze(self, project: Project) -> Iterator[Finding]:
        # Registry targets may be absolute ("repro.experiments.figure1:
        # run_figure1") or package-relative ("figure1:run_figure1").
        for mod_part, fn_part, package, label in self.raw_entries:
            if mod_part in project.modules:
                self.entries[f"{mod_part}.{fn_part}"] = label
            else:
                self.entries[f"{package}.{mod_part}.{fn_part}"] = label
        if not self.entries:
            return
        graph = project.callgraph()
        # BFS with parent pointers for "how did we get here" reporting.
        origin: Dict[str, str] = {}
        queue: List[str] = []
        for qname in sorted(self.entries):
            if qname in graph.functions and qname not in origin:
                origin[qname] = qname
                queue.append(qname)
        while queue:
            current = queue.pop(0)
            for callee in graph.edges.get(current, ()):
                if callee not in origin and callee in graph.functions:
                    origin[callee] = origin[current]
                    queue.append(callee)
        reported: Set[Tuple[str, int, str]] = set()
        for qname in sorted(origin):
            fn = graph.functions[qname]
            if fn.node is None or qname.endswith(f".{MODULE_BODY}"):
                continue
            entry = self.entries[origin[qname]]
            for node, what in self._impure_sites(graph, fn):
                key = (fn.module.norm_path, getattr(node, "lineno", 1), what)
                if key in reported:
                    continue
                reported.add(key)
                where = (
                    "" if origin[qname] == qname else f" (reached via {qname})"
                )
                yield self.finding(
                    fn.module,
                    node,
                    f"experiment entry '{entry}' transitively reads {what}"
                    f"{where}; cached results are keyed only on "
                    "(name, source digest, params, seed) — thread the value "
                    "through params instead",
                )

    def _impure_sites(
        self, graph: CallGraph, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.AST, str]]:
        module = fn.module
        for node in _own_nodes(fn):
            if isinstance(node, ast.Call):
                name = _canonical_call_name(module, node.func)
                if name in _WALLCLOCK_NAMES:
                    yield node, f"the wall clock ({name}())"
                elif name == "os.getenv" or (
                    name is not None and name.startswith("os.environ.")
                ):
                    yield node, "os.environ"
                elif isinstance(node.func, ast.Name) and node.func.id == "open":
                    if id(node) not in graph.call_targets:
                        yield node, "the filesystem (open())"
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _FS_READ_METHODS
                ):
                    yield node, f"the filesystem (.{node.func.attr}())"
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATING_METHODS
                ):
                    target = self._global_target(module, node.func.value)
                    if target is not None:
                        yield node, (
                            f"module-level mutable state ('{target}' "
                            f"mutated via .{node.func.attr}())"
                        )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                name = _canonical_call_name(module, node)
                if name == "os.environ":
                    yield node, "os.environ"
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                target = self._global_target(module, node.value)
                if target is not None:
                    yield node, (
                        f"module-level mutable state ('{target}' written "
                        "by subscript)"
                    )

    def _global_target(
        self, module: ModuleInfo, node: ast.expr
    ) -> Optional[str]:
        """Fully-qualified mutable-global name, if ``node`` names one."""
        if isinstance(node, ast.Name):
            local = f"{module.name}.{node.id}"
            if local in self.mutable_globals:
                return local
            imported = module.imports.get(node.id)
            if imported is not None and imported in self.mutable_globals:
                return imported
        elif isinstance(node, ast.Attribute):
            dotted = _canonical_call_name(module, node)
            if dotted is not None and dotted in self.mutable_globals:
                return dotted
        return None


# ---------------------------------------------------------------------------
# TAG002 — tag-math parity (no re-derivation of eq. 4 / eq. 37)
# ---------------------------------------------------------------------------


_EQ37_WORDS = _TAG_WORDS + ("eat", "arrival", "service", "expected")


def _mentions_any(node: ast.AST, words: Tuple[str, ...]) -> bool:
    for sub in ast.walk(node):
        name: Optional[str] = None
        if isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Name):
            name = sub.id
        if name is None:
            continue
        lowered = name.lower()
        if lowered.endswith("_tag"):
            return True
        for word in words:
            if word in lowered:
                return True
    return False


def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Expressions of one statement, not descending into nested bodies.

    CFG nodes for compound statements (``if``/``while``/``for``) hold
    the whole statement including its body, but the body statements are
    their own CFG nodes — walking the full subtree would report each
    nested expression once per enclosing level.
    """
    roots: List[ast.expr]
    if isinstance(stmt, (ast.If, ast.While)):
        roots = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = [item.context_expr for item in stmt.items]
    elif isinstance(
        stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        roots = []  # nested defs are their own call-graph entries
    else:
        roots = [stmt]  # type: ignore[list-item]
    for root in roots:
        for sub in ast.walk(root):
            if isinstance(sub, ast.expr):
                yield sub


def _is_max2(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "max"
        and len(node.args) == 2
        and not node.keywords
    )


def _contains_div(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div)
        for sub in ast.walk(node)
    )


@register_project
class TagMathParityRule(ProjectRule):
    """Eq. 4 / eq. 37 must be computed by ``repro.core.tagmath`` only.

    Tags are exact-float state: ``S = max(v, F_prev); F = S + l/r``
    (eq. 4) and ``EAT = max(A, EAT_prev + P_prev)`` (eq. 37) re-derived
    inline anywhere else will eventually drift by an ulp from the shared
    kernel (that is exactly how the PR 7 regression happened), breaking
    byte-identical trace equivalence between backends. Every discipline
    and the slab backend must call ``tagmath.start_finish`` /
    ``tagmath.eat_step``; this rule uses reaching definitions to connect
    a ``max(...)`` assignment with the ``start + l/r`` expression that
    completes the re-derivation even when they are statements apart.
    """

    code = "TAG002"
    summary = "inline re-derivation of eq. 4 / eq. 37 outside repro.core.tagmath"

    def analyze(self, project: Project) -> Iterator[Finding]:
        graph = project.callgraph()
        for qname in sorted(graph.functions):
            fn = graph.functions[qname]
            if fn.node is None:
                continue
            if fn.module.name.endswith("tagmath"):
                continue
            yield from self._check_function(fn)

    def _check_function(self, fn: FunctionInfo) -> Iterator[Finding]:
        body = self._body(fn)
        if not body:
            return
        cfg = build_cfg(body)
        reaching = reaching_definitions(cfg)
        # max2 assignments by (name, def line).
        max_defs: Dict[Tuple[str, str], ast.stmt] = {}
        for node in cfg.nodes:
            stmt = node.stmt
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and _is_max2(stmt.value):
                    max_defs[(target.id, str(stmt.lineno))] = stmt
        for node, env in zip(cfg.nodes, reaching):
            yield from self._check_stmt(fn, node.stmt, env, max_defs)

    def _check_stmt(
        self,
        fn: FunctionInfo,
        stmt: ast.stmt,
        env: Dict[str, "frozenset[str]"],
        max_defs: Dict[Tuple[str, str], ast.stmt],
    ) -> Iterator[Finding]:
        for expr in _stmt_exprs(stmt):
            if not isinstance(expr, ast.BinOp) or not isinstance(expr.op, ast.Add):
                continue
            for side, other in ((expr.left, expr.right), (expr.right, expr.left)):
                # Inline: max(a, b) + <... l/r ...>   (eq. 4 in one expr)
                if _is_max2(side) and _contains_div(other):
                    yield self.finding(
                        fn.module,
                        expr,
                        "inline eq. 4 (`max(...) + length/rate`) re-derives "
                        "the start/finish tags; call "
                        "repro.core.tagmath.start_finish instead",
                    )
                    break
                # Split: start = max(a, b) ... start + l/r  (reaching def)
                if isinstance(side, ast.Name) and _contains_div(other):
                    lines = env.get(side.id, frozenset())
                    if any(
                        (side.id, line) in max_defs for line in lines
                    ):
                        yield self.finding(
                            fn.module,
                            expr,
                            f"`{side.id}` is max(...) two-arg (eq. 4 start "
                            "tag) and this adds a length/rate term — the "
                            "finish-tag re-derivation belongs to "
                            "repro.core.tagmath.start_finish",
                        )
                        break
            else:
                continue
            return  # one finding per statement is enough
        # eq. 37: max(arrival-ish, prev + service-ish) on tag vocabulary.
        for expr in _stmt_exprs(stmt):
            if (
                _is_max2(expr)
                and isinstance(expr, ast.Call)
                and isinstance(expr.args[1], ast.BinOp)
                and isinstance(expr.args[1].op, ast.Add)
                and _mentions_any(expr, _EQ37_WORDS)
            ):
                yield self.finding(
                    fn.module,
                    expr,
                    "inline eq. 37 (`max(arrival, prev_eat + prev_service)`) "
                    "re-derives the expected-arrival recurrence; call "
                    "repro.core.tagmath.eat_step instead",
                )
                return

    def _body(self, fn: FunctionInfo) -> List[ast.stmt]:
        node = fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return list(node.body)
        if isinstance(node, ast.Module):
            return [
                stmt
                for stmt in node.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        return []


# ---------------------------------------------------------------------------
# DET006 — interprocedural determinism taint
# ---------------------------------------------------------------------------


@register_project
class InterproceduralTaintRule(ProjectRule):
    """Nondeterministic values crossing function boundaries into scheduling.

    DET002/DET003/DET004 catch wall-clock reads, unordered iteration and
    ``id()`` syntactically, in the function where they appear. This rule
    catches what they cannot: a ``time.time()`` returned by a helper
    three calls away and passed into ``sim.call_at``, or a set iterated
    in one function whose elements another function turns into tags.
    Taint summaries (which labels a function returns, which parameters
    reach a sink inside it) are computed to fixpoint over the call
    graph; ``sorted()`` launders iteration-order taint.
    """

    code = "DET006"
    summary = "time()/id()/unordered-iteration value reaches scheduling across calls"

    def analyze(self, project: Project) -> Iterator[Finding]:
        graph = project.callgraph()
        table = project.summaries()
        for qname in sorted(graph.functions):
            fn = graph.functions[qname]
            if fn.node is None or qname.endswith(f".{MODULE_BODY}"):
                continue
            hits = table.sink_hits(
                fn, wallclock_ok=_benchmark_module(fn.module)
            )
            seen: Set[Tuple[int, int, str]] = set()
            for hit in hits:
                labels = "+".join(sorted(hit.labels))
                via = f" inside {hit.via}" if hit.via else ""
                key = (
                    getattr(hit.node, "lineno", 1),
                    getattr(hit.node, "col_offset", 0),
                    f"{labels}|{hit.sink}|{hit.via or ''}",
                )
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    fn.module,
                    hit.node,
                    f"{labels}-tainted value reaches scheduling sink "
                    f"`{hit.sink}`{via}; derive event times/tags from "
                    "simulation state and sort unordered collections first",
                )
