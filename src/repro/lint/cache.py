"""Digest-keyed analysis cache for the lint engine.

Two granularities, both content-addressed:

* **per-file** — module-rule findings for one file, keyed by the file's
  source digest plus the active ruleset signature. Editing one file
  invalidates exactly that file's entry.
* **per-project** — the full deduplicated finding list for a whole run,
  keyed by the combined digest of every ``(path, digest)`` pair plus
  the ruleset signature. A warm run with no file changed is a single
  JSON read; the engine does not even parse the tree.

Cached findings are post-suppression (directives live in the source, so
the digest covers them) and pre-baseline (the baseline is applied at
report time — editing ``lint-baseline.json`` must not need a cache
flush). The ruleset signature folds in :data:`ENGINE_VERSION`; bump it
whenever rule logic changes so stale caches self-invalidate.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

__all__ = ["AnalysisCache", "ENGINE_VERSION", "ruleset_signature"]

#: Bump to invalidate every cache entry (rule-logic changes).
ENGINE_VERSION = "2"

#: Default cache location (relative to the invocation cwd).
DEFAULT_CACHE_DIR = "results/.cache/lint"


def ruleset_signature(codes: Iterable[str]) -> str:
    """Stable signature of an active rule set (order-insensitive)."""
    payload = ",".join(sorted(codes)) + "|" + ENGINE_VERSION
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


def _dump(findings: Sequence[Finding]) -> List[dict]:
    return [finding.to_dict() for finding in findings]


def _load(rows: List[dict]) -> List[Finding]:
    return [
        Finding(
            rule=str(row["rule"]),
            message=str(row["message"]),
            path=str(row["path"]),
            line=int(row["line"]),  # type: ignore[call-overload]
            col=int(row["col"]),  # type: ignore[call-overload]
        )
        for row in rows
    ]


class AnalysisCache:
    """Findings cache rooted at one directory; misses never raise."""

    __slots__ = ("root",)

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    # -- keys ---------------------------------------------------------
    @staticmethod
    def project_key(
        file_digests: Iterable[Tuple[str, str]], signature: str
    ) -> str:
        acc = hashlib.sha256()
        for path, digest in sorted(file_digests):
            acc.update(path.encode("utf-8"))
            acc.update(digest.encode("ascii"))
        acc.update(signature.encode("ascii"))
        return acc.hexdigest()

    # -- per-file -----------------------------------------------------
    def get_file(self, digest: str, signature: str) -> Optional[List[Finding]]:
        return self._read(self.root / f"file-{digest[:32]}-{signature}.json")

    def put_file(
        self, digest: str, signature: str, findings: Sequence[Finding]
    ) -> None:
        self._write(
            self.root / f"file-{digest[:32]}-{signature}.json", findings
        )

    # -- per-project --------------------------------------------------
    def get_project(self, key: str) -> Optional[List[Finding]]:
        return self._read(self.root / f"project-{key[:32]}.json")

    def put_project(self, key: str, findings: Sequence[Finding]) -> None:
        self._write(self.root / f"project-{key[:32]}.json", findings)

    # -- IO (failure == miss) -----------------------------------------
    def _read(self, path: Path) -> Optional[List[Finding]]:
        try:
            rows = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        try:
            return _load(rows)
        except (KeyError, TypeError, ValueError):
            return None

    def _write(self, path: Path, findings: Sequence[Finding]) -> None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(_dump(findings), sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # read-only checkout: run uncached
