"""Whole-program loader: every module of the tree, parsed once.

The per-file rules of :mod:`repro.lint.rules` see one
:class:`~repro.lint.rules.ModuleContext` at a time; the *semantic*
rules (CACHE001, TAG002, DET006) need to see across files — which
experiment entry point eventually calls ``os.environ.get``, whether a
wall-clock value returned by a helper three modules away reaches
``call_at``. This module provides the shared substrate those rules
analyze:

:class:`ModuleInfo`
    One parsed file: dotted module name, AST, source, a content digest
    (the analysis-cache key), parsed suppression directives, and the
    import table mapping local aliases to fully-qualified names.

:class:`Project`
    The module graph. Lazily builds (and memoizes) the call graph
    (:mod:`repro.lint.callgraph`) and the interprocedural taint
    summaries (:mod:`repro.lint.dataflow`) so that rules needing
    neither pay for neither.

Module names are derived from file paths relative to the scan roots,
with a leading ``src/`` component dropped — ``src/repro/core/sfq.py``
becomes ``repro.core.sfq`` whether the tree is scanned as ``src`` or
from inside it, and fixture projects in temporary directories resolve
the same way (``<tmp>/proj/experiments/__init__.py`` scanned at
``<tmp>`` is ``proj.experiments``).
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.lint.findings import parse_suppressions
from repro.lint.rules import ModuleContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.callgraph import CallGraph
    from repro.lint.dataflow import SummaryTable

__all__ = ["ModuleInfo", "Project", "load_project", "source_digest"]


def source_digest(source: str) -> str:
    """Content digest used as the per-file analysis-cache key."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class ModuleInfo:
    """One parsed module of the project."""

    __slots__ = (
        "name",
        "path",
        "norm_path",
        "source",
        "digest",
        "tree",
        "suppressions",
        "imports",
        "context",
        "syntax_error",
    )

    def __init__(
        self,
        name: str,
        path: str,
        source: str,
        tree: Optional[ast.Module],
        syntax_error: Optional[SyntaxError] = None,
    ) -> None:
        self.name = name
        self.path = path
        self.norm_path = path.replace("\\", "/")
        self.source = source
        self.digest = source_digest(source)
        self.tree = tree
        self.syntax_error = syntax_error
        self.suppressions: Mapping[int, FrozenSet[str]] = parse_suppressions(source)
        self.imports: Dict[str, str] = {}
        self.context: Optional[ModuleContext] = None
        if tree is not None:
            self.context = ModuleContext(path=path, source=source, tree=tree)
            self._collect_imports(tree)

    def _collect_imports(self, tree: ast.Module) -> None:
        """Map local aliases to fully-qualified dotted names.

        ``import a.b`` binds ``a`` to module ``a`` (attribute access
        walks the rest); ``import a.b as c`` binds ``c`` to ``a.b``;
        ``from a.b import c as d`` binds ``d`` to ``a.b.c``. Relative
        imports are resolved against this module's own package.
        """
        package_parts = self.name.split(".")[:-1]
        if self.name.endswith("__init__") or self.norm_path.endswith("__init__.py"):
            package_parts = self.name.split(".")
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        self.imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base: Optional[str]
                if node.level:
                    up = node.level - 1
                    anchor = package_parts[: len(package_parts) - up] if up else package_parts
                    base = ".".join(anchor + ([node.module] if node.module else []))
                else:
                    base = node.module
                if not base:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = f"{base}.{alias.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModuleInfo({self.name!r}, path={self.path!r})"


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name for ``path`` relative to scan root ``root``."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


class Project:
    """The module graph plus lazily-built whole-program analyses."""

    __slots__ = ("modules", "by_path", "_callgraph", "_summaries")

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        for info in modules:
            # A package's __init__ and a like-named sibling cannot
            # collide in a real tree; last one wins deterministically.
            self.modules[info.name] = info
            self.by_path[info.norm_path] = info
        self._callgraph: Optional["CallGraph"] = None
        self._summaries: Optional["SummaryTable"] = None

    def __len__(self) -> int:
        return len(self.modules)

    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        """Look up a module by (normalized) display path."""
        return self.by_path.get(path.replace("\\", "/"))

    def combined_digest(self) -> str:
        """Digest of every (path, file digest) pair — the project key.

        Any content change in any file changes this, which is what the
        project-level analysis cache keys on.
        """
        acc = hashlib.sha256()
        for path in sorted(self.by_path):
            info = self.by_path[path]
            acc.update(path.encode("utf-8"))
            acc.update(info.digest.encode("ascii"))
        return acc.hexdigest()

    def callgraph(self) -> "CallGraph":
        """The project call graph (built once, memoized)."""
        if self._callgraph is None:
            from repro.lint.callgraph import build_callgraph

            self._callgraph = build_callgraph(self)
        return self._callgraph

    def summaries(self) -> "SummaryTable":
        """Interprocedural taint summaries (built once, memoized)."""
        if self._summaries is None:
            from repro.lint.dataflow import build_summaries

            self._summaries = build_summaries(self)
        return self._summaries

    def suppressed(self, path: str, line: int, rule: str) -> bool:
        """True when an inline directive covers (path, line, rule)."""
        info = self.module_for_path(path)
        if info is None:
            return False
        codes = info.suppressions.get(line)
        if not codes:
            return False
        return "ALL" in codes or rule.upper() in codes


def load_project(
    paths: Iterable[str],
    files: Optional[Iterable[Tuple[str, str]]] = None,
) -> Project:
    """Parse a whole tree (or in-memory fixtures) into a :class:`Project`.

    ``paths`` are files or directories, expanded exactly like
    :func:`repro.lint.analyzer.iter_python_files`. ``files`` bypasses
    the filesystem entirely with ``(path, source)`` pairs — the fixture
    tests build multi-module projects this way.

    Files that fail to parse still join the project (so their digest
    participates in the cache key and SYNTAX findings can be reported);
    they simply have no AST and take no part in graph building.
    """
    from repro.lint.analyzer import iter_python_files

    infos: List[ModuleInfo] = []
    if files is not None:
        roots = [Path(".")]
        for path, source in files:
            infos.append(_parse_one(Path(path), Path("."), source))
    else:
        roots = [Path(p) if Path(p).is_dir() else Path(p).parent for p in paths]
        for file_path in iter_python_files(paths):
            root = _root_for(file_path, roots)
            source = file_path.read_text(encoding="utf-8")
            infos.append(_parse_one(file_path, root, source))
    return Project(infos)


def _root_for(path: Path, roots: List[Path]) -> Path:
    resolved = path.resolve()
    for root in roots:
        try:
            resolved.relative_to(root.resolve())
            return root
        except ValueError:
            continue
    return path.parent


def _parse_one(path: Path, root: Path, source: str) -> ModuleInfo:
    name = _module_name(path, root)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return ModuleInfo(name, str(path), source, None, syntax_error=exc)
    return ModuleInfo(name, str(path), source, tree)
