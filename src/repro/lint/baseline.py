"""Committed findings baseline — land new rules without a flag day.

A baseline file (``lint-baseline.json`` at the repo root by default)
records known, justified findings; the engine subtracts them from the
report so only *new* violations fail the gate. Entries are keyed
``(path, rule, message)`` with an occurrence count — deliberately not
by line, so unrelated edits that shift line numbers don't invalidate
the baseline, while a genuinely new occurrence of the same finding
(count exceeded) still fails.

Workflow::

    python -m repro lint src --write-baseline   # snapshot current findings
    # edit lint-baseline.json: add a justification per entry
    python -m repro lint src                    # gate passes; new findings fail

Fixed findings leave stale entries behind; ``Baseline.unused()`` (and
the test-suite self-check) reports them so the file ratchets down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_PATH"]

DEFAULT_BASELINE_PATH = "lint-baseline.json"

_Key = Tuple[str, str, str]


class Baseline:
    """In-memory view of a baseline file."""

    __slots__ = ("entries", "justifications", "_remaining")

    def __init__(self) -> None:
        self.entries: Dict[_Key, int] = {}
        self.justifications: Dict[_Key, str] = {}
        self._remaining: Dict[_Key, int] = {}

    # -- construction -------------------------------------------------
    @classmethod
    def load(cls, path: str) -> Optional["Baseline"]:
        """Parse a baseline file; None when absent, raises on malformed."""
        file_path = Path(path)
        if not file_path.is_file():
            return None
        data = json.loads(file_path.read_text(encoding="utf-8"))
        baseline = cls()
        for row in data.get("entries", []):
            key = (
                str(row["path"]).replace("\\", "/"),
                str(row["rule"]),
                str(row["message"]),
            )
            count = int(row.get("count", 1))
            baseline.entries[key] = baseline.entries.get(key, 0) + count
            if row.get("justification"):
                baseline.justifications[key] = str(row["justification"])
        baseline.reset()
        return baseline

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = _key(finding)
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
        baseline.reset()
        return baseline

    # -- matching -----------------------------------------------------
    def reset(self) -> None:
        self._remaining = dict(self.entries)

    def filter(self, findings: Sequence[Finding]) -> List[Finding]:
        """Findings not covered by the baseline (consumes counts)."""
        self.reset()
        out: List[Finding] = []
        for finding in findings:
            key = _key(finding)
            left = self._remaining.get(key, 0)
            if left > 0:
                self._remaining[key] = left - 1
            else:
                out.append(finding)
        return out

    def suppressed_count(self) -> int:
        """Findings absorbed by the last :meth:`filter` call."""
        used = sum(
            self.entries[key] - left for key, left in self._remaining.items()
        )
        return used

    def unused(self) -> List[_Key]:
        """Entries (or counts) no current finding matched — stale rows."""
        return sorted(
            key for key, left in self._remaining.items() if left > 0
        )

    # -- persistence --------------------------------------------------
    def write(self, path: str) -> None:
        rows = []
        for key in sorted(self.entries):
            entry_path, rule, message = key
            rows.append(
                {
                    "path": entry_path,
                    "rule": rule,
                    "message": message,
                    "count": self.entries[key],
                    "justification": self.justifications.get(key, ""),
                }
            )
        Path(path).write_text(
            json.dumps({"version": 1, "entries": rows}, indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )


def _key(finding: Finding) -> _Key:
    return (finding.path.replace("\\", "/"), finding.rule, finding.message)
