"""AST walk + rule dispatch + suppression filtering.

The analyzer is pure and filesystem-optional: :func:`lint_source` lints
an in-memory string (what the fixture tests use), :func:`lint_paths`
walks files/directories. Rule selection mirrors flake8's
``--select`` / ``--ignore`` semantics: selection first, then ignores.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import (
    Finding,
    is_suppressed,
    parse_suppressions,
    sort_findings,
)
from repro.lint.rules import RULES, ModuleContext, Rule


class LintUsageError(Exception):
    """Raised for bad rule selections (unknown codes)."""


def resolve_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[Rule, ...]:
    """The active rule set after ``--select`` / ``--ignore`` filtering."""
    known = set(RULES)
    chosen = list(RULES)
    if select:
        wanted = [code.strip().upper() for code in select if code.strip()]
        unknown = sorted(set(wanted) - known)
        if unknown:
            raise LintUsageError(
                f"unknown rule(s) in --select: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        chosen = [code for code in RULES if code in set(wanted)]
    if ignore:
        dropped = [code.strip().upper() for code in ignore if code.strip()]
        unknown = sorted(set(dropped) - known)
        if unknown:
            raise LintUsageError(
                f"unknown rule(s) in --ignore: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        chosen = [code for code in chosen if code not in set(dropped)]
    return tuple(RULES[code] for code in chosen)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module given as a string.

    ``path`` participates in path-scoped rule logic (DET002's benchmark
    exemption, PERF001's hot-path scope), so fixture tests pass
    synthetic paths like ``"repro/core/fixture.py"`` to opt in.
    Syntax errors are reported as a single ``SYNTAX`` finding rather
    than raised — a linter must survive unparsable input.
    """
    active: Sequence[Rule] = RULES_DEFAULT if rules is None else rules
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="SYNTAX",
                message=f"could not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    ctx = ModuleContext(path=path, source=source, tree=tree)
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    for rule in active:
        for finding in rule.check(ctx):
            if not is_suppressed(finding, suppressions):
                findings.append(finding)
    return sort_findings(findings)


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    seen: List[Path] = []
    seen_set: Set[str] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            key = str(candidate)
            if "egg-info" in key:
                continue
            if key not in seen_set:
                seen_set.add(key)
                seen.append(candidate)
    return seen


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(path), rules=rules))
    return sort_findings(findings)


#: Default rule set (all registered rules, registration order).
RULES_DEFAULT: Tuple[Rule, ...] = tuple(RULES.values())
