"""``python -m repro lint`` — the CLI front end of the analyzer.

Exit codes: 0 clean, 1 findings reported, 2 usage error (unknown rule
code). ``--format json`` emits a machine-readable report (one object
with ``findings`` and ``stats``); ``--format sarif`` emits SARIF 2.1.0
for code-scanning upload. ``--changed REF`` scopes the *report* to
files changed vs a git ref while the analysis still sees the whole
project, which is what makes it a sound fast pre-gate. A committed
``lint-baseline.json`` (``--baseline`` to point elsewhere,
``--no-baseline`` to ignore it) subtracts known, justified findings so
only new violations fail.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.lint.analyzer import LintUsageError
from repro.lint.baseline import DEFAULT_BASELINE_PATH, Baseline
from repro.lint.cache import AnalysisCache
from repro.lint.engine import analyze_paths, git_changed_files
from repro.lint.findings import Finding
from repro.lint.rules import RULES
from repro.lint.rules_project import PROJECT_RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _split_codes(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part for part in value.replace(",", " ").split() if part]


def build_lint_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Configure lint arguments on ``parser`` (or a fresh one)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="determinism & scheduler-invariant static analysis",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--changed",
        default=None,
        metavar="REF",
        help=(
            "report only findings in files changed vs this git ref "
            "(analysis still covers the whole project)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_PATH,
        metavar="PATH",
        help=(
            "baseline file of known findings to subtract "
            f"(default: {DEFAULT_BASELINE_PATH} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="analysis cache directory (default: results/.cache/lint)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the analysis cache",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (module and project rules) and exit",
    )
    return parser


def render_text(findings: Sequence[Finding]) -> str:
    """Render findings as ``path:line:col: CODE message`` lines plus a
    per-rule summary line (empty string when there are no findings)."""
    lines = [finding.format() for finding in findings]
    by_rule = Counter(finding.rule for finding in findings)
    if findings:
        summary = ", ".join(
            f"{code}: {count}" for code, count in sorted(by_rule.items())
        )
        lines.append(f"{len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Render findings as a JSON document with ``findings`` and
    ``stats`` keys (for editor and CI integration)."""
    by_rule = Counter(finding.rule for finding in findings)
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "stats": {
                "total": len(findings),
                "by_rule": dict(sorted(by_rule.items())),
            },
        },
        indent=2,
        sort_keys=True,
    )


def _rule_summary(code: str) -> str:
    if code in RULES:
        return RULES[code].summary
    if code in PROJECT_RULES:
        return PROJECT_RULES[code].summary
    if code == "SYNTAX":
        return "file could not be parsed"
    return ""


def render_sarif(findings: Sequence[Finding]) -> str:
    """Render findings as a SARIF 2.1.0 log (single run).

    ``SYNTAX`` pseudo-findings map to level ``error`` (the file could
    not be analysed at all); rule findings map to ``warning``. Columns
    are 0-based internally and 1-based in SARIF, matching lines.
    """
    codes = sorted({finding.rule for finding in findings})
    rules = [
        {
            "id": code,
            "shortDescription": {"text": _rule_summary(code) or code},
        }
        for code in codes
    ]
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": codes.index(finding.rule),
            "level": "error" if finding.rule == "SYNTAX" else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def _render(findings: Sequence[Finding], fmt: str) -> str:
    if fmt == "json":
        return render_json(findings)
    if fmt == "sarif":
        return render_sarif(findings)
    return render_text(findings)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        catalog: Dict[str, str] = {
            code: rule.summary for code, rule in RULES.items()
        }
        catalog.update(
            (code, cls.summary) for code, cls in PROJECT_RULES.items()
        )
        width = max(len(code) for code in catalog)
        for code in catalog:
            print(f"{code:<{width}}  {catalog[code]}")
        return 0

    cache: Optional[AnalysisCache] = None
    if not args.no_cache:
        cache = (
            AnalysisCache(args.cache_dir) if args.cache_dir else AnalysisCache()
        )
    baseline: Optional[Baseline] = None
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(args.baseline)
    changed = None
    if args.changed is not None:
        changed = git_changed_files(args.changed)
        if changed is None:
            print(
                f"repro lint: could not resolve --changed {args.changed}; "
                "running unscoped",
                file=sys.stderr,
            )

    try:
        result = analyze_paths(
            args.paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            cache=cache,
            baseline=baseline,
            changed_files=changed,
        )
    except LintUsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(result.raw_findings).write(args.baseline)
        print(
            f"wrote {len(result.raw_findings)} finding(s) to {args.baseline}"
        )
        return 0

    findings = result.findings
    report = _render(findings, args.format)
    if report:
        print(report)
    if baseline is not None and args.format == "text":
        suppressed = result.baselined_count
        stale = baseline.unused()
        if suppressed:
            print(
                f"{suppressed} finding(s) matched the baseline "
                f"({args.baseline})",
                file=sys.stderr,
            )
        if stale and changed is None:
            for key in stale:
                print(
                    f"stale baseline entry: {key[0]} {key[1]} {key[2]!r}",
                    file=sys.stderr,
                )
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = build_lint_parser()
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
