"""``python -m repro lint`` — the CLI front end of the analyzer.

Exit codes: 0 clean, 1 findings reported, 2 usage error (unknown rule
code). ``--format json`` emits a machine-readable report (one object
with ``findings`` and ``stats``) for CI annotation tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import List, Optional, Sequence

from repro.lint.analyzer import LintUsageError, lint_paths, resolve_rules
from repro.lint.findings import Finding
from repro.lint.rules import RULES


def _split_codes(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [part for part in value.replace(",", " ").split() if part]


def build_lint_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Configure lint arguments on ``parser`` (or a fresh one)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="determinism & scheduler-invariant static analysis",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def render_text(findings: Sequence[Finding]) -> str:
    """Render findings as ``path:line:col: CODE message`` lines plus a
    per-rule summary line (empty string when there are no findings)."""
    lines = [finding.format() for finding in findings]
    by_rule = Counter(finding.rule for finding in findings)
    if findings:
        summary = ", ".join(
            f"{code}: {count}" for code, count in sorted(by_rule.items())
        )
        lines.append(f"{len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Render findings as a JSON document with ``findings`` and
    ``stats`` keys (for editor and CI integration)."""
    by_rule = Counter(finding.rule for finding in findings)
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "stats": {
                "total": len(findings),
                "by_rule": dict(sorted(by_rule.items())),
            },
        },
        indent=2,
        sort_keys=True,
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        width = max(len(code) for code in RULES)
        for code, rule in RULES.items():
            print(f"{code:<{width}}  {rule.summary}")
        return 0
    try:
        rules = resolve_rules(
            select=_split_codes(args.select), ignore=_split_codes(args.ignore)
        )
    except LintUsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    findings = lint_paths(args.paths, rules=rules)
    report = (
        render_json(findings) if args.format == "json" else render_text(findings)
    )
    if report:
        print(report)
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = build_lint_parser()
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
