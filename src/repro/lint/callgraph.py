"""Call-graph construction over the resolved module graph.

Builds, for a loaded :class:`~repro.lint.project.Project`:

* a **symbol table** — every function, class, and method in the
  project under its fully-qualified name (``repro.core.sfq.SFQScheduler
  ._do_enqueue``), plus per-class attribute types recovered from
  ``__init__`` assignments of annotated parameters and from annotated
  class/instance attributes (the ``__slots__``-and-annotations
  discipline the tree already follows is what makes this tractable);
* **call edges** — caller qname → callee qnames, resolving direct
  calls, imported names (following re-export chains through package
  ``__init__`` modules), ``self.method()`` through the in-project MRO,
  and method calls on variables whose class is known from a parameter
  annotation, an ``AnnAssign``, or a visible constructor call;
* **reference edges** — passing a function object (``sim.at(0.0,
  inject)``) counts as an edge to ``inject``: anything the event loop
  may invoke on the caller's behalf is reachable from the caller,
  which is exactly the semantics the purity rule (CACHE001) needs;
* a **per-call-node resolution map** so the dataflow engine
  (:mod:`repro.lint.dataflow`) can ask "which summaries apply to this
  ``ast.Call``" without re-resolving.

Resolution is deliberately *static and partial*: a call that cannot be
resolved contributes no edge. Virtual dispatch is approximated — a
method resolved to an abstract/``NotImplementedError`` body fans out to
every in-project override — which keeps edges tight on concrete code
while still seeing through the ``Scheduler``/``CapacityProcess``
template-method seams.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.project import ModuleInfo, Project

__all__ = ["CallGraph", "FunctionInfo", "ClassInfo", "build_callgraph"]

#: Module-body pseudo-function suffix.
MODULE_BODY = "<module>"


class FunctionInfo:
    """One function or method in the project."""

    __slots__ = ("qname", "module", "node", "class_qname", "param_names")

    def __init__(
        self,
        qname: str,
        module: ModuleInfo,
        node: Optional[ast.AST],
        class_qname: Optional[str] = None,
    ) -> None:
        self.qname = qname
        self.module = module
        self.node = node
        self.class_qname = class_qname
        self.param_names: Tuple[str, ...] = ()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
            self.param_names = tuple(names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qname!r})"


class ClassInfo:
    """One class: methods, base names, and recovered attribute types."""

    __slots__ = ("qname", "module", "node", "base_qnames", "methods", "attr_types")

    def __init__(self, qname: str, module: ModuleInfo, node: ast.ClassDef) -> None:
        self.qname = qname
        self.module = module
        self.node = node
        self.base_qnames: Tuple[str, ...] = ()
        self.methods: Dict[str, str] = {}  #: method name -> function qname
        self.attr_types: Dict[str, str] = {}  #: attr name -> class qname

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.qname!r})"


class CallGraph:
    """Resolved symbols, call/reference edges, and reachability."""

    __slots__ = (
        "project",
        "functions",
        "classes",
        "edges",
        "callers",
        "call_targets",
        "_subclasses",
    )

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: Dict[str, Tuple[str, ...]] = {}
        self.callers: Dict[str, Tuple[str, ...]] = {}
        #: id(ast.Call) -> resolved callee qnames for that call site.
        self.call_targets: Dict[int, Tuple[str, ...]] = {}
        self._subclasses: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable(self, roots: Iterable[str]) -> FrozenSet[str]:
        """Transitive closure of call+reference edges from ``roots``."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qname = stack.pop()
            if qname in seen:
                continue
            seen.add(qname)
            for callee in self.edges.get(qname, ()):
                if callee not in seen:
                    stack.append(callee)
        return frozenset(seen)

    def resolve_method(self, class_qname: str, method: str) -> Optional[str]:
        """Find ``method`` in the MRO of ``class_qname`` (project only)."""
        seen: Set[str] = set()
        stack = [class_qname]
        while stack:
            cq = stack.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            cls = self.classes.get(cq)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            stack.extend(cls.base_qnames)
        return None

    def subclasses(self, class_qname: str) -> Tuple[str, ...]:
        """Direct + transitive in-project subclasses of a class."""
        cached = self._subclasses.get(class_qname)
        if cached is not None:
            return cached
        out: List[str] = []
        seen: Set[str] = set()
        stack = [class_qname]
        while stack:
            current = stack.pop()
            for cq, cls in self.classes.items():
                if current in cls.base_qnames and cq not in seen:
                    seen.add(cq)
                    out.append(cq)
                    stack.append(cq)
        result = tuple(sorted(out))
        self._subclasses[class_qname] = result
        return result


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


def build_callgraph(project: Project) -> CallGraph:
    """Build the full call graph for a loaded project."""
    graph = CallGraph(project)
    for info in project.modules.values():
        if info.tree is not None:
            _index_module(graph, info)
    for info in project.modules.values():
        if info.tree is not None:
            _resolve_bases_and_attrs(graph, info)
    for info in project.modules.values():
        if info.tree is not None:
            _build_edges(graph, info)
    graph.callers = _invert(graph.edges)
    return graph


def _index_module(graph: CallGraph, info: ModuleInfo) -> None:
    """First pass: register every function, class, and method."""
    assert info.tree is not None
    module_fn = FunctionInfo(f"{info.name}.{MODULE_BODY}", info, info.tree)
    graph.functions[module_fn.qname] = module_fn
    for stmt in info.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _index_function(graph, info, stmt, prefix=info.name, class_qname=None)
        elif isinstance(stmt, ast.ClassDef):
            cq = f"{info.name}.{stmt.name}"
            cls = ClassInfo(cq, info, stmt)
            graph.classes[cq] = cls
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = _index_function(
                        graph, info, sub, prefix=cq, class_qname=cq
                    )
                    cls.methods[sub.name] = fn.qname


def _index_function(
    graph: CallGraph,
    info: ModuleInfo,
    node: ast.AST,
    prefix: str,
    class_qname: Optional[str],
) -> FunctionInfo:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    qname = f"{prefix}.{node.name}"
    fn = FunctionInfo(qname, info, node, class_qname=class_qname)
    graph.functions[qname] = fn
    # Nested defs become their own nodes, qualified by the parent.
    for stmt in ast.walk(node):
        if stmt is node:
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested_q = f"{qname}.{stmt.name}"
            if nested_q not in graph.functions:
                graph.functions[nested_q] = FunctionInfo(
                    nested_q, info, stmt, class_qname=class_qname
                )
    return fn


def _resolve_bases_and_attrs(graph: CallGraph, info: ModuleInfo) -> None:
    """Second pass: base-class qnames and per-class attribute types."""
    for cq, cls in graph.classes.items():
        if cls.module is not info:
            continue
        bases: List[str] = []
        for base in cls.node.bases:
            resolved = _resolve_symbol_expr(graph, info, base)
            if resolved is not None and resolved in graph.classes:
                bases.append(resolved)
        cls.base_qnames = tuple(bases)
        _collect_attr_types(graph, info, cls)


def _collect_attr_types(graph: CallGraph, info: ModuleInfo, cls: ClassInfo) -> None:
    """Recover ``self.attr`` class types from annotations/constructors."""
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            resolved = _resolve_annotation(graph, info, stmt.annotation)
            if resolved is not None:
                cls.attr_types[stmt.target.id] = resolved
    for stmt in cls.node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _param_types(graph, info, stmt)
        for node in ast.walk(stmt):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                ann = _resolve_annotation(graph, info, node.annotation)
                if (
                    ann is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.attr_types.setdefault(target.attr, ann)
                continue
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
                or value is None
            ):
                continue
            inferred = _infer_expr_type(graph, info, value, params)
            if inferred is not None:
                cls.attr_types.setdefault(target.attr, inferred)


# ---------------------------------------------------------------------------
# Name/annotation resolution helpers
# ---------------------------------------------------------------------------


def _resolve_qname(graph: CallGraph, qname: str, _depth: int = 0) -> Optional[str]:
    """Canonicalize a dotted name, following re-export chains.

    ``repro.simulation.Simulator`` (bound by the package ``__init__``
    via ``from repro.simulation.engine import Simulator``) resolves to
    ``repro.simulation.engine.Simulator``. Returns a qname that names a
    known function/class/module, or None.
    """
    if _depth > 16:  # re-export cycle guard
        return None
    if qname in graph.functions or qname in graph.classes:
        return qname
    project = graph.project
    if qname in project.modules:
        return qname
    head, _, tail = qname.rpartition(".")
    if not head:
        return None
    head_resolved = _resolve_qname(graph, head, _depth + 1)
    if head_resolved is None:
        return None
    candidate = f"{head_resolved}.{tail}"
    if candidate in graph.functions or candidate in graph.classes:
        return candidate
    if candidate in project.modules:
        return candidate
    module = project.modules.get(head_resolved)
    if module is not None and tail in module.imports:
        return _resolve_qname(graph, module.imports[tail], _depth + 1)
    return None


def _resolve_symbol_expr(
    graph: CallGraph, info: ModuleInfo, node: ast.expr
) -> Optional[str]:
    """Resolve a Name/Attribute expression to a project qname."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = current.id
    parts.reverse()
    # Local binding first, then imports, then "name in this module".
    local = f"{info.name}.{root}"
    if local in graph.classes or local in graph.functions:
        base: Optional[str] = local
    elif root in info.imports:
        base = _resolve_qname(graph, info.imports[root], 1)
    elif root in graph.project.modules:
        base = root
    else:
        return None
    if base is None:
        return None
    for part in parts:
        nxt = _resolve_qname(graph, f"{base}.{part}", 1)
        if nxt is None:
            return None
        base = nxt
    return base


def _resolve_annotation(
    graph: CallGraph, info: ModuleInfo, annotation: Optional[ast.expr]
) -> Optional[str]:
    """Class qname named by an annotation, unwrapping Optional/quotes."""
    if annotation is None:
        return None
    node: ast.expr = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None
        )
        if base_name == "Optional":
            inner = node.slice
            return _resolve_annotation(graph, info, inner)
        return None
    resolved = _resolve_symbol_expr(graph, info, node)
    if resolved is not None and resolved in graph.classes:
        return resolved
    return None


def _param_types(
    graph: CallGraph, info: ModuleInfo, node: ast.AST
) -> Dict[str, str]:
    """Parameter name -> class qname, from annotations."""
    out: Dict[str, str] = {}
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for arg in list(node.args.posonlyargs) + list(node.args.args) + list(
        node.args.kwonlyargs
    ):
        resolved = _resolve_annotation(graph, info, arg.annotation)
        if resolved is not None:
            out[arg.arg] = resolved
    return out


def _infer_expr_type(
    graph: CallGraph,
    info: ModuleInfo,
    value: ast.expr,
    env: Dict[str, str],
) -> Optional[str]:
    """Static type of an expression, where visible.

    Covers: constructor calls (``Link(...)`` / ``servers.Link(...)``),
    names with a known type in ``env``, and ``self``-attribute reads
    with a recorded attribute type (resolved by the caller's env entry
    for ``self``).
    """
    if isinstance(value, ast.Call):
        resolved = _resolve_symbol_expr(graph, info, value.func)
        if resolved is not None and resolved in graph.classes:
            return resolved
        return None
    if isinstance(value, ast.Name):
        return env.get(value.id)
    if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        owner = env.get(value.value.id)
        if owner is not None:
            cls = graph.classes.get(owner)
            if cls is not None:
                return _attr_type_in_mro(graph, owner, value.attr)
    return None


def _attr_type_in_mro(graph: CallGraph, class_qname: str, attr: str) -> Optional[str]:
    seen: Set[str] = set()
    stack = [class_qname]
    while stack:
        cq = stack.pop(0)
        if cq in seen:
            continue
        seen.add(cq)
        cls = graph.classes.get(cq)
        if cls is None:
            continue
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        stack.extend(cls.base_qnames)
    return None


# ---------------------------------------------------------------------------
# Edge building
# ---------------------------------------------------------------------------


def _is_abstract(graph: CallGraph, qname: str) -> bool:
    """True for methods whose body is just ``raise``/``...``/docstring."""
    fn = graph.functions.get(qname)
    if fn is None or not isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    body = [
        stmt
        for stmt in fn.node.body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )
    ]
    if not body:
        return True
    return all(isinstance(stmt, (ast.Raise, ast.Pass)) for stmt in body)


def _build_edges(graph: CallGraph, info: ModuleInfo) -> None:
    """Third pass: resolve every call/reference in every function."""
    assert info.tree is not None
    for qname, fn in list(graph.functions.items()):
        if fn.module is not info or fn.node is None:
            continue
        env = _function_env(graph, info, fn)
        callees: List[str] = []
        for node in _own_nodes(fn):
            if isinstance(node, ast.Call):
                targets = _resolve_call(graph, info, fn, node, env)
                if targets:
                    self_recursive = tuple(t for t in targets)
                    graph.call_targets[id(node)] = self_recursive
                    callees.extend(targets)
                # Function references passed as arguments (callbacks).
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    ref = _resolve_function_ref(graph, info, fn, arg, env)
                    if ref is not None:
                        callees.append(ref)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Defining a nested function makes it reachable.
                nested_q = f"{qname}.{node.name}"
                if nested_q in graph.functions:
                    callees.append(nested_q)
        deduped = tuple(sorted(set(callees)))
        if deduped:
            graph.edges[qname] = deduped


def _own_nodes(fn: FunctionInfo) -> Iterable[ast.AST]:
    """Walk a function's AST excluding nested def/class subtrees.

    For the module pseudo-function, excludes all top-level defs (they
    are their own nodes) but keeps module-level expressions.
    """
    node = fn.node
    assert node is not None
    if isinstance(node, ast.Module):
        roots: List[ast.AST] = [
            stmt
            for stmt in node.body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
    else:
        roots = list(getattr(node, "body", []))
    stack = list(roots)
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.append(child)


def _function_env(
    graph: CallGraph, info: ModuleInfo, fn: FunctionInfo
) -> Dict[str, str]:
    """Local variable name -> class qname for one function."""
    env: Dict[str, str] = {}
    node = fn.node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        env.update(_param_types(graph, info, node))
        if fn.class_qname is not None and fn.param_names:
            env.setdefault(fn.param_names[0], fn.class_qname)
    # Constructor/annotation assignments, in source order (two passes so
    # a name assigned after first use still resolves).
    for _ in range(2):
        for sub in _own_nodes(fn):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name):
                    inferred = _infer_expr_type(graph, info, sub.value, env)
                    if inferred is not None:
                        env.setdefault(target.id, inferred)
            elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                ann = _resolve_annotation(graph, info, sub.annotation)
                if ann is not None:
                    env.setdefault(sub.target.id, ann)
    return env


def _resolve_call(
    graph: CallGraph,
    info: ModuleInfo,
    fn: FunctionInfo,
    call: ast.Call,
    env: Dict[str, str],
) -> List[str]:
    """Resolved callee qnames for one call expression."""
    func = call.func
    targets: List[str] = []
    if isinstance(func, ast.Name):
        targets.extend(_resolve_name_call(graph, info, fn, func.id))
    elif isinstance(func, ast.Attribute):
        targets.extend(_resolve_attr_call(graph, info, fn, func, env))
    out: List[str] = []
    for target in targets:
        out.append(target)
        if _is_abstract(graph, target):
            # Template-method seam: fan out to in-project overrides.
            owner = graph.functions[target].class_qname
            method = target.rsplit(".", 1)[1]
            if owner is not None:
                for sub in graph.subclasses(owner):
                    override = graph.classes[sub].methods.get(method)
                    if override is not None:
                        out.append(override)
    return out


def _resolve_name_call(
    graph: CallGraph, info: ModuleInfo, fn: FunctionInfo, name: str
) -> List[str]:
    # Nested function in the current function?
    nested = f"{fn.qname}.{name}"
    if nested in graph.functions:
        return [nested]
    local_fn = f"{info.name}.{name}"
    if local_fn in graph.functions:
        return [local_fn]
    if local_fn in graph.classes:
        init = graph.resolve_method(local_fn, "__init__")
        return [init] if init is not None else []
    if name in info.imports:
        resolved = _resolve_qname(graph, info.imports[name], 1)
        if resolved is None:
            return []
        if resolved in graph.functions:
            return [resolved]
        if resolved in graph.classes:
            init = graph.resolve_method(resolved, "__init__")
            return [init] if init is not None else []
    return []


def _resolve_attr_call(
    graph: CallGraph,
    info: ModuleInfo,
    fn: FunctionInfo,
    func: ast.Attribute,
    env: Dict[str, str],
) -> List[str]:
    # Fully-static chain (module.func, module.Class, Class.method)?
    resolved = _resolve_symbol_expr(graph, info, func)
    if resolved is not None:
        if resolved in graph.functions:
            return [resolved]
        if resolved in graph.classes:
            init = graph.resolve_method(resolved, "__init__")
            return [init] if init is not None else []
    # Instance call: walk the attribute chain from a typed root.
    chain: List[str] = []
    current: ast.expr = func
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    chain.reverse()
    owner: Optional[str] = None
    if isinstance(current, ast.Name):
        owner = env.get(current.id)
    elif isinstance(current, ast.Call):
        owner = _infer_expr_type(graph, info, current, env)
    if owner is None:
        return []
    # All chain elements but the last are attribute hops; the last is
    # the method name.
    for attr in chain[:-1]:
        owner = _attr_type_in_mro(graph, owner, attr)
        if owner is None:
            return []
    method = graph.resolve_method(owner, chain[-1])
    return [method] if method is not None else []


def _resolve_function_ref(
    graph: CallGraph,
    info: ModuleInfo,
    fn: FunctionInfo,
    node: ast.expr,
    env: Dict[str, str],
) -> Optional[str]:
    """A bare function reference (callback argument), if resolvable."""
    if isinstance(node, ast.Name):
        nested = f"{fn.qname}.{node.id}"
        if nested in graph.functions:
            return nested
        local_fn = f"{info.name}.{node.id}"
        if local_fn in graph.functions:
            return local_fn
        if node.id in info.imports:
            resolved = _resolve_qname(graph, info.imports[node.id], 1)
            if resolved is not None and resolved in graph.functions:
                return resolved
        return None
    if isinstance(node, ast.Attribute):
        resolved = _resolve_symbol_expr(graph, info, node)
        if resolved is not None and resolved in graph.functions:
            return resolved
        # Bound-method reference: self._complete, link.send, ...
        if isinstance(node.value, ast.Name):
            owner = env.get(node.value.id)
            if owner is not None:
                return graph.resolve_method(owner, node.attr)
    return None


def _invert(edges: Dict[str, Tuple[str, ...]]) -> Dict[str, Tuple[str, ...]]:
    acc: Dict[str, List[str]] = {}
    for caller, callees in edges.items():
        for callee in callees:
            acc.setdefault(callee, []).append(caller)
    return {k: tuple(sorted(v)) for k, v in acc.items()}
