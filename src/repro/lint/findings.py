"""Finding model and inline-suppression parsing for ``repro.lint``.

A :class:`Finding` is one rule violation at one source location. The
analyzer collects findings from every registered rule, drops the ones
covered by an inline ``# lint: disable=RULE`` directive, and hands the
rest to the CLI (or to a caller via
:func:`repro.lint.analyzer.lint_source`).

Suppression syntax
------------------
A directive comment on the *reported line* silences matching findings::

    self.started = time.monotonic()  # lint: disable=DET002  wall-clock elapsed, not sim state

``disable=`` takes a comma-separated list of rule codes or ``all``.
Anything after the code list is free-form justification — writing one is
strongly encouraged (the directive is the audit trail for why the
nondeterminism is acceptable).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping

#: Matches ``# lint: disable=CODE[,CODE...]`` anywhere in a line. The
#: code list stops at the first token not joined by a comma, so a
#: free-form justification may follow it on the same line.
_DIRECTIVE_RE = re.compile(
    r"#\s*lint:\s*disable=([A-Za-z][A-Za-z0-9_]*(?:\s*,\s*[A-Za-z][A-Za-z0-9_]*)*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int

    def format(self) -> str:
        """Render as the conventional ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (used by ``--format json``)."""
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


def parse_suppressions(source: str) -> Mapping[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule codes disabled on that line.

    The scan is purely line-based: a directive inside a string literal
    would also count, but that never occurs in practice and keeps the
    parser independent of tokenization (it must work even on files the
    AST parser rejects).
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "lint:" not in text:
            continue
        match = _DIRECTIVE_RE.search(text)
        if match is None:
            continue
        codes = frozenset(
            part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        )
        if codes:
            suppressions[lineno] = codes
    return suppressions


def is_suppressed(
    finding: Finding, suppressions: Mapping[int, FrozenSet[str]]
) -> bool:
    """True when an inline directive on the finding's line covers it."""
    codes = suppressions.get(finding.line)
    if not codes:
        return False
    return "ALL" in codes or finding.rule.upper() in codes


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Stable report order: path, then position, then rule code."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
