"""``repro.lint`` — AST-based determinism & scheduler-invariant analysis.

The repo's headline guarantees (bit-identical campaign shards across
``--jobs N``, byte-identical trace equivalence, Theorem-1 fairness
bounds) rest on source-level disciplines — seeded RNG streams,
deterministic tie-breaking, exact virtual-time tag arithmetic — that
runtime monitors only catch *after* a violation has corrupted a result.
This package enforces them statically, before a simulation runs:

>>> from repro.lint import lint_source
>>> findings = lint_source("import random\\nx = random.random()\\n")
>>> [f.rule for f in findings]
['DET001']

Entry points: ``python -m repro lint [paths]`` (CI gate),
:func:`lint_source` / :func:`lint_paths` (programmatic), and the rule
registry in :mod:`repro.lint.rules` for adding checks. See HACKING.md,
chapter "Static analysis", for the rule catalog and suppression syntax.
"""

from repro.lint.analyzer import (
    LintUsageError,
    iter_python_files,
    lint_paths,
    lint_source,
    resolve_rules,
)
from repro.lint.findings import Finding, parse_suppressions, sort_findings
from repro.lint.rules import RULES, ModuleContext, Rule, all_rule_codes, register

__all__ = [
    "Finding",
    "LintUsageError",
    "ModuleContext",
    "RULES",
    "Rule",
    "all_rule_codes",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "register",
    "resolve_rules",
    "sort_findings",
]
