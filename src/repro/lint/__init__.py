"""``repro.lint`` — whole-program determinism & scheduler-invariant analysis.

The repo's headline guarantees (bit-identical campaign shards across
``--jobs N``, byte-identical trace equivalence, Theorem-1 fairness
bounds) rest on source-level disciplines — seeded RNG streams,
deterministic tie-breaking, exact virtual-time tag arithmetic — that
runtime monitors only catch *after* a violation has corrupted a result.
This package enforces them statically, before a simulation runs:

>>> from repro.lint import lint_source
>>> findings = lint_source("import random\\nx = random.random()\\n")
>>> [f.rule for f in findings]
['DET001']

Two rule families share one driver: per-file **module rules**
(:mod:`repro.lint.rules`) see a single AST; **project rules**
(:mod:`repro.lint.rules_project`) see the whole program — module graph
(:mod:`repro.lint.project`), call graph (:mod:`repro.lint.callgraph`)
and a CFG/dataflow engine (:mod:`repro.lint.dataflow`) — and catch
violations that cross call and file boundaries.

Entry points: ``python -m repro lint [paths]`` (CI gate; cached,
baseline-aware), :func:`analyze_paths` (the full v2 engine),
:func:`lint_source` / :func:`lint_paths` (per-file, programmatic), and
the registries in :mod:`repro.lint.rules` /
:mod:`repro.lint.rules_project` for adding checks. See HACKING.md,
chapter "Static analysis", for the rule catalog and suppression syntax.
"""

from repro.lint.analyzer import (
    LintUsageError,
    iter_python_files,
    lint_paths,
    lint_source,
    resolve_rules,
)
from repro.lint.baseline import Baseline
from repro.lint.cache import AnalysisCache
from repro.lint.engine import EngineResult, analyze_paths, git_changed_files
from repro.lint.findings import Finding, parse_suppressions, sort_findings
from repro.lint.project import Project, load_project
from repro.lint.rules import RULES, ModuleContext, Rule, all_rule_codes, register
from repro.lint.rules_project import (
    PROJECT_RULES,
    ProjectRule,
    all_project_rule_codes,
    register_project,
)

__all__ = [
    "AnalysisCache",
    "Baseline",
    "EngineResult",
    "Finding",
    "LintUsageError",
    "ModuleContext",
    "PROJECT_RULES",
    "Project",
    "ProjectRule",
    "RULES",
    "Rule",
    "all_project_rule_codes",
    "all_rule_codes",
    "analyze_paths",
    "git_changed_files",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_project",
    "parse_suppressions",
    "register",
    "register_project",
    "resolve_rules",
    "sort_findings",
]
