"""The v2 analysis driver: module rules + project rules, cached, baselined.

:func:`analyze_paths` is what ``python -m repro lint`` runs:

1. Read every file once; compute per-file digests and the combined
   project digest.
2. Project-cache probe — a warm run with nothing changed returns the
   cached finding list without parsing a single file.
3. Cold path: load the :class:`~repro.lint.project.Project`, run the
   per-file rules (each file served from the per-file cache when its
   digest matches), run the project rules (collect phase per module,
   then analyze over the whole graph), filter inline suppressions,
   dedup ``(path, line, rule)`` across the two rule families, sort,
   and fill both caches.
4. Report time: optionally scope findings to a changed-file set
   (``--changed``; the project still loads fully so cross-file rules
   keep seeing the whole graph) and subtract the committed baseline.

``--select``/``--ignore`` span both rule families through
:func:`resolve_all_rules`; selecting only module rules skips graph
construction entirely.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from repro.lint.analyzer import LintUsageError, iter_python_files
from repro.lint.baseline import Baseline
from repro.lint.cache import AnalysisCache, ruleset_signature
from repro.lint.findings import Finding, is_suppressed, sort_findings
from repro.lint.project import Project, load_project, source_digest
from repro.lint.rules import RULES, Rule
from repro.lint.rules_project import PROJECT_RULES, ProjectRule

__all__ = [
    "EngineResult",
    "analyze_paths",
    "git_changed_files",
    "resolve_all_rules",
]


class EngineResult:
    """Outcome of one engine run."""

    __slots__ = (
        "findings",
        "raw_findings",
        "baseline",
        "baselined_count",
        "project_cache_hit",
    )

    def __init__(
        self,
        findings: List[Finding],
        raw_findings: List[Finding],
        baseline: Optional[Baseline],
        baselined_count: int,
        project_cache_hit: bool,
    ) -> None:
        self.findings = findings
        self.raw_findings = raw_findings
        self.baseline = baseline
        self.baselined_count = baselined_count
        self.project_cache_hit = project_cache_hit


def resolve_all_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Tuple[Tuple[Rule, ...], Tuple[Type[ProjectRule], ...]]:
    """Active (module rules, project rule classes) after select/ignore.

    Same flake8 semantics as :func:`repro.lint.analyzer.resolve_rules`,
    over the union of both registries.
    """
    known = set(RULES) | set(PROJECT_RULES)
    module_codes = list(RULES)
    project_codes = list(PROJECT_RULES)
    if select:
        wanted = {code.strip().upper() for code in select if code.strip()}
        unknown = sorted(wanted - known)
        if unknown:
            raise LintUsageError(
                f"unknown rule(s) in --select: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        module_codes = [code for code in module_codes if code in wanted]
        project_codes = [code for code in project_codes if code in wanted]
    if ignore:
        dropped = {code.strip().upper() for code in ignore if code.strip()}
        unknown = sorted(dropped - known)
        if unknown:
            raise LintUsageError(
                f"unknown rule(s) in --ignore: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        module_codes = [code for code in module_codes if code not in dropped]
        project_codes = [code for code in project_codes if code not in dropped]
    return (
        tuple(RULES[code] for code in module_codes),
        tuple(PROJECT_RULES[code] for code in project_codes),
    )


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    files: Optional[Sequence[Tuple[str, str]]] = None,
    cache: Optional[AnalysisCache] = None,
    baseline: Optional[Baseline] = None,
    changed_files: Optional[Set[str]] = None,
) -> EngineResult:
    """Run the full analysis; see the module docstring for the phases."""
    module_rules, project_rule_classes = resolve_all_rules(select, ignore)
    signature = ruleset_signature(
        [rule.code for rule in module_rules]
        + [cls.code for cls in project_rule_classes]
    )
    module_signature = ruleset_signature(rule.code for rule in module_rules)

    if files is not None:
        sources = [(path, text) for path, text in files]
    else:
        sources = [
            (str(path), path.read_text(encoding="utf-8"))
            for path in iter_python_files(paths)
        ]
    digests = [(path, source_digest(text)) for path, text in sources]

    raw: Optional[List[Finding]] = None
    project_key = ""
    project_cache_hit = False
    if cache is not None:
        project_key = cache.project_key(digests, signature)
        raw = cache.get_project(project_key)
        project_cache_hit = raw is not None

    if raw is None:
        project = load_project(paths, files=sources)
        raw = _run_module_rules(
            project, sources, digests, module_rules, module_signature, cache
        )
        raw.extend(_run_project_rules(project, project_rule_classes))
        raw = _dedup(raw)
        raw = sort_findings(raw)
        if cache is not None:
            cache.put_project(project_key, raw)

    findings = list(raw)
    if changed_files is not None:
        findings = [
            f for f in findings if _resolve(f.path) in changed_files
        ]
    baselined = 0
    if baseline is not None:
        kept = baseline.filter(findings)
        baselined = len(findings) - len(kept)
        findings = kept
    return EngineResult(
        findings=findings,
        raw_findings=raw,
        baseline=baseline,
        baselined_count=baselined,
        project_cache_hit=project_cache_hit,
    )


def _run_module_rules(
    project: Project,
    sources: Sequence[Tuple[str, str]],
    digests: Sequence[Tuple[str, str]],
    module_rules: Sequence[Rule],
    module_signature: str,
    cache: Optional[AnalysisCache],
) -> List[Finding]:
    findings: List[Finding] = []
    digest_by_path = dict(digests)
    for path, _source in sources:
        digest = digest_by_path[path]
        if cache is not None:
            cached = cache.get_file(digest, module_signature)
            if cached is not None:
                findings.extend(cached)
                continue
        info = project.module_for_path(path)
        file_findings: List[Finding] = []
        if info is None:
            continue
        if info.tree is None or info.context is None:
            exc = info.syntax_error
            file_findings.append(
                Finding(
                    rule="SYNTAX",
                    message=f"could not parse: {exc.msg if exc else 'syntax error'}",
                    path=path,
                    line=(exc.lineno or 1) if exc else 1,
                    col=((exc.offset or 1) - 1) if exc else 0,
                )
            )
        else:
            for rule in module_rules:
                for finding in rule.check(info.context):
                    if not is_suppressed(finding, info.suppressions):
                        file_findings.append(finding)
        if cache is not None:
            cache.put_file(digest, module_signature, file_findings)
        findings.extend(file_findings)
    return findings


def _run_project_rules(
    project: Project, rule_classes: Sequence[Type[ProjectRule]]
) -> List[Finding]:
    findings: List[Finding] = []
    rules = [cls() for cls in rule_classes]
    if not rules:
        return findings
    ordered = sorted(project.by_path.values(), key=lambda m: m.norm_path)
    for rule in rules:
        for module in ordered:
            rule.collect(module)
    for rule in rules:
        for finding in rule.analyze(project):
            if not project.suppressed(finding.path, finding.line, finding.rule):
                findings.append(finding)
    return findings


def _dedup(findings: Sequence[Finding]) -> List[Finding]:
    """Drop later duplicates of the same ``(path, line, rule)``.

    Module-rule findings run first, so when a module rule and a project
    rule agree on a location the per-file message wins.
    """
    seen: Set[Tuple[str, int, str]] = set()
    out: List[Finding] = []
    for finding in findings:
        key = (finding.path.replace("\\", "/"), finding.line, finding.rule)
        if key in seen:
            continue
        seen.add(key)
        out.append(finding)
    return out


def _resolve(path: str) -> str:
    try:
        return str(Path(path).resolve())
    except OSError:
        return path


def git_changed_files(ref: str) -> Optional[Set[str]]:
    """Absolute paths of files changed vs ``ref`` (plus untracked).

    Returns None when git is unavailable or ``ref`` does not resolve —
    callers should fall back to an unscoped run rather than fail.
    """
    changed: Set[str] = set()
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        )
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    root = Path(top.stdout.strip())
    for line in diff.stdout.splitlines() + untracked.stdout.splitlines():
        name = line.strip()
        if name:
            changed.add(str((root / name).resolve()))
    return changed
