"""Intra-procedural CFG + dataflow, and interprocedural taint summaries.

Three layers, each usable on its own:

**CFG** — :func:`build_cfg` turns a function body into a statement-level
control-flow graph: one node per simple statement, edges following
``if``/``while``/``for``/``try``/``break``/``continue``/``return``.
Loops get back edges; ``try`` bodies edge into their handlers from
every statement (a coarse but sound over-approximation).

**Forward may-analyses** — :func:`fixpoint` runs any monotone transfer
function over the CFG with pointwise set-union joins until stable.
:func:`reaching_definitions` (name → set of def line numbers) is the
classic instance and the one the TAG002 rule uses to connect
``start = max(v, last_finish)`` with the ``start + l/r`` expression
that re-derives a finish tag two lines later.

**Taint** — :func:`analyze_taint` tracks a small label set through one
function (``wallclock`` from ``time.*`` reads, ``id`` from ``id()``,
``unordered`` from set/dict-view iteration — ``sorted(...)`` strips
it), and :func:`build_summaries` lifts that to the whole program over
the call graph: each function gets a summary (labels it returns, which
parameters flow to its return, which parameters reach a determinism
sink inside it), computed to fixpoint with a worklist seeded in
deterministic order. The DET006 rule then reads sink hits straight
from a final reporting pass.

Determinism sinks are event-queue pushes (``call_at`` / ``call_after``
/ ``at`` / ``after`` / ``push`` / ``heappush`` / ``schedule``), the
shared tag helpers (:func:`repro.core.tagmath.start_finish` /
``eat_step``), and stores to tag attributes (``start_tag``,
``finish_tag``, ``virtual_time``, ``eligible_at``, ``deadline``).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.callgraph import MODULE_BODY, CallGraph, FunctionInfo
from repro.lint.project import Project
from repro.lint.rules import _is_unordered_iterable, dotted_name

__all__ = [
    "CFG",
    "CFGNode",
    "FunctionSummary",
    "SinkHit",
    "SummaryTable",
    "build_cfg",
    "build_summaries",
    "fixpoint",
    "reaching_definitions",
    "LABEL_WALLCLOCK",
    "LABEL_ID",
    "LABEL_UNORDERED",
]

LABEL_WALLCLOCK = "wallclock"
LABEL_ID = "id"
LABEL_UNORDERED = "unordered-iteration"

#: Latent label on unordered *containers*; becomes LABEL_UNORDERED only
#: when the container is iterated (a set is fine to hold, membership
#: tests are fine — only iteration order is nondeterministic).
LABEL_CONTAINER = "container:unordered"

#: Real taint labels (parameter pseudo-labels are ``param:<i>``).
_REAL_LABELS = frozenset({LABEL_WALLCLOCK, LABEL_ID, LABEL_UNORDERED})

#: Labels that survive into interprocedural summaries.
_SUMMARY_LABELS = _REAL_LABELS | {LABEL_CONTAINER}

#: Wall-clock callables by canonical dotted name (mirrors DET002).
_WALLCLOCK_LEAVES = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_WALLCLOCK_ROOTS = frozenset({"time", "datetime"})
_WALLCLOCK_DT = frozenset({"now", "utcnow", "today"})

#: Method/function names whose invocation schedules simulator events.
EVENT_SINKS = frozenset(
    {"call_at", "call_after", "at", "after", "push", "heappush", "schedule"}
)

#: Attribute stores that define a scheduling tag.
TAG_ATTR_SINKS = frozenset(
    {"start_tag", "finish_tag", "virtual_time", "eligible_at", "deadline"}
)

#: Fully-qualified tag-computation helpers (tag math kernel).
TAG_HELPER_SUFFIXES = (".tagmath.start_finish", ".tagmath.eat_step")

#: Calls that impose an order and therefore strip ``unordered`` taint.
_ORDER_RESTORING = frozenset({"sorted", "min", "max", "sum", "len", "frozenset"})


# ---------------------------------------------------------------------------
# CFG
# ---------------------------------------------------------------------------


class CFGNode:
    """One simple statement in the control-flow graph."""

    __slots__ = ("index", "stmt", "succs")

    def __init__(self, index: int, stmt: ast.stmt) -> None:
        self.index = index
        self.stmt = stmt
        self.succs: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CFGNode({self.index}, {type(self.stmt).__name__}, ->{self.succs})"


class CFG:
    """Statement-level CFG for one function body."""

    __slots__ = ("nodes", "entry_indices")

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry_indices: List[int] = []

    def add(self, stmt: ast.stmt) -> CFGNode:
        node = CFGNode(len(self.nodes), stmt)
        self.nodes.append(node)
        return node

    def __len__(self) -> int:
        return len(self.nodes)


class _CFGBuilder:
    """Recursive-descent CFG construction with break/continue stacks."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self._break_targets: List[List[int]] = []
        self._continue_targets: List[List[int]] = []

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        first, exits = self._stmts(body)
        self.cfg.entry_indices = first
        return self.cfg

    # `_stmts` returns (entry node indices, dangling exit indices). An
    # edge from a dangling exit leads to whatever follows the sequence.
    def _stmts(self, body: Sequence[ast.stmt]) -> Tuple[List[int], List[int]]:
        entries: List[int] = []
        pending: List[int] = []
        started = False
        for stmt in body:
            s_entries, s_exits = self._stmt(stmt)
            if not s_entries:
                continue
            if not started:
                entries = s_entries
                started = True
            else:
                for exit_idx in pending:
                    self.cfg.nodes[exit_idx].succs.extend(s_entries)
            pending = s_exits
        return entries, pending

    def _stmt(self, stmt: ast.stmt) -> Tuple[List[int], List[int]]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            node = cfg.add(stmt)
            then_e, then_x = self._stmts(stmt.body)
            else_e, else_x = self._stmts(stmt.orelse)
            node.succs.extend(then_e if then_e else [])
            exits = list(then_x)
            if stmt.orelse:
                node.succs.extend(else_e)
                exits.extend(else_x)
            else:
                exits.append(node.index)
            if not then_e:
                exits.append(node.index)
            return [node.index], exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            node = cfg.add(stmt)
            self._break_targets.append([])
            self._continue_targets.append([])
            body_e, body_x = self._stmts(stmt.body)
            breaks = self._break_targets.pop()
            continues = self._continue_targets.pop()
            if body_e:
                node.succs.extend(body_e)
            for exit_idx in body_x + continues:
                cfg.nodes[exit_idx].succs.append(node.index)  # back edge
            else_e, else_x = self._stmts(stmt.orelse)
            exits = list(breaks)
            if stmt.orelse and else_e:
                node.succs.extend(else_e)
                exits.extend(else_x)
            else:
                exits.append(node.index)
            return [node.index], exits
        if isinstance(stmt, ast.Try):
            body_e, body_x = self._stmts(stmt.body)
            body_indices = self._collect_range(stmt.body)
            exits = list(body_x)
            entries = body_e
            for handler in stmt.handlers:
                h_e, h_x = self._stmts(handler.body)
                if h_e:
                    # Any body statement may raise into the handler.
                    for idx in body_indices:
                        cfg.nodes[idx].succs.extend(h_e)
                    if not entries:
                        entries = h_e
                    exits.extend(h_x)
            if stmt.orelse:
                o_e, o_x = self._stmts(stmt.orelse)
                if o_e:
                    for idx in body_x:
                        cfg.nodes[idx].succs.extend(o_e)
                    exits = [x for x in exits if x not in body_x] + o_x
            if stmt.finalbody:
                f_e, f_x = self._stmts(stmt.finalbody)
                if f_e:
                    for idx in exits:
                        cfg.nodes[idx].succs.extend(f_e)
                    exits = f_x
                    if not entries:
                        entries = f_e
            return entries, exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = cfg.add(stmt)
            body_e, body_x = self._stmts(stmt.body)
            if body_e:
                node.succs.extend(body_e)
                return [node.index], body_x
            return [node.index], [node.index]
        if isinstance(stmt, ast.Break):
            node = cfg.add(stmt)
            if self._break_targets:
                self._break_targets[-1].append(node.index)
            return [node.index], []
        if isinstance(stmt, ast.Continue):
            node = cfg.add(stmt)
            if self._continue_targets:
                self._continue_targets[-1].append(node.index)
            return [node.index], []
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = cfg.add(stmt)
            return [node.index], []  # no fallthrough
        # Simple statement (incl. nested def/class headers, which the
        # caller has already carved out of the analysis).
        node = cfg.add(stmt)
        return [node.index], [node.index]

    def _collect_range(self, body: Sequence[ast.stmt]) -> List[int]:
        """Indices of CFG nodes created for ``body`` (incl. nested)."""
        stmts = set()
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.stmt):
                    stmts.add(id(sub))
        return [n.index for n in self.cfg.nodes if id(n.stmt) in stmts]


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Build a statement-level CFG for a function body."""
    return _CFGBuilder().build(body)


# ---------------------------------------------------------------------------
# Generic forward may-analysis
# ---------------------------------------------------------------------------

Env = Dict[str, FrozenSet[str]]


def _join(into: Env, other: Env) -> bool:
    """Pointwise union join; returns True when ``into`` changed."""
    changed = False
    for key, values in other.items():
        have = into.get(key)
        if have is None:
            into[key] = values
            changed = True
        elif not values <= have:
            into[key] = have | values
            changed = True
    return changed


def fixpoint(
    cfg: CFG,
    transfer: "TransferFn",
    entry_env: Optional[Env] = None,
) -> List[Env]:
    """Run a forward may-analysis to fixpoint; returns IN-env per node.

    ``transfer(node, env)`` must return the OUT environment for a node
    given its IN environment (and must not mutate its input).
    """
    n = len(cfg.nodes)
    in_envs: List[Env] = [{} for _ in range(n)]
    for idx in cfg.entry_indices:
        in_envs[idx] = dict(entry_env or {})
    worklist = list(cfg.entry_indices)
    iterations = 0
    limit = max(64, 16 * n * (n + 1))
    while worklist and iterations < limit:
        iterations += 1
        idx = worklist.pop(0)
        out = transfer(cfg.nodes[idx], dict(in_envs[idx]))
        for succ in cfg.nodes[idx].succs:
            if _join(in_envs[succ], out):
                if succ not in worklist:
                    worklist.append(succ)
    return in_envs


class TransferFn:
    """Protocol stand-in: any ``(CFGNode, Env) -> Env`` callable."""

    def __call__(self, node: CFGNode, env: Env) -> Env:  # pragma: no cover
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Reaching definitions
# ---------------------------------------------------------------------------


def _assigned_names(stmt: ast.stmt) -> List[str]:
    """Names (re)bound by a statement, dotted for attribute stores."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [
            item.optional_vars for item in stmt.items if item.optional_vars
        ]
    out: List[str] = []
    stack = list(targets)
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif isinstance(target, ast.Starred):
            stack.append(target.value)
        elif isinstance(target, ast.Name):
            out.append(target.id)
        elif isinstance(target, ast.Attribute):
            dotted = dotted_name(target)
            if dotted is not None:
                out.append(dotted)
    return out


def reaching_definitions(cfg: CFG) -> List[Env]:
    """Name -> set of definition line numbers reaching each node."""

    def transfer(node: CFGNode, env: Env) -> Env:
        for name in _assigned_names(node.stmt):
            env[name] = frozenset({str(node.stmt.lineno)})
        return env

    return fixpoint(cfg, transfer)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Taint
# ---------------------------------------------------------------------------


class SinkHit:
    """One tainted value reaching a determinism sink."""

    __slots__ = ("labels", "sink", "node", "via")

    def __init__(
        self,
        labels: FrozenSet[str],
        sink: str,
        node: ast.AST,
        via: Optional[str] = None,
    ) -> None:
        self.labels = labels
        self.sink = sink
        self.node = node
        self.via = via  #: callee qname when the sink is inside a callee

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SinkHit({sorted(self.labels)}, {self.sink!r}, via={self.via!r})"


class FunctionSummary:
    """Interprocedural taint summary of one function."""

    __slots__ = ("qname", "returns", "param_to_return", "param_sinks")

    def __init__(self, qname: str) -> None:
        self.qname = qname
        self.returns: FrozenSet[str] = frozenset()
        self.param_to_return: FrozenSet[int] = frozenset()
        #: param index -> human-readable sink description inside.
        self.param_sinks: Dict[int, str] = {}

    def same_as(self, other: "FunctionSummary") -> bool:
        return (
            self.returns == other.returns
            and self.param_to_return == other.param_to_return
            and self.param_sinks == other.param_sinks
        )


class SummaryTable:
    """All function summaries plus per-function sink hits."""

    __slots__ = ("summaries", "graph")

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: Dict[str, FunctionSummary] = {}

    def get(self, qname: str) -> FunctionSummary:
        summary = self.summaries.get(qname)
        if summary is None:
            summary = FunctionSummary(qname)
            self.summaries[qname] = summary
        return summary

    def sink_hits(self, fn: FunctionInfo, *, wallclock_ok: bool = False) -> List[SinkHit]:
        """Reporting pass: tainted-value sink hits inside ``fn``."""
        analysis = _TaintAnalysis(self.graph, self, fn, wallclock_ok=wallclock_ok)
        analysis.run()
        return analysis.hits


def _param_label(index: int) -> str:
    return f"param:{index}"


def _is_param_label(label: str) -> bool:
    return label.startswith("param:")


class _TaintAnalysis:
    """One function's taint pass (used for summaries and reporting)."""

    def __init__(
        self,
        graph: CallGraph,
        table: SummaryTable,
        fn: FunctionInfo,
        wallclock_ok: bool = False,
    ) -> None:
        self.graph = graph
        self.table = table
        self.fn = fn
        self.wallclock_ok = wallclock_ok
        self.hits: List[SinkHit] = []
        self.return_taint: Set[str] = set()
        self.param_sinks: Dict[int, str] = {}
        self._param_index = {
            name: i for i, name in enumerate(fn.param_names)
        }

    # -- body extraction (own statements only; nested defs excluded) --
    def _body(self) -> Sequence[ast.stmt]:
        node = self.fn.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node.body
        if isinstance(node, ast.Module):
            return [
                stmt
                for stmt in node.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        return []

    def run(self) -> None:
        body = self._body()
        if not body:
            return
        cfg = build_cfg(body)
        entry: Env = {
            name: frozenset({_param_label(i)})
            for name, i in self._param_index.items()
        }
        in_envs = fixpoint(cfg, self._transfer, entry)  # type: ignore[arg-type]
        # Final reporting pass with converged IN-envs.
        self.hits = []
        self.return_taint = set()
        self.param_sinks = {}
        for node, env in zip(cfg.nodes, in_envs):
            self._apply(node.stmt, dict(env), report=True)

    def _transfer(self, node: CFGNode, env: Env) -> Env:
        return self._apply(node.stmt, env, report=False)

    # -- statement transfer ------------------------------------------
    def _apply(self, stmt: ast.stmt, env: Env, report: bool) -> Env:
        if isinstance(stmt, ast.Assign):
            taint = self._expr(stmt.value, env, report)
            for name in _assigned_names(stmt):
                env[name] = taint
            self._check_attr_sinks(stmt.targets, taint, stmt, report)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            taint = self._expr(stmt.value, env, report)
            for name in _assigned_names(stmt):
                env[name] = taint
            self._check_attr_sinks([stmt.target], taint, stmt, report)
        elif isinstance(stmt, ast.AugAssign):
            taint = self._expr(stmt.value, env, report)
            for name in _assigned_names(stmt):
                env[name] = env.get(name, frozenset()) | taint
            self._check_attr_sinks([stmt.target], taint, stmt, report)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._expr(stmt.iter, env, report)
            if _is_unordered_iterable(stmt.iter) or LABEL_CONTAINER in taint:
                taint = taint | {LABEL_UNORDERED}
            taint = taint - {LABEL_CONTAINER}
            for name in _assigned_names(stmt):
                env[name] = taint
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._expr(item.context_expr, env, report)
                if item.optional_vars is not None:
                    for name in _assigned_names(stmt):
                        env[name] = taint
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._expr(stmt.value, env, report)
                self.return_taint |= taint
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value, env, report)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test, env, report)
        elif isinstance(stmt, (ast.Assert, ast.Delete, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, env, report)
        return env

    def _check_attr_sinks(
        self,
        targets: Iterable[ast.expr],
        taint: FrozenSet[str],
        stmt: ast.stmt,
        report: bool,
    ) -> None:
        if not taint:
            return
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr in TAG_ATTR_SINKS:
                sink = f"{target.attr} ="
                real = taint & _REAL_LABELS
                if report and real:
                    self._record_sink(real, sink, stmt)
                for label in taint:
                    if _is_param_label(label):
                        index = int(label.split(":", 1)[1])
                        self.param_sinks.setdefault(index, sink)

    # -- expression taint --------------------------------------------
    def _expr(self, node: ast.expr, env: Env, report: bool) -> FrozenSet[str]:
        taint = self._expr_inner(node, env, report)
        if _is_unordered_iterable(node):
            taint = taint | {LABEL_CONTAINER}
        return taint

    def _expr_inner(self, node: ast.expr, env: Env, report: bool) -> FrozenSet[str]:
        if isinstance(node, ast.Name):
            return env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            acc: FrozenSet[str] = frozenset()
            if dotted is not None and dotted in env:
                acc = env[dotted]
            return acc | self._expr(node.value, env, report)
        if isinstance(node, ast.Call):
            return self._call(node, env, report)
        if isinstance(node, (ast.Constant, ast.Lambda)):
            return frozenset()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            acc = frozenset()
            for gen in node.generators:
                iter_taint = self._expr(gen.iter, env, report)
                if _is_unordered_iterable(gen.iter) or LABEL_CONTAINER in iter_taint:
                    iter_taint = iter_taint | {LABEL_UNORDERED}
                acc |= iter_taint - {LABEL_CONTAINER}
            return acc
        acc = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                acc |= self._expr(child, env, report)
        return acc

    def _call(self, node: ast.Call, env: Env, report: bool) -> FrozenSet[str]:
        func = node.func
        arg_taints = [self._expr(arg, env, report) for arg in node.args]
        kw_taints = [self._expr(kw.value, env, report) for kw in node.keywords]
        all_args: FrozenSet[str] = frozenset()
        for taint in arg_taints + kw_taints:
            all_args |= taint
        func_name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        targets = self.graph.call_targets.get(id(node), ())

        # Sources -----------------------------------------------------
        if isinstance(func, ast.Name) and func.id == "id" and not targets:
            return frozenset({LABEL_ID})
        if not self.wallclock_ok and self._is_wallclock(func):
            return frozenset({LABEL_WALLCLOCK})

        # Sinks -------------------------------------------------------
        is_tag_helper = any(
            t.endswith(TAG_HELPER_SUFFIXES) for t in targets
        )
        if report and all_args & _REAL_LABELS:
            if func_name in EVENT_SINKS:
                self._record_sink(all_args & _REAL_LABELS, f"{func_name}(...)", node)
            elif is_tag_helper:
                self._record_sink(
                    all_args & _REAL_LABELS, f"{func_name}(...) [tag math]", node
                )
        # Param pseudo-labels reaching a local sink become summary rows.
        if func_name in EVENT_SINKS or is_tag_helper:
            for label in all_args:
                if _is_param_label(label):
                    index = int(label.split(":", 1)[1])
                    self.param_sinks.setdefault(index, f"{func_name}(...)")

        # Callee summaries -------------------------------------------
        result: FrozenSet[str] = frozenset()
        for target in targets:
            summary = self.table.summaries.get(target)
            if summary is None:
                continue
            result |= summary.returns
            # Align call-site arguments with the callee's parameter
            # indices: bound method / constructor calls implicitly pass
            # the receiver (or fresh object) as param 0.
            callee = self.graph.functions.get(target)
            eff_args = arg_taints
            if (
                callee is not None
                and callee.class_qname is not None
                and callee.param_names[:1] in (("self",), ("cls",))
            ):
                receiver_taint: FrozenSet[str] = frozenset()
                if isinstance(func, ast.Attribute):
                    receiver_taint = self._expr(func.value, env, report)
                eff_args = [receiver_taint] + arg_taints
            for index in summary.param_to_return:
                if index < len(eff_args):
                    result |= eff_args[index]
            for index, sink_desc in sorted(summary.param_sinks.items()):
                if index >= len(eff_args):
                    continue
                taint = eff_args[index]
                real = taint & _REAL_LABELS
                if report and real:
                    self._record_sink(
                        real,
                        sink_desc,
                        node,
                        via=target,
                    )
                for label in taint:
                    if _is_param_label(label):
                        own = int(label.split(":", 1)[1])
                        self.param_sinks.setdefault(
                            own, f"{sink_desc} [via {_short(target)}]"
                        )
        if targets:
            # Resolved calls: only summary-declared flows propagate,
            # plus args feeding through unknown positions is dropped —
            # the callee was analyzed, so trust its summary.
            return result
        # Unresolved call: conservatively pass argument taint through,
        # except order-restoring builtins which launder `unordered`.
        if func_name in _ORDER_RESTORING:
            all_args = all_args - {LABEL_UNORDERED, LABEL_CONTAINER}
        receiver: FrozenSet[str] = frozenset()
        if isinstance(func, ast.Attribute):
            receiver = self._expr(func.value, env, report)
            if func_name in _DICT_VIEWS_STRIP:
                receiver = receiver - {LABEL_UNORDERED}
        return all_args | receiver

    def _record_sink(
        self,
        labels: FrozenSet[str],
        sink: str,
        node: ast.AST,
        via: Optional[str] = None,
    ) -> None:
        self.hits.append(SinkHit(frozenset(labels), sink, node, via=via))

    def _is_wallclock(self, func: ast.expr) -> bool:
        dotted = dotted_name(func)
        if dotted is None:
            return False
        parts = dotted.split(".")
        leaf = parts[-1]
        if len(parts) >= 2 and parts[0] in _WALLCLOCK_ROOTS:
            return leaf in _WALLCLOCK_LEAVES or leaf in _WALLCLOCK_DT
        # `from time import perf_counter [as clock]` — resolved through
        # the module import table.
        imports = self.fn.module.imports
        canonical = imports.get(parts[0])
        if canonical is None:
            return False
        full = ".".join([canonical] + parts[1:])
        tail = full.split(".")
        return (
            tail[0] in _WALLCLOCK_ROOTS
            and (tail[-1] in _WALLCLOCK_LEAVES or tail[-1] in _WALLCLOCK_DT)
        )


#: ``.values()`` etc. keep container taint but are not themselves new
#: sources here (DET003 covers the syntactic case); laundering via
#: explicit sort is honored.
_DICT_VIEWS_STRIP: FrozenSet[str] = frozenset()


def _short(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qname


# ---------------------------------------------------------------------------
# Whole-program summary fixpoint
# ---------------------------------------------------------------------------


def _in_benchmark(fn: FunctionInfo) -> bool:
    parts = fn.module.norm_path.split("/")
    return "benchmarks" in parts or parts[-1] == "bench.py"


def build_summaries(project: Project) -> SummaryTable:
    """Compute every function's taint summary to fixpoint.

    Deterministic: functions are processed in sorted-qname order, and
    the worklist re-queues callers of any function whose summary
    changed. Monotone summaries over finite label sets guarantee
    termination.
    """
    graph = project.callgraph()
    table = SummaryTable(graph)
    order = sorted(
        q for q in graph.functions if not q.endswith(f".{MODULE_BODY}")
    )
    worklist: List[str] = list(order)
    enqueued: Set[str] = set(worklist)
    passes = 0
    budget = 16 * max(1, len(order))
    while worklist and passes < budget:
        passes += 1
        qname = worklist.pop(0)
        enqueued.discard(qname)
        fn = graph.functions[qname]
        analysis = _TaintAnalysis(
            graph, table, fn, wallclock_ok=_in_benchmark(fn)
        )
        analysis.run()
        fresh = FunctionSummary(qname)
        fresh.returns = frozenset(analysis.return_taint & _SUMMARY_LABELS)
        fresh.param_to_return = frozenset(
            int(label.split(":", 1)[1])
            for label in analysis.return_taint
            if _is_param_label(label)
        )
        fresh.param_sinks = dict(analysis.param_sinks)
        have = table.summaries.get(qname)
        if have is None or not have.same_as(fresh):
            table.summaries[qname] = fresh
            for caller in graph.callers.get(qname, ()):
                if caller not in enqueued and not caller.endswith(
                    f".{MODULE_BODY}"
                ):
                    worklist.append(caller)
                    enqueued.add(caller)
    return table
