"""Rule registry and the built-in determinism/invariant checkers.

Every rule targets a failure mode that has actually bitten (or would
silently bite) this codebase's headline guarantees — bit-identical
campaign shards, byte-identical trace equivalence, and the exact
virtual-time tag arithmetic behind the paper's Theorem 1:

=========  ==============================================================
DET001     module-level / unseeded ``random`` or ``numpy.random`` use
           outside :mod:`repro.simulation.random`
DET002     wall-clock reads (``time.time``, ``datetime.now``,
           ``perf_counter``, ...) outside ``benchmarks/`` / ``bench.py``
DET003     iteration over ``set``/``dict`` views feeding heap pushes,
           event scheduling or flow registration without ``sorted(...)``
DET004     ``id()``-based tie-breaking inside comparators or sort keys
DET005     RNG seeds in ``repro.chaos``/``repro.faults`` not rooted in
           ``derive_seed`` (raw ``Random(...)``, literal stream seeds)
TAG001     float ``==``/``!=`` on virtual-time/tag expressions
PERF001    hot-path classes under ``repro.core``/``repro.simulation``
           without ``__slots__``
PERF002    direct ``heapq`` operations on the simulator event queue
           outside :mod:`repro.simulation.eventq` (the backend seam)
PERF003    per-call/per-iteration allocation and repeated attribute
           chains inside functions marked ``# lint: hot``
=========  ==============================================================

The whole-program rules (CACHE001, TAG002, DET006) live in
:mod:`repro.lint.rules_project`; they need the module graph, the call
graph, and the dataflow engine rather than a single file's AST.

Adding a rule: subclass :class:`Rule`, set ``code``/``summary``, implement
``check``, and decorate with :func:`register` (see HACKING.md, "Static
analysis"). Rules receive a parsed :class:`ModuleContext` and yield
:class:`~repro.lint.findings.Finding` objects; suppression handling and
ordering are the analyzer's job, not the rule's.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Type

from repro.lint.findings import Finding

__all__ = ["ModuleContext", "Rule", "RULES", "register", "all_rule_codes"]


@dataclass
class ModuleContext:
    """One parsed module as seen by every rule."""

    path: str  #: display path (as given by the caller)
    source: str
    tree: ast.Module
    #: normalized forward-slash path used for path-scoped exemptions
    norm_path: str = field(init=False)

    def __post_init__(self) -> None:
        self.norm_path = self.path.replace("\\", "/")

    def in_benchmark_code(self) -> bool:
        """True for files exempt from wall-clock checks (DET002)."""
        parts = self.norm_path.split("/")
        return "benchmarks" in parts or parts[-1] == "bench.py"

    def is_seeded_rng_module(self) -> bool:
        """True for the one module allowed to touch ``random`` freely."""
        return self.norm_path.endswith("repro/simulation/random.py")

    def in_hot_path_package(self) -> bool:
        """True for modules under ``repro/core`` or ``repro/simulation``."""
        return (
            "repro/core/" in self.norm_path
            or "repro/simulation/" in self.norm_path
        )


class Rule:
    """Base class for lint rules."""

    code: str = ""
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module. Implemented by subclasses."""
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=self.code,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )


#: Registry of rule code -> rule instance, in registration order.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (by its ``code``) to the registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls()
    return cls


def all_rule_codes() -> Tuple[str, ...]:
    """Every registered rule code, in registration order."""
    return tuple(RULES)


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


# ---------------------------------------------------------------------------
# DET001 — unseeded / module-level random
# ---------------------------------------------------------------------------


#: random.* attributes that are fine: seeded-generator construction.
_SEEDED_RNG_FACTORIES = {"Random", "SystemRandom"}


@register
class UnseededRandomRule(Rule):
    """Module-level ``random.*`` and any ``numpy.random`` use.

    Module-level ``random`` functions draw from the interpreter-global
    generator, whose state depends on import order and every other draw
    in the process — exactly what made ``--jobs N`` campaign shards
    diverge before :func:`repro.simulation.random.derive_seed`. Only
    explicit ``random.Random(seed)`` construction (ideally via
    :class:`repro.simulation.random.RandomStreams`) is allowed.
    """

    code = "DET001"
    summary = "unseeded/module-level RNG use outside repro.simulation.random"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_seeded_rng_module():
            return
        random_aliases: Set[str] = set()
        numpy_aliases: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name in ("numpy", "numpy.random"):
                        numpy_aliases.add(
                            (alias.asname or alias.name).split(".")[0]
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _SEEDED_RNG_FACTORIES:
                            yield self.finding(
                                ctx,
                                node,
                                f"`from random import {alias.name}` binds the "
                                "process-global generator; construct a seeded "
                                "random.Random (see repro.simulation.random)",
                            )
                elif node.module and node.module.split(".")[0] == "numpy":
                    if node.module.startswith("numpy.random") or any(
                        alias.name == "random" for alias in node.names
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "numpy.random has process-global state; draw from "
                            "a seeded stream (repro.simulation.random) instead",
                        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted is None:
                    continue
                root, _, rest = dotted.partition(".")
                if root in numpy_aliases and rest == "random":
                    yield self.finding(
                        ctx,
                        node,
                        f"`{dotted}` has process-global state; draw from a "
                        "seeded stream (repro.simulation.random) instead",
                    )
                elif (
                    root in random_aliases
                    and "." not in rest
                    and rest not in _SEEDED_RNG_FACTORIES
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{dotted}` uses the process-global generator; draw "
                        "from a seeded random.Random "
                        "(see repro.simulation.random)",
                    )


# ---------------------------------------------------------------------------
# DET002 — wall-clock reads
# ---------------------------------------------------------------------------


#: Canonical dotted names of wall-clock reads.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """Wall-clock reads outside the benchmark harness.

    Simulation logic must depend only on virtual time (``sim.now``) and
    the experiment seed; a wall-clock read anywhere on a simulation path
    makes results machine- and load-dependent. Timing *harness* code
    (``benchmarks/``, ``bench.py``) is exempt by path; legitimate
    elapsed-time bookkeeping elsewhere (e.g. the campaign runner's shard
    timings) must carry an inline ``# lint: disable=DET002`` with a
    justification.
    """

    code = "DET002"
    summary = "wall-clock call outside benchmarks/ or bench.py"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_benchmark_code():
            return
        # Local alias -> canonical dotted prefix.
        aliases: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("time", "datetime"):
                        aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        aliases[alias.asname or alias.name] = f"time.{alias.name}"
                elif node.module == "datetime":
                    for alias in node.names:
                        aliases[alias.asname or alias.name] = (
                            f"datetime.{alias.name}"
                        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            root, _, rest = dotted.partition(".")
            canonical = aliases.get(root, root) + ("." + rest if rest else "")
            if canonical in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call `{dotted}` — simulation code must "
                    "depend only on sim.now and the seed (benchmarks/ and "
                    "bench.py are exempt)",
                )


# ---------------------------------------------------------------------------
# DET003 — unordered iteration feeding scheduling
# ---------------------------------------------------------------------------


#: Callee names whose invocation inside a loop marks it order-sensitive.
_SCHEDULING_SINKS = {
    "heappush",
    "heappop",
    "heapify",
    "heappushpop",
    "heapreplace",
    "at",
    "after",
    "call_at",
    "call_after",
    "schedule",
    "enqueue",
    "dequeue",
    "send",
    "add_flow",
    "attach_flow",
    "assign_flow",
    "add_flow_with_deadline",
    "set_weight",
    "remove_flow",
}

#: Calls that produce hash-ordered iterables.
_UNORDERED_FACTORIES = {"set", "frozenset"}
_DICT_VIEW_METHODS = {"keys", "values", "items"}


def _is_unordered_iterable(node: ast.AST) -> bool:
    """Syntactic evidence that iterating ``node`` is hash/insertion-order.

    Detected: set displays and comprehensions, ``set()``/``frozenset()``
    calls, dict view calls (``.keys()``/``.values()``/``.items()``), set
    algebra on any of those, and ``list()``/``tuple()`` wrappers around
    them (wrapping does not impose an order — only ``sorted`` does).
    """
    if isinstance(node, (ast.Set, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_unordered_iterable(node.left) or _is_unordered_iterable(
            node.right
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _UNORDERED_FACTORIES:
                return True
            if func.id in ("list", "tuple", "iter", "reversed") and node.args:
                return _is_unordered_iterable(node.args[0])
            return False
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DICT_VIEW_METHODS
            and not node.args
        ):
            return True
    return False


def _called_sinks(body: List[ast.stmt]) -> Iterator[ast.Call]:
    """Scheduling-sink calls anywhere inside ``body``."""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in _SCHEDULING_SINKS:
                yield node


@register
class UnorderedIterationRule(Rule):
    """Hash-order iteration feeding heap pushes / event scheduling.

    ``for x in some_set: heappush(...)`` pushes in an order that depends
    on hash seeding and insertion history; with equal keys (tag ties!)
    the heap then pops in a run-dependent order. Dict views are
    insertion-ordered, but that order is an implicit program-history
    dependency the reader cannot see — either wrap the iterable in
    ``sorted(...)`` or annotate the loop with
    ``# lint: disable=DET003 <why the order is deterministic>``.
    """

    code = "DET003"
    summary = "set/dict iteration feeding scheduling without sorted()"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_unordered_iterable(
                node.iter
            ):
                for sink in _called_sinks(node.body):
                    func = sink.func
                    name = (
                        func.attr
                        if isinstance(func, ast.Attribute)
                        else getattr(func, "id", "?")
                    )
                    yield self.finding(
                        ctx,
                        node,
                        "iteration order of a set/dict view reaches "
                        f"`{name}(...)`; wrap the iterable in sorted(...) or "
                        "justify with a disable directive",
                    )
                    break  # one finding per loop
            elif isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else None
                )
                if name not in _SCHEDULING_SINKS:
                    continue
                for arg in node.args:
                    if isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                    ) and any(
                        _is_unordered_iterable(gen.iter)
                        for gen in arg.generators
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"comprehension over a set/dict view feeds "
                            f"`{name}(...)`; wrap the source in sorted(...)",
                        )
                        break
                    if _is_unordered_iterable(arg) and name in (
                        "heapify",
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "heapify over a set/dict view fixes a "
                            "hash-dependent layout; sort first",
                        )
                        break


# ---------------------------------------------------------------------------
# DET004 — id()-based tie-breaking
# ---------------------------------------------------------------------------


_COMPARATOR_METHODS = {"__lt__", "__le__", "__gt__", "__ge__", "__eq__", "__ne__"}


def _is_tiebreak_name(name: str) -> bool:
    lowered = name.lower()
    return (
        name in _COMPARATOR_METHODS
        or "tie" in lowered
        or lowered == "key"
        or lowered.endswith("_key")
        or lowered.endswith("key_fn")
    )


def _contains_id_call(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
        ):
            yield sub


@register
class IdTieBreakRule(Rule):
    """``id()`` inside comparators or sort-key functions.

    CPython object ids are allocation addresses: they differ across runs
    and across workers, so an ``id()``-based tie-break silently makes
    the schedule a function of the allocator. Use an explicit monotone
    counter (``Packet.uid``) instead — that is exactly what the flow-head
    heap keys on.
    """

    code = "DET004"
    summary = "id()-based tie-breaking in a comparator or key function"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and _is_tiebreak_name(node.name):
                for call in _contains_id_call(node):
                    yield self.finding(
                        ctx,
                        call,
                        f"id() inside `{node.name}` ties ordering to memory "
                        "addresses, which vary per run/worker; key on an "
                        "explicit counter (e.g. Packet.uid)",
                    )
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "key" and isinstance(
                        keyword.value, ast.Lambda
                    ):
                        for call in _contains_id_call(keyword.value):
                            yield self.finding(
                                ctx,
                                call,
                                "id() inside a key= lambda ties ordering to "
                                "memory addresses, which vary per run/worker; "
                                "key on an explicit counter instead",
                            )


# ---------------------------------------------------------------------------
# TAG001 — float equality on virtual-time/tag expressions
# ---------------------------------------------------------------------------


_TAG_WORDS = (
    "start_tag",
    "finish_tag",
    "last_finish",
    "virtual_time",
    "vtime",
    "v_time",
    "timestamp",
    "deadline",
    "eligible_at",
)


def _mentions_tag(node: ast.AST) -> Optional[str]:
    """The first tag-vocabulary identifier mentioned under ``node``."""
    for sub in ast.walk(node):
        name: Optional[str] = None
        if isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Name):
            name = sub.id
        if name is None:
            continue
        lowered = name.lower()
        if lowered.endswith("_tag") or lowered in _TAG_WORDS:
            return name
    return None


@register
class TagFloatEqualityRule(Rule):
    """``==`` / ``!=`` between float tag expressions.

    Virtual-time tags are chained sums of ``l/r`` terms; two chains that
    are *mathematically* equal can differ in the last ulp, so ``==`` on
    tags silently becomes "computed by the identical expression", which
    breaks the moment anyone refactors the arithmetic. Compare exact
    copies only (and say so in a disable directive), or use an explicit
    epsilon/ordering check.
    """

    code = "TAG001"
    summary = "float ==/!= on a virtual-time/tag expression"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            sides = [node.left, *node.comparators]
            if any(_is_none(side) for side in sides):
                continue  # None sentinels are identity checks, not math
            for side in sides:
                mentioned = _mentions_tag(side)
                if mentioned is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"exact float equality on tag expression "
                        f"`{mentioned}`; tags are chained l/r sums — use an "
                        "ordering/epsilon check, or document why the values "
                        "are exact copies",
                    )
                    break


# ---------------------------------------------------------------------------
# PERF001 — hot-path classes without __slots__
# ---------------------------------------------------------------------------


def _has_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _dataclass_with_slots(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        if isinstance(decorator, ast.Call):
            name = dotted_name(decorator.func)
            if name and name.split(".")[-1] == "dataclass":
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
    return False


def _is_exempt_base(base: ast.expr) -> bool:
    name = dotted_name(base)
    if name is None:
        return False
    leaf = name.split(".")[-1]
    return (
        leaf.endswith("Error")
        or leaf.endswith("Exception")
        or leaf in ("BaseException", "Enum", "IntEnum", "Protocol", "TypedDict", "NamedTuple")
    )


def _assigns_instance_attrs(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not stmt.args.args:
            continue
        self_name = stmt.args.args[0].arg
        for node in ast.walk(stmt):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    return True
    return False


@register
class HotPathSlotsRule(Rule):
    """Hot-path classes should declare ``__slots__``.

    Everything under ``repro.core`` and ``repro.simulation`` is
    instantiated or touched per packet/per event; ``__slots__`` removes
    the per-instance ``__dict__`` (smaller, faster attribute access) and
    turns attribute-name typos into hard errors instead of silent new
    state. Exception types, slotted dataclasses and attribute-less
    classes are exempt.
    """

    code = "PERF001"
    summary = "hot-path class without __slots__ (repro.core / repro.simulation)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_hot_path_package():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _has_slots(node) or _dataclass_with_slots(node):
                continue
            if any(_is_exempt_base(base) for base in node.bases):
                continue
            if not _assigns_instance_attrs(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"class `{node.name}` lives on the per-packet hot path but "
                "has no __slots__; declare them (or justify the instance "
                "dict with a disable directive)",
            )


# ---------------------------------------------------------------------------
# DET005 — fault/chaos seed provenance
# ---------------------------------------------------------------------------


@register
class ChaosSeedProvenanceRule(Rule):
    """RNG seeds in fault-injection and chaos code must be *derived*.

    The chaos subsystem's whole contract is that a failing run is a pure
    function of one root seed: every stream a schedule, injector, or
    campaign shard draws from must be reachable from that root through
    :func:`repro.simulation.random.derive_seed` /
    :class:`~repro.simulation.random.RandomStreams`. A raw
    ``random.Random(...)`` (ad-hoc generator, untracked seed) or a
    ``RandomStreams(<literal>)`` (hard-coded root that silently decouples
    the component from the campaign's seed grid) breaks replay and
    shrinking in ways no test notices until an artifact fails to
    reproduce.
    """

    code = "DET005"
    summary = "fault/chaos RNG seed not rooted in derive_seed()"

    _SCOPES = ("repro/chaos/", "repro/faults/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not any(scope in ctx.norm_path for scope in self._SCOPES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            leaf = name.rsplit(".", 1)[-1]
            if leaf == "Random":
                yield self.finding(
                    ctx,
                    node,
                    f"raw `{name}(...)` in fault/chaos code; draw from "
                    "RandomStreams(derive_seed(...)).stream(name) so the "
                    "generator is reachable from the campaign's root seed",
                )
            elif leaf == "RandomStreams" and node.args:
                seed = node.args[0]
                if isinstance(seed, ast.Constant):
                    yield self.finding(
                        ctx,
                        node,
                        "RandomStreams() seeded with a literal; root the "
                        "seed in derive_seed(...) so replay and shrinking "
                        "can re-derive it",
                    )


# ---------------------------------------------------------------------------
# PERF002 — direct heapq surgery on the simulator event queue
# ---------------------------------------------------------------------------

#: heapq calls that mutate a heap in place (reads like ``nsmallest``
#: don't bypass the seam).
_HEAPQ_MUTATORS = frozenset(
    {"heappush", "heappop", "heapify", "heapreplace", "heappushpop"}
)


@register
class EventQueueSeamRule(Rule):
    """No direct ``heapq`` operations on the simulator event queue.

    The event queue is a pluggable backend seam
    (:mod:`repro.simulation.eventq`): the binary heap is just one
    implementation, and a simulation may be running on the calendar
    queue instead. Code that reaches around the seam and ``heappush``\\ es
    onto a simulator's storage directly is wrong on every other backend
    — and invisible to the trace-equivalence gate until someone flips
    ``REPRO_EVENT_QUEUE``. Inside ``repro/simulation/`` every heap *is*
    (part of) the event queue, so any heapq mutation outside
    ``eventq.py`` is flagged; elsewhere only receivers that name the
    simulator or its event queue are flagged — schedulers' own internal
    heaps (flow-head heaps, GPS trackers, regulators) are fine.
    """

    code = "PERF002"
    summary = "direct heapq operation on the simulator event queue"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.norm_path.endswith("repro/simulation/eventq.py"):
            return  # the seam itself: the one home of the inlined heap ops
        module_aliases: Set[str] = set()
        func_aliases: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "heapq":
                        module_aliases.add(alias.asname or "heapq")
            elif isinstance(node, ast.ImportFrom) and node.module == "heapq":
                for alias in node.names:
                    if alias.name in _HEAPQ_MUTATORS:
                        func_aliases[alias.asname or alias.name] = alias.name
        if not module_aliases and not func_aliases:
            return
        in_simulation = "repro/simulation/" in ctx.norm_path
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            op = self._heapq_mutator(node.func, module_aliases, func_aliases)
            if op is None:
                continue
            if in_simulation:
                yield self.finding(
                    ctx,
                    node,
                    f"`{op}` on the event queue outside repro.simulation."
                    "eventq; go through the EventQueue interface (push/"
                    "pop/peek_live/drain) so every backend stays correct",
                )
            elif node.args and self._names_event_queue(node.args[0]):
                yield self.finding(
                    ctx,
                    node,
                    f"`{op}` reaches into a simulator's event queue from "
                    "outside repro.simulation.eventq; use the Simulator "
                    "scheduling API or the EventQueue interface instead",
                )

    @staticmethod
    def _heapq_mutator(
        func: ast.expr,
        module_aliases: Set[str],
        func_aliases: Dict[str, str],
    ) -> Optional[str]:
        """The heapq mutator name a call invokes, if any."""
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
                and func.attr in _HEAPQ_MUTATORS
            ):
                return func.attr
        elif isinstance(func, ast.Name) and func.id in func_aliases:
            return func_aliases[func.id]
        return None

    @staticmethod
    def _names_event_queue(receiver: ast.expr) -> bool:
        """True when the heap receiver names a simulator's event queue.

        Heuristic on the dotted receiver path (``sim._heap``,
        ``self.sim._queue._heap``, ``event_heap``): any component that
        is ``sim``/``simulator`` or contains ``event``. Scheduler-
        internal heaps (``self._head_heap``, ``self._gsq_heap``, local
        ``heap`` variables) never match.
        """
        name = dotted_name(receiver)
        if name is None:
            return False
        for part in name.lower().split("."):
            bare = part.strip("_")
            if bare in ("sim", "simulator") or "event" in bare:
                return True
        return False


# ---------------------------------------------------------------------------
# PERF003 — allocations / uncached attribute chains in `# lint: hot` functions
# ---------------------------------------------------------------------------


_HOT_RE = re.compile(r"#\s*lint:\s*hot\b")

#: Builtin constructors that allocate a fresh container per call.
_ALLOCATING_BUILTINS = frozenset({"list", "dict", "set", "tuple"})


def hot_function_lines(source: str) -> FrozenSet[int]:
    """1-based line numbers carrying a ``# lint: hot`` marker."""
    return frozenset(
        lineno
        for lineno, text in enumerate(source.splitlines(), start=1)
        if "lint:" in text and _HOT_RE.search(text)
    )


@register
class HotFunctionAllocationRule(Rule):
    """Per-iteration allocation in functions marked ``# lint: hot``.

    The drain loops (`eventq`), the ``Link`` busy-period completion
    chain, and the array-heap enqueue/dequeue are the measured inner
    loops of every benchmark: a list comprehension or a ``{...}``
    display there is a per-event allocation, and an attribute chain
    re-read every iteration is a dict lookup CPython will not hoist.
    Mark such functions with ``# lint: hot`` on (or directly above) the
    ``def`` line; the marker is also what seeds PERF003's scope — cold
    code is free to allocate.
    """

    code = "PERF003"
    summary = "allocation or repeated attribute chain in a `# lint: hot` function"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        hot_lines = hot_function_lines(ctx.source)
        if not hot_lines:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and self._is_hot(node, hot_lines):
                yield from self._check_hot(ctx, node)

    @staticmethod
    def _is_hot(
        node: ast.AST, hot_lines: FrozenSet[int]
    ) -> bool:
        """Marker on the ``def`` line, a decorator line, or just above."""
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        first = min(
            [node.lineno] + [dec.lineno for dec in node.decorator_list]
        )
        return any(
            line in hot_lines for line in range(first - 1, node.lineno + 1)
        )

    def _check_hot(
        self, ctx: ModuleContext, fn: ast.AST
    ) -> Iterator[Finding]:
        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        # Comprehensions allocate wherever they appear in a hot body.
        kinds = {
            ast.ListComp: "list comprehension",
            ast.SetComp: "set comprehension",
            ast.DictComp: "dict comprehension",
            ast.GeneratorExp: "generator expression",
        }
        for node in ast.walk(fn):
            kind = kinds.get(type(node))
            if kind is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} allocates on every call of hot function "
                    f"`{fn.name}`; hoist it out of the hot path or build "
                    "into a reused buffer",
                )
        # Displays / allocating constructors / lambdas *inside loops*.
        for loop in ast.walk(fn):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            yield from self._check_loop(ctx, fn.name, loop)

    def _check_loop(
        self, ctx: ModuleContext, fn_name: str, loop: ast.stmt
    ) -> Iterator[Finding]:
        body = getattr(loop, "body", []) + getattr(loop, "orelse", [])
        chains: Dict[str, List[ast.Attribute]] = {}
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    continue  # nested loops report themselves
                if isinstance(node, (ast.List, ast.Dict, ast.Set)) and (
                    getattr(node, "elts", None) or getattr(node, "keys", None)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"container display allocates every iteration of a "
                        f"loop in hot function `{fn_name}`",
                    )
                elif isinstance(node, ast.Lambda):
                    yield self.finding(
                        ctx,
                        node,
                        f"lambda allocates a closure every iteration of a "
                        f"loop in hot function `{fn_name}`; define it once "
                        "outside the loop",
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ALLOCATING_BUILTINS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"`{node.func.id}(...)` allocates every iteration of "
                        f"a loop in hot function `{fn_name}`",
                    )
                elif (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and isinstance(node.value, ast.Attribute)
                ):
                    dotted = dotted_name(node)
                    if dotted is not None:
                        chains.setdefault(dotted, []).append(node)
        for dotted, nodes in sorted(chains.items()):
            # Skip chains that are a prefix of a longer recorded chain
            # (reported once, at full length).
            if any(
                other != dotted and other.startswith(dotted + ".")
                for other in chains
            ):
                continue
            if len(nodes) >= 2:
                yield self.finding(
                    ctx,
                    nodes[0],
                    f"attribute chain `{dotted}` is re-read {len(nodes)}x "
                    f"inside a loop in hot function `{fn_name}`; bind it to "
                    "a local before the loop",
                )
