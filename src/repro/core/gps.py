"""Fluid GPS (bit-by-bit weighted round robin) virtual-time tracker.

WFQ and FQS define the system virtual time ``v(t)`` as the round number
of a hypothetical bit-by-bit weighted round robin server (paper eq. 3):

.. math:: \\frac{dv(t)}{dt} = \\frac{C}{\\sum_{j \\in B(t)} r_j}

where ``B(t)`` is the set of flows backlogged *in the fluid system* and
``C`` the link capacity. Computing ``v(t)`` requires simulating the
fluid system in real time — the expense the paper holds against WFQ.

Crucially, the tracker advances with an **assumed** capacity ``C``: if
the actual server rate differs (Example 2; any variable-rate server) the
fluid system diverges from reality and WFQ's fairness breaks. This
module deliberately reproduces that behaviour — the assumed capacity is
a constructor argument wholly decoupled from the real
:class:`repro.servers.link.Link` capacity process.

Implementation: ``v(t)`` is piecewise linear. We keep the fluid-backlog
set with its weight sum and a lazy min-heap of fluid departure epochs
(per-flow largest finish tag); ``advance(t)`` walks the pieces.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Tuple


class GPSVirtualClock:
    """Piecewise-linear fluid GPS virtual time."""

    __slots__ = (
        "capacity",
        "v",
        "v_time",
        "_active",
        "_sum_weights",
        "_heap",
        "pieces_computed",
        "retirements",
        "max_pieces_single_advance",
    )

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"assumed capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.v = 0.0
        self.v_time = 0.0  # wall time at which self.v is current
        # flow -> (weight, largest finish tag in the fluid system)
        self._active: Dict[Hashable, Tuple[float, float]] = {}
        self._sum_weights = 0.0
        self._heap: List[Tuple[float, Hashable]] = []  # lazy (finish, flow)
        self.pieces_computed = 0  # linear segments walked (amortized O(1)/pkt)
        self.retirements = 0  # fluid departures processed
        #: Worst work (segments + retirements) done by one advance()
        #: call — the per-packet latency spike the paper's efficiency
        #: critique is about (amortized work is O(1) per packet; the
        #: worst single call is O(Q) when an idle gap lets every fluid
        #: flow drain before the next arrival).
        self.max_pieces_single_advance = 0

    # ------------------------------------------------------------------
    def advance(self, t: float) -> float:
        """Advance the fluid system to wall time ``t``; return ``v(t)``."""
        if t < self.v_time:
            raise ValueError(f"time went backwards: {t} < {self.v_time}")
        capacity = self.capacity
        work_before = self.pieces_computed + self.retirements
        while self.v_time < t:
            self._prune()
            if not self._active:
                # Fluid system idle: v holds its value.
                self.v_time = t
                break
            v_next = self._heap[0][0]
            sum_w = self._sum_weights
            dt_needed = (v_next - self.v) * sum_w / capacity
            self.pieces_computed += 1
            if self.v_time + dt_needed <= t:
                # A fluid departure happens before (or at) t.
                self.v = v_next
                self.v_time += dt_needed
                self._retire(v_next)
            else:
                self.v += (t - self.v_time) * capacity / sum_w
                self.v_time = t
        work_here = self.pieces_computed + self.retirements - work_before
        if work_here > self.max_pieces_single_advance:
            self.max_pieces_single_advance = work_here
        return self.v

    def on_arrival(self, flow: Hashable, weight: float, finish_tag: float) -> None:
        """Register fluid work: the flow is fluid-backlogged until ``v``
        reaches ``finish_tag``. Call only after ``advance(now)``."""
        entry = self._active.get(flow)
        if entry is None:
            self._active[flow] = (weight, finish_tag)
            self._sum_weights += weight
        else:
            old_weight, old_finish = entry
            self._active[flow] = (old_weight, max(old_finish, finish_tag))
        heapq.heappush(self._heap, (finish_tag, flow))

    # ------------------------------------------------------------------
    def _prune(self) -> None:
        """Drop stale heap entries (superseded finish tags)."""
        heap = self._heap
        while heap:
            finish, flow = heap[0]
            entry = self._active.get(flow)
            if entry is None or entry[1] > finish:
                heapq.heappop(heap)
            else:
                break

    def _retire(self, v_now: float) -> None:
        """Remove flows whose fluid backlog drains at virtual time v_now."""
        heap = self._heap
        while heap:
            finish, flow = heap[0]
            entry = self._active.get(flow)
            if entry is None or entry[1] > finish:
                heapq.heappop(heap)
                continue
            if finish <= v_now:
                heapq.heappop(heap)
                self.retirements += 1
                self._sum_weights -= entry[0]
                del self._active[flow]
            else:
                break
        if not self._active:
            self._sum_weights = 0.0  # kill accumulated float drift

    @property
    def fluid_backlogged_flows(self) -> int:
        return len(self._active)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GPSVirtualClock(C={self.capacity:.9g}, v={self.v:.9g} "
            f"@t={self.v_time:.9g}, active={len(self._active)})"
        )
