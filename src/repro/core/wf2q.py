"""WF²Q (Worst-case Fair Weighted Fair Queueing) — extension baseline.

Bennett & Zhang's WF²Q (INFOCOM 1996, contemporaneous with the paper)
fixes WFQ's burstiness by restricting the finish-tag scan to *eligible*
packets — those whose fluid-GPS service has already started, i.e.
:math:`S(p) \\le v(t)` — and serving the eligible packet with the
smallest finish tag.

It is included as an extension row in the fairness comparison: like WFQ
it needs the fluid GPS simulation (expensive, and it inherits the
assumed-capacity fragility of Example 2 on variable-rate servers), but
its worst-case fairness on the *correct* constant-rate server is the
best known. Comparing it against SFQ illustrates the paper's trade-off:
SFQ gives up a little single-server delay tightness to gain
self-clocking (no capacity assumption) at O(log Q).

If no packet is eligible at a dequeue instant (possible because the
real server can run ahead of the fluid system), the packet with the
smallest start tag is served — the standard work-conserving fallback
(this makes the discipline WF2Q-like rather than idling).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.base import Scheduler
from repro.core.flow import FlowState
from repro.core.gps import GPSVirtualClock
from repro.core.packet import Packet


class WF2Q(Scheduler):
    """Worst-case Fair Weighted Fair Queueing (work-conserving variant)."""

    algorithm = "WF2Q"

    def __init__(
        self,
        assumed_capacity: float,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self.gps = GPSVirtualClock(assumed_capacity)
        # Heap of (finish, uid, packet) — scanned for eligibility.
        self._heap: List[Tuple[float, int, Packet]] = []

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        v = self.gps.advance(now)
        rate = state.packet_rate(packet)
        start = max(v, state.last_finish)
        finish = start + packet.length / rate
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        self.gps.on_arrival(packet.flow, state.weight, finish)
        heapq.heappush(self._heap, (finish, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        v = self.gps.advance(now)
        # Pop ineligible heads aside until an eligible packet surfaces.
        shelved: List[Tuple[float, int, Packet]] = []
        chosen: Optional[Packet] = None
        while self._heap:
            finish, uid, packet = heapq.heappop(self._heap)
            if packet.start_tag is not None and packet.start_tag <= v + 1e-12:
                chosen = packet
                break
            shelved.append((finish, uid, packet))
        for entry in shelved:
            heapq.heappush(self._heap, entry)
        if chosen is None:
            # Work-conserving fallback: smallest start tag.
            chosen = min(
                (entry[2] for entry in self._heap), key=lambda p: p.start_tag
            )
            self._heap = [e for e in self._heap if e[2] is not chosen]
            heapq.heapify(self._heap)
        state = self.flows[chosen.flow]
        popped = state.pop()
        assert popped is chosen, "per-flow FIFO must match tag order"
        return chosen

    def peek(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        v = self.gps.advance(now)
        eligible = [p for _f, _u, p in self._heap if p.start_tag <= v + 1e-12]
        if eligible:
            return min(eligible, key=lambda p: (p.finish_tag, p.uid))
        return min((p for _f, _u, p in self._heap), key=lambda p: p.start_tag)

    @property
    def virtual_time(self) -> float:
        return self.gps.v
