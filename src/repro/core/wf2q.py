"""WF²Q (Worst-case Fair Weighted Fair Queueing) — extension baseline.

Bennett & Zhang's WF²Q (INFOCOM 1996, contemporaneous with the paper)
fixes WFQ's burstiness by restricting the finish-tag scan to *eligible*
packets — those whose fluid-GPS service has already started, i.e.
:math:`S(p) \\le v(t)` — and serving the eligible packet with the
smallest finish tag.

It is included as an extension row in the fairness comparison: like WFQ
it needs the fluid GPS simulation (expensive, and it inherits the
assumed-capacity fragility of Example 2 on variable-rate servers), but
its worst-case fairness on the *correct* constant-rate server is the
best known. Comparing it against SFQ illustrates the paper's trade-off:
SFQ gives up a little single-server delay tightness to gain
self-clocking (no capacity assumption) at O(log Q).

If no packet is eligible at a dequeue instant (possible because the
real server can run ahead of the fluid system), the packet with the
smallest start tag is served — the standard work-conserving fallback
(this makes the discipline WF2Q-like rather than idling). Ties in the
fallback are broken by packet uid (arrival order), which is
deterministic; the pre-flow-head-heap core broke them by internal heap
layout.

Eligibility only ever needs to inspect flow heads: within a flow both
start and finish tags are monotone, so if any queued packet of a flow is
eligible its head is too, with a smaller finish tag. WF²Q therefore
shelves/restores at most one entry per backlogged flow per dequeue —
the eligibility-gated selection path of the PIFO engine.

The discipline itself lives in :class:`repro.core.pifo.Wf2qRank`
(``eligibility=True``); this class is a deprecation shim. Construct
through ``repro.make_scheduler("WF2Q", capacity=...)``.
"""

from __future__ import annotations

from repro.core.pifo import PifoScheduler, Wf2qRank, warn_direct_construction

__all__ = ["WF2Q"]


class WF2Q(PifoScheduler):
    """Worst-case Fair WFQ (deprecation shim over the PIFO engine)."""

    __slots__ = ()

    algorithm = "WF2Q"

    def __init__(
        self,
        assumed_capacity: float,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(WF2Q, type(self))
        super().__init__(
            Wf2qRank(assumed_capacity),
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
