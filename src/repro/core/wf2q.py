"""WF²Q (Worst-case Fair Weighted Fair Queueing) — extension baseline.

Bennett & Zhang's WF²Q (INFOCOM 1996, contemporaneous with the paper)
fixes WFQ's burstiness by restricting the finish-tag scan to *eligible*
packets — those whose fluid-GPS service has already started, i.e.
:math:`S(p) \\le v(t)` — and serving the eligible packet with the
smallest finish tag.

It is included as an extension row in the fairness comparison: like WFQ
it needs the fluid GPS simulation (expensive, and it inherits the
assumed-capacity fragility of Example 2 on variable-rate servers), but
its worst-case fairness on the *correct* constant-rate server is the
best known. Comparing it against SFQ illustrates the paper's trade-off:
SFQ gives up a little single-server delay tightness to gain
self-clocking (no capacity assumption) at O(log Q).

If no packet is eligible at a dequeue instant (possible because the
real server can run ahead of the fluid system), the packet with the
smallest start tag is served — the standard work-conserving fallback
(this makes the discipline WF2Q-like rather than idling). Ties in the
fallback are broken by packet uid (arrival order), which is
deterministic; the pre-flow-head-heap core broke them by internal heap
layout.

Eligibility only ever needs to inspect flow heads: within a flow both
start and finish tags are monotone, so if any queued packet of a flow is
eligible its head is too, with a smaller finish tag. WF²Q therefore
shelves/restores at most one entry per backlogged flow per dequeue.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.core.flow import FlowState
from repro.core.gps import GPSVirtualClock
from repro.core.headheap import HeadHeapScheduler, HeapEntry
from repro.core.packet import Packet
from repro.core.tagmath import start_finish


class WF2Q(HeadHeapScheduler):
    """Worst-case Fair Weighted Fair Queueing (work-conserving variant)."""

    __slots__ = ("gps",)

    algorithm = "WF2Q"

    def __init__(
        self,
        assumed_capacity: float,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
        self.gps = GPSVirtualClock(assumed_capacity)

    def _tag_packet(self, state: FlowState, packet: Packet, now: float) -> float:
        v = self.gps.advance(now)
        # The exact-float tag recursion is shared with the slab backend
        # via repro.core.tagmath (see its module docstring).
        start, finish = start_finish(
            v, state.last_finish, packet.length, state._weight, packet.rate
        )
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        self.gps.on_arrival(packet.flow, state.weight, finish)
        return finish

    def _head_key(self, packet: Packet) -> float:
        return packet.finish_tag  # type: ignore[return-value]  # stamped on enqueue

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        heap = self._head_heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        v = self.gps.advance(now)
        # Pop ineligible flow heads aside until an eligible one surfaces.
        shelved: List[HeapEntry] = []
        chosen: Optional[HeapEntry] = None
        while heap:
            entry = heapq.heappop(heap)
            packet = entry[3]
            if packet is None:
                continue
            if packet.start_tag is not None and packet.start_tag <= v + 1e-12:
                chosen = entry
                break
            shelved.append(entry)
        if chosen is None:
            # Work-conserving fallback: smallest start tag, ties by uid.
            chosen = min(shelved, key=lambda e: (e[3].start_tag, e[2]))
            for entry in shelved:
                if entry is not chosen:
                    heapq.heappush(heap, entry)
        else:
            for entry in shelved:
                heapq.heappush(heap, entry)
        return self._consume_entry(chosen)

    def peek(self, now: float) -> Optional[Packet]:
        """Packet the next ``dequeue`` would return (no side effects)."""
        heap = self._head_heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        v = self.gps.advance(now)
        live = [e for e in heap if e[3] is not None]
        eligible = [e for e in live if e[3].start_tag <= v + 1e-12]
        if eligible:
            return min(eligible, key=lambda e: (e[3].finish_tag, e[2]))[3]
        return min(live, key=lambda e: (e[3].start_tag, e[2]))[3]

    @property
    def virtual_time(self) -> float:
        """Fluid GPS virtual time at the last advance."""
        return self.gps.v
