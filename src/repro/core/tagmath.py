"""Shared tag arithmetic for both scheduler backends.

PR 7 copied the start/finish-tag expressions of the object backend
(:mod:`repro.core.sfq` and friends) "expression-for-expression" into the
slab backend (:mod:`repro.core.arrayheap`) to guarantee byte-identical
schedules. That guarantee now lives *here*, once: both backends call
these helpers, so the two copies cannot drift.

Exact-float discipline
----------------------
Byte-identical schedules across backends require bit-identical tags, so
every expression below is the seed core's, verbatim:

* ``max(v, last_finish)`` with the virtual time as the *first* argument
  (``max`` returns its first argument on ties — the argument order is
  part of the contract);
* ``length / r`` — divide, never multiply by a cached ``1/r``: ``l/r``
  and ``l*(1/r)`` differ in ulps for non-dyadic rates, and a near-tie in
  tags would then break differently between backends, flipping the
  service order.

The helpers are deliberately *pure* (no Packet, no FlowState, no slab):
each backend keeps its own state addressing and only the arithmetic is
shared. They are also ``mypyc``-friendly — plain module-level functions
over ``float``/``int`` — so ``scripts/build_compiled.py`` can compile
this module into a C extension that the import system then prefers
transparently; the pure-Python form stays the reference and the
fallback.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["start_finish", "eat_step"]


def start_finish(
    v: float,
    last_finish: float,
    length: int,
    weight: float,
    rate: Optional[float],
) -> Tuple[float, float]:
    """Start/finish tags for a packet arriving into virtual time ``v``.

    Implements the tag recursion shared by SFQ, SCFQ, WFQ, FQS and
    WF2Q (paper Section 2, eqs. 1-2): the start tag is the maximum of
    the system virtual time and the flow's previous finish tag; the
    finish tag adds the packet's service in virtual time, ``length``
    over the flow ``weight`` — or over the per-packet ``rate``
    :math:`r_f^j` when one is assigned (generalized SFQ, eq. 36).

    Returns ``(start, finish)``; the caller stamps the packet and
    stores ``finish`` as the flow's new ``last_finish``.
    """
    start = max(v, last_finish)
    finish = start + length / (weight if rate is None else rate)
    return start, finish


def eat_step(
    arrival: float,
    prev_eat: float,
    prev_service: float,
    length: int,
    rate: float,
) -> Tuple[float, float]:
    """One step of the expected-arrival-time recursion (eq. 37).

    ``EAT(p) = max(arrival, EAT(prev) + service(prev))`` with
    ``service(p) = length / rate``. Returns ``(eat, service)``; the
    caller stores both for the next step (and Virtual Clock stamps the
    packet with ``eat + service``).
    """
    eat = max(arrival, prev_eat + prev_service)
    return eat, length / rate
