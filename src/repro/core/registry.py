"""Declarative scheduler registry — the public construction API.

Every scheduling discipline in the repo is registered here with a
:class:`SchedulerSpec` describing its constructor surface: which extra
parameters it accepts, whether it needs the link capacity
(rate-proportional disciplines — WFQ, FQS, WF2Q — simulate a fluid GPS
reference and must be told the rate they emulate), and what it is. The
one public entry point experiments and users construct through is::

    from repro import make_scheduler

    make_scheduler("SFQ")
    make_scheduler("WFQ", capacity=1e6, auto_register=False)
    make_scheduler("DRR", quantum_scale=2.0)

Rank functions (registry API v2)
--------------------------------
Since the PIFO core (:mod:`repro.core.pifo`) every tag discipline *is*
a rank function, and the registry exposes that seam:

* each tag spec carries ``rank_fn`` — the :class:`~repro.core.pifo.RankFn`
  factory its engine runs on;
* ``make_scheduler(name, bands=k)`` builds the discipline on the
  SP-PIFO band approximation instead of the exact engine (``bands=0``
  selects the exact side of :class:`~repro.core.pifo.SpPifoScheduler`);
* ``make_scheduler("MyThing", rank_fn=MyRank)`` registers and constructs
  a brand-new discipline from an ad-hoc rank function — a new
  discipline in ~10 lines;
* :func:`list_schedulers` / :func:`describe_scheduler` introspect the
  registry without constructing anything.

Uniform-ladder contract
-----------------------
``capacity`` may always be passed: disciplines that need it receive it
as ``assumed_capacity`` (rank-function factories are handed
``assumed_capacity=`` once, at spec level — no per-discipline special
cases), self-clocked disciplines (SFQ, SCFQ, DRR, ...) ignore it. A
missing capacity raises ``TypeError`` naming the offending discipline.
That one rule lets a comparison ladder construct every Table-1
algorithm with a single call shape instead of per-algorithm lambdas.

Normalized defaults
-------------------
Raw constructors disagree on ``auto_register``: most schedulers default
``True`` (first packet of an unknown flow registers it at
``default_weight``) but ``DelayEDD``/``JitterEDD`` default ``False``
(their flows need an explicit deadline/rate anyway, so silent
registration only defers the error). The registry removes the
inconsistency: :func:`make_scheduler` passes ``auto_register=True`` for
*every* discipline unless the caller says otherwise. EDD disciplines
still require :meth:`add_flow_with_deadline` before a flow's first
enqueue — the normalization changes when the mistake is reported, not
the requirement.

Backends
--------
The tag disciplines ship two interchangeable implementations:

* ``"object"`` — the reference path: one ``FlowState`` object per flow
  (:mod:`repro.core.headheap` under :class:`repro.core.pifo.PifoScheduler`).
  Always available, easiest to read and debug, and the implementation
  the trace-equivalence suite treats as ground truth.
* ``"array"`` — the struct-of-arrays slab + int-keyed flow-head heap
  (:mod:`repro.core.slab` / :mod:`repro.core.arrayheap`), byte-identical
  in service order but sized for 10^5–10^6 flows.

Select per call (``make_scheduler("SFQ", backend="array")``), per
process (:func:`set_default_backend`), or per environment
(``REPRO_SCHED_BACKEND=array``). Disciplines without an array variant
(DRR, FIFO, JitterEDD, ...) fall back to their object implementation
under ``backend="array"`` so a ladder can set one backend for every
discipline it constructs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, cast

from repro.core.arrayheap import (
    ArrayDelayEDD,
    ArrayFQS,
    ArrayLSTF,
    ArrayPifoScheduler,
    ArraySCFQ,
    ArraySFQ,
    ArrayVirtualClock,
    ArrayWF2Q,
    ArrayWFQ,
)
from repro.core.base import Scheduler
from repro.core.drr import DRR, WRR
from repro.core.delay_edd import DelayEDD
from repro.core.fair_airport import FairAirport
from repro.core.fifo import FIFO
from repro.core.jitter_edd import JitterEDD
from repro.core.pifo import (
    LSTF,
    DelayEddRank,
    FqsRank,
    LstfRank,
    PifoScheduler,
    RankFn,
    ScfqRank,
    SfqRank,
    SpPifoScheduler,
    VcRank,
    Wf2qRank,
    WfqRank,
    registry_construction,
)
from repro.core.scfq import SCFQ
from repro.core.sfq import SFQ
from repro.core.virtual_clock import VirtualClock
from repro.core.wf2q import WF2Q
from repro.core.wfq import FQS, WFQ

__all__ = [
    "ParamSpec",
    "SchedulerSpec",
    "available_schedulers",
    "default_backend",
    "describe_scheduler",
    "list_schedulers",
    "make_scheduler",
    "register_scheduler",
    "scheduler_spec",
    "set_default_backend",
]

#: Backends accepted by :func:`make_scheduler` / :func:`set_default_backend`.
_BACKENDS = ("object", "array")

#: A rank-function factory: a RankFn subclass or zero/one-arg callable.
#: Rate-proportional factories (``needs_capacity = True`` on the class)
#: are called with ``assumed_capacity=<capacity>``; the rest with no
#: arguments.
RankFactory = Callable[..., RankFn]


@dataclass(frozen=True, slots=True)
class ParamSpec:
    """One optional constructor parameter of a discipline."""

    name: str
    kind: str  # "bool" | "float" | "callable" — documentation, not enforcement
    doc: str


@dataclass(frozen=True, slots=True)
class SchedulerSpec:
    """Construction contract of one registered discipline."""

    name: str
    cls: Type[Scheduler]
    description: str
    #: True for rate-proportional disciplines that must be told the link
    #: rate they emulate (constructor / rank factory takes
    #: ``assumed_capacity``).
    needs_capacity: bool = False
    params: Tuple[ParamSpec, ...] = ()
    #: Slab-backed implementation (``backend="array"``), or None when
    #: the discipline only has the object path (the factory then falls
    #: back to ``cls`` so backend selection is uniform across a ladder).
    array_cls: Optional[Type[Scheduler]] = None
    #: Rank-function factory for disciplines that run on the PIFO
    #: engines; enables ``make_scheduler(name, bands=k)``. None for
    #: round-robin/FIFO-style disciplines with no rank formulation.
    rank_fn: Optional[RankFactory] = None
    #: Default SP-PIFO band count for specs constructed on
    #: :class:`~repro.core.pifo.SpPifoScheduler` (``cls`` is the engine).
    bands: Optional[int] = None
    #: True when ``cls``/``array_cls`` are bare PIFO engines taking the
    #: rank as their first argument (ad-hoc ``rank_fn=`` registrations),
    #: rather than named discipline classes that build their own rank.
    rank_engine: bool = False

    def param_names(self) -> Tuple[str, ...]:
        """Accepted keyword names, in declaration order."""
        return tuple(p.name for p in self.params)

    def backend_cls(self, backend: str) -> Type[Scheduler]:
        """Implementation class for ``backend`` (with object fallback)."""
        if backend == "array" and self.array_cls is not None:
            return self.array_cls
        return self.cls


#: Process-wide default backend; resolved lazily so the environment
#: variable is honored even when repro is imported before it is set
#: by a test harness.
_DEFAULT_BACKEND: Optional[str] = None


def _validate_backend(backend: str) -> str:
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown scheduler backend {backend!r}; available: "
            + ", ".join(_BACKENDS)
        )
    return backend


def default_backend() -> str:
    """The backend used when :func:`make_scheduler` gets no ``backend``.

    Resolution order: :func:`set_default_backend` if called, else the
    ``REPRO_SCHED_BACKEND`` environment variable, else ``"object"``.
    """
    if _DEFAULT_BACKEND is not None:
        return _DEFAULT_BACKEND
    env = os.environ.get("REPRO_SCHED_BACKEND")  # lint: disable=CACHE001  backend selection is result-invariant: the trace-equivalence suite gates byte-identical schedules across backends
    if env:
        return _validate_backend(env.strip().lower())
    return "object"


def set_default_backend(backend: Optional[str]) -> None:
    """Set the process-wide default backend (``None`` resets to the
    environment/``"object"`` resolution)."""
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = None if backend is None else _validate_backend(backend)


_AUTO_REGISTER = ParamSpec(
    "auto_register",
    "bool",
    "register unknown flows at default_weight on first enqueue "
    "(registry default: True for every discipline)",
)
_DEFAULT_WEIGHT = ParamSpec(
    "default_weight", "float", "weight given to auto-registered flows"
)
_TIE_BREAK = ParamSpec(
    "tie_break", "callable", "tag tie-break rule (see repro.core.base.TieBreak)"
)
_DEBUG_CHECKS = ParamSpec(
    "debug_checks", "bool", "enable O(n) per-event invariant assertions"
)
_TRACK_INVERSIONS = ParamSpec(
    "track_inversions",
    "bool",
    "maintain the exact side-heap and count rank inversions (SP-PIFO)",
)

_COMMON = (_AUTO_REGISTER, _DEFAULT_WEIGHT)

#: Parameters the SP-PIFO engine accepts regardless of spec (the band
#: approximation has no tie-break or debug-check machinery).
_SP_PIFO_PARAMS = frozenset(
    ("auto_register", "default_weight", "track_inversions")
)

#: canonical name -> spec, in Table-1 presentation order.
_REGISTRY: Dict[str, SchedulerSpec] = {}
#: lower-cased alias -> canonical name.
_ALIASES: Dict[str, str] = {}


def register_scheduler(spec: SchedulerSpec) -> SchedulerSpec:
    """Add (or replace) a discipline in the registry.

    The name is matched case-insensitively by :func:`make_scheduler`.
    Returns the spec so callers can ``register_scheduler(SchedulerSpec(
    ...))`` and keep the handle.
    """
    _REGISTRY[spec.name] = spec  # lint: disable=CACHE001  idempotent name-keyed registration (import-time setup), not result state
    _ALIASES[spec.name.lower()] = spec.name  # lint: disable=CACHE001  idempotent name-keyed registration (import-time setup), not result state
    return spec


def available_schedulers() -> List[str]:
    """Canonical names of every registered discipline, in registration
    (Table 1) order."""
    return list(_REGISTRY)


def list_schedulers() -> List[str]:
    """Canonical names of every registered discipline (introspection
    alias of :func:`available_schedulers`, exported from ``repro``)."""
    return available_schedulers()


def scheduler_spec(name: str) -> SchedulerSpec:
    """The :class:`SchedulerSpec` for ``name`` (case-insensitive).

    Raises ``ValueError`` naming the available disciplines when the
    lookup fails — the error a CLI typo should produce.
    """
    canonical = _ALIASES.get(name.lower())
    if canonical is None:
        raise ValueError(
            f"unknown scheduler {name!r}; available: "
            + ", ".join(available_schedulers())
        )
    return _REGISTRY[canonical]


def describe_scheduler(name: str) -> str:
    """Human-readable description of one registered discipline.

    Covers the construction contract: backends, capacity requirement,
    rank function (when the discipline runs on the PIFO engines), band
    default, and the accepted parameters with their docs.
    """
    spec = scheduler_spec(name)
    lines = [f"{spec.name}: {spec.description}"]
    backends = "object, array" if spec.array_cls is not None else "object"
    lines.append(f"  backends: {backends}")
    if spec.needs_capacity:
        lines.append(
            "  capacity: required (rate-proportional; pass "
            f"make_scheduler({spec.name!r}, capacity=<bits/s>))"
        )
    else:
        lines.append("  capacity: not needed (self-clocked); accepted and ignored")
    if spec.rank_fn is not None:
        rank_name = getattr(spec.rank_fn, "__name__", repr(spec.rank_fn))
        lines.append(
            f"  rank_fn: {rank_name} (supports bands=k for the SP-PIFO "
            "approximation; bands=0 selects the exact PIFO heap)"
        )
        if spec.bands is not None:
            lines.append(f"  bands default: {spec.bands}")
    for param in spec.params:
        lines.append(f"  {param.name} ({param.kind}): {param.doc}")
    return "\n".join(lines)


def _validate_params(spec: SchedulerSpec, kwargs: Dict[str, Any]) -> None:
    allowed = set(spec.param_names())
    unknown = sorted(set(kwargs) - allowed)
    if unknown:
        raise TypeError(
            f"{spec.name} does not accept {', '.join(map(repr, unknown))}; "
            f"accepted parameters: {', '.join(spec.param_names()) or 'none'}"
        )


def _build_rank(spec: SchedulerSpec, capacity: Optional[float]) -> RankFn:
    """Instantiate a spec's rank function, injecting the link rate once.

    This is the single place the capacity contract lives for the PIFO
    engines: rate-proportional rank functions declare
    ``needs_capacity = True`` and get ``assumed_capacity=`` here; a
    missing capacity raises ``TypeError`` naming the discipline.
    """
    factory = spec.rank_fn
    if factory is None:
        raise TypeError(
            f"{spec.name} has no rank function registered; it cannot run "
            "on the PIFO/SP-PIFO engines (bands=/rank-engine construction)"
        )
    if spec.needs_capacity:
        if capacity is None:
            raise TypeError(
                f"{spec.name} is rate-proportional and needs the link "
                f"rate: make_scheduler({spec.name!r}, capacity=...)"
            )
        return factory(assumed_capacity=capacity)
    return factory()


def _ensure_rank_spec(name: str, rank_fn: RankFactory) -> SchedulerSpec:
    """Resolve (registering on first use) the spec for an ad-hoc rank.

    The registered spec's ``cls``/``array_cls`` are dynamically named
    subclasses of the bare PIFO engines, so ``scheduler.algorithm`` and
    trace labels carry the discipline's name.
    """
    canonical = _ALIASES.get(name.lower())
    if canonical is not None:
        spec = _REGISTRY[canonical]
        if not spec.rank_engine:
            raise TypeError(
                f"{spec.name} is already registered as a built-in "
                "discipline; pick a new name for an ad-hoc rank_fn"
            )
        if spec.rank_fn is not rank_fn:
            raise TypeError(
                f"{spec.name} is already registered with a different "
                "rank_fn; re-register explicitly via register_scheduler()"
            )
        return spec
    needs_capacity = bool(getattr(rank_fn, "needs_capacity", False))
    rank_label = getattr(rank_fn, "__name__", repr(rank_fn))
    cls = cast(
        Type[Scheduler],
        type(name, (PifoScheduler,), {"__slots__": (), "algorithm": name}),
    )
    array_cls = cast(
        Type[Scheduler],
        type(
            f"Array{name}",
            (ArrayPifoScheduler,),
            {"__slots__": (), "algorithm": name},
        ),
    )
    return register_scheduler(
        SchedulerSpec(
            name,
            cls,
            f"ad-hoc rank-function discipline ({rank_label})",
            needs_capacity=needs_capacity,
            params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
            array_cls=array_cls,
            rank_fn=rank_fn,
            rank_engine=True,
        )
    )


def make_scheduler(
    name: str,
    *,
    capacity: float | None = None,
    backend: str | None = None,
    bands: int | None = None,
    rank_fn: RankFactory | None = None,
    **params: Any,
) -> Scheduler:
    """Construct the discipline ``name`` — the public factory.

    Parameters
    ----------
    name:
        Any registered discipline, case-insensitive (``"SFQ"``,
        ``"wfq"``, ...); see :func:`list_schedulers`. With ``rank_fn=``,
        a new name registers the ad-hoc discipline on first use.
    capacity:
        Link rate in bits/s. Required by rate-proportional disciplines
        (WFQ, FQS, WF2Q), accepted and ignored by the rest, so a ladder
        can pass it unconditionally.
    backend:
        ``"object"`` (per-flow FlowState objects, the reference path) or
        ``"array"`` (struct-of-arrays slab, byte-identical schedules at
        million-flow scale). ``None`` uses :func:`default_backend`.
        Disciplines without an array variant fall back to their object
        implementation.
    bands:
        When given, build the discipline's rank function on the SP-PIFO
        band approximation (:class:`~repro.core.pifo.SpPifoScheduler`)
        with ``bands`` strict-priority queues instead of the exact PIFO
        engine. ``bands=0`` selects the engine's exact (k=∞) mode.
        Requires the spec to carry a ``rank_fn``.
    rank_fn:
        A :class:`~repro.core.pifo.RankFn` factory defining a brand-new
        discipline; registered under ``name`` on first use (see the
        module docstring — a new discipline in ~10 lines).
    params:
        Discipline-specific keywords, validated against the spec
        (``tie_break``, ``debug_checks``, ``quantum_scale``,
        ``auto_register``, ``default_weight``, ``track_inversions``).
        Unknown keywords raise ``TypeError`` listing what the
        discipline accepts.
    """
    if rank_fn is not None:
        spec = _ensure_rank_spec(name, rank_fn)
    else:
        spec = scheduler_spec(name)
    resolved_backend = (
        default_backend() if backend is None else _validate_backend(backend)
    )
    kwargs: Dict[str, Any] = dict(params)

    # --- SP-PIFO construction: bands requested, or the spec itself is
    # registered on the band engine.
    if bands is not None or spec.cls is SpPifoScheduler:
        resolved_bands = spec.bands if bands is None else bands
        unknown = sorted(set(kwargs) - _SP_PIFO_PARAMS)
        if unknown:
            raise TypeError(
                f"{spec.name} on the SP-PIFO engine does not accept "
                f"{', '.join(map(repr, unknown))}; accepted parameters: "
                + ", ".join(sorted(_SP_PIFO_PARAMS))
            )
        kwargs.setdefault("auto_register", True)
        rank = _build_rank(spec, capacity)
        with registry_construction():
            return SpPifoScheduler(
                rank,
                bands=None if resolved_bands in (None, 0) else resolved_bands,
                **kwargs,
            )

    _validate_params(spec, kwargs)
    # Normalized default (see module docstring): explicit for every
    # discipline, so DelayEDD/JitterEDD behave like the rest.
    kwargs.setdefault("auto_register", True)

    # --- Ad-hoc rank-engine specs: the engine takes the rank object.
    if spec.rank_engine:
        rank = _build_rank(spec, capacity)
        with registry_construction():
            return spec.backend_cls(resolved_backend)(rank, **kwargs)

    # --- Named discipline classes (legacy construction surface).
    if spec.needs_capacity:
        if capacity is None:
            raise TypeError(
                f"{spec.name} is rate-proportional and needs the link "
                f"rate: make_scheduler({spec.name!r}, capacity=...)"
            )
        kwargs["assumed_capacity"] = capacity
    with registry_construction():
        return spec.backend_cls(resolved_backend)(**kwargs)


# ----------------------------------------------------------------------
# The Table-1 disciplines (plus the Appendix-B Fair Airport server and
# the PIFO-era additions: LSTF and the SP-PIFO approximation of SFQ).
# ----------------------------------------------------------------------
register_scheduler(
    SchedulerSpec(
        "SFQ",
        SFQ,
        "Start-time Fair Queueing (the paper's algorithm)",
        params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
        array_cls=ArraySFQ,
        rank_fn=SfqRank,
    )
)
register_scheduler(
    SchedulerSpec(
        "SCFQ",
        SCFQ,
        "Self-Clocked Fair Queueing (Golestani 1994)",
        params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
        array_cls=ArraySCFQ,
        rank_fn=ScfqRank,
    )
)
register_scheduler(
    SchedulerSpec(
        "WFQ",
        WFQ,
        "Weighted Fair Queueing / PGPS (finish-tag order over fluid GPS)",
        needs_capacity=True,
        params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
        array_cls=ArrayWFQ,
        rank_fn=WfqRank,
    )
)
register_scheduler(
    SchedulerSpec(
        "FQS",
        FQS,
        "Fair Queueing by Start-time (Greenberg & Madras 1992)",
        needs_capacity=True,
        params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
        array_cls=ArrayFQS,
        rank_fn=FqsRank,
    )
)
register_scheduler(
    SchedulerSpec(
        "WF2Q",
        WF2Q,
        "Worst-case Fair WFQ (eligibility-gated finish-tag order)",
        needs_capacity=True,
        params=(_DEBUG_CHECKS,) + _COMMON,
        array_cls=ArrayWF2Q,
        rank_fn=Wf2qRank,
    )
)
register_scheduler(
    SchedulerSpec(
        "VirtualClock",
        VirtualClock,
        "Virtual Clock (Zhang 1990)",
        params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
        array_cls=ArrayVirtualClock,
        rank_fn=VcRank,
    )
)
register_scheduler(
    SchedulerSpec(
        "DRR",
        DRR,
        "Deficit Round Robin (Shreedhar & Varghese 1995)",
        params=(
            ParamSpec(
                "quantum_scale",
                "float",
                "quantum per round as a multiple of the flow's weight share",
            ),
        )
        + _COMMON,
    )
)
register_scheduler(
    SchedulerSpec(
        "WRR",
        WRR,
        "Weighted Round Robin (packet-count credits)",
        params=_COMMON,
    )
)
register_scheduler(
    SchedulerSpec(
        "FIFO",
        FIFO,
        "Single shared first-in-first-out queue (no isolation)",
        params=_COMMON,
    )
)
register_scheduler(
    SchedulerSpec(
        "DelayEDD",
        DelayEDD,
        "Delay Earliest-Due-Date (flows need add_flow_with_deadline)",
        params=(_DEBUG_CHECKS,) + _COMMON,
        array_cls=ArrayDelayEDD,
        rank_fn=DelayEddRank,
    )
)
register_scheduler(
    SchedulerSpec(
        "JitterEDD",
        JitterEDD,
        "Jitter Earliest-Due-Date (non-work-conserving regulator + EDD)",
        params=_COMMON,
    )
)
register_scheduler(
    SchedulerSpec(
        "FairAirport",
        FairAirport,
        "Fair Airport (paper Appendix B: Virtual Clock GSQ + SFQ ASQ)",
        params=_COMMON,
    )
)
register_scheduler(
    SchedulerSpec(
        "LSTF",
        LSTF,
        "Least Slack Time First (Mittal et al.; replay-harness seed)",
        params=(
            ParamSpec(
                "default_slack",
                "float",
                "slack budget (seconds) for flows without set_slack",
            ),
            _TIE_BREAK,
            _DEBUG_CHECKS,
        )
        + _COMMON,
        array_cls=ArrayLSTF,
        rank_fn=LstfRank,
    )
)
register_scheduler(
    SchedulerSpec(
        "SP-SFQ",
        SpPifoScheduler,
        "SP-PIFO band approximation of SFQ (Alcoz et al.; bands=k)",
        params=(_TRACK_INVERSIONS,) + _COMMON,
        rank_fn=SfqRank,
        bands=8,
        rank_engine=True,
    )
)
