"""Declarative scheduler registry — the public construction API.

Every scheduling discipline in the repo is registered here with a
:class:`SchedulerSpec` describing its constructor surface: which extra
parameters it accepts, whether it needs the link capacity
(rate-proportional disciplines — WFQ, FQS, WF2Q — simulate a fluid GPS
reference and must be told the rate they emulate), and what it is. The
one public entry point experiments and users construct through is::

    from repro import make_scheduler

    make_scheduler("SFQ")
    make_scheduler("WFQ", capacity=1e6, auto_register=False)
    make_scheduler("DRR", quantum_scale=2.0)

Uniform-ladder contract
-----------------------
``capacity`` may always be passed: disciplines that need it receive it
as ``assumed_capacity``; self-clocked disciplines (SFQ, SCFQ, DRR, ...)
ignore it. That one rule lets a comparison ladder construct every
Table-1 algorithm with a single call shape instead of per-algorithm
lambdas.

Normalized defaults
-------------------
Raw constructors disagree on ``auto_register``: most schedulers default
``True`` (first packet of an unknown flow registers it at
``default_weight``) but ``DelayEDD``/``JitterEDD`` default ``False``
(their flows need an explicit deadline/rate anyway, so silent
registration only defers the error). The registry removes the
inconsistency: :func:`make_scheduler` passes ``auto_register=True`` for
*every* discipline unless the caller says otherwise. EDD disciplines
still require :meth:`add_flow_with_deadline` before a flow's first
enqueue — the normalization changes when the mistake is reported, not
the requirement.

Backends
--------
The tag disciplines ship two interchangeable implementations:

* ``"object"`` — the reference path: one ``FlowState`` object per flow
  (:mod:`repro.core.headheap`). Always available, easiest to read and
  debug, and the implementation the trace-equivalence suite treats as
  ground truth.
* ``"array"`` — the struct-of-arrays slab + int-keyed flow-head heap
  (:mod:`repro.core.slab` / :mod:`repro.core.arrayheap`), byte-identical
  in service order but sized for 10^5–10^6 flows.

Select per call (``make_scheduler("SFQ", backend="array")``), per
process (:func:`set_default_backend`), or per environment
(``REPRO_SCHED_BACKEND=array``). Disciplines without an array variant
(DRR, FIFO, the EDD family, ...) fall back to their object
implementation under ``backend="array"`` so a ladder can set one
backend for every discipline it constructs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.core.arrayheap import (
    ArrayFQS,
    ArraySCFQ,
    ArraySFQ,
    ArrayVirtualClock,
    ArrayWF2Q,
    ArrayWFQ,
)
from repro.core.base import Scheduler
from repro.core.drr import DRR, WRR
from repro.core.delay_edd import DelayEDD
from repro.core.fair_airport import FairAirport
from repro.core.fifo import FIFO
from repro.core.jitter_edd import JitterEDD
from repro.core.scfq import SCFQ
from repro.core.sfq import SFQ
from repro.core.virtual_clock import VirtualClock
from repro.core.wf2q import WF2Q
from repro.core.wfq import FQS, WFQ

__all__ = [
    "ParamSpec",
    "SchedulerSpec",
    "available_schedulers",
    "default_backend",
    "make_scheduler",
    "register_scheduler",
    "scheduler_spec",
    "set_default_backend",
]

#: Backends accepted by :func:`make_scheduler` / :func:`set_default_backend`.
_BACKENDS = ("object", "array")


@dataclass(frozen=True, slots=True)
class ParamSpec:
    """One optional constructor parameter of a discipline."""

    name: str
    kind: str  # "bool" | "float" | "callable" — documentation, not enforcement
    doc: str


@dataclass(frozen=True, slots=True)
class SchedulerSpec:
    """Construction contract of one registered discipline."""

    name: str
    cls: Type[Scheduler]
    description: str
    #: True for rate-proportional disciplines that must be told the link
    #: rate they emulate (constructor takes ``assumed_capacity``).
    needs_capacity: bool = False
    params: Tuple[ParamSpec, ...] = ()
    #: Slab-backed implementation (``backend="array"``), or None when
    #: the discipline only has the object path (the factory then falls
    #: back to ``cls`` so backend selection is uniform across a ladder).
    array_cls: Optional[Type[Scheduler]] = None

    def param_names(self) -> Tuple[str, ...]:
        """Accepted keyword names, in declaration order."""
        return tuple(p.name for p in self.params)

    def backend_cls(self, backend: str) -> Type[Scheduler]:
        """Implementation class for ``backend`` (with object fallback)."""
        if backend == "array" and self.array_cls is not None:
            return self.array_cls
        return self.cls


#: Process-wide default backend; resolved lazily so the environment
#: variable is honored even when repro is imported before it is set
#: by a test harness.
_DEFAULT_BACKEND: Optional[str] = None


def _validate_backend(backend: str) -> str:
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown scheduler backend {backend!r}; available: "
            + ", ".join(_BACKENDS)
        )
    return backend


def default_backend() -> str:
    """The backend used when :func:`make_scheduler` gets no ``backend``.

    Resolution order: :func:`set_default_backend` if called, else the
    ``REPRO_SCHED_BACKEND`` environment variable, else ``"object"``.
    """
    if _DEFAULT_BACKEND is not None:
        return _DEFAULT_BACKEND
    env = os.environ.get("REPRO_SCHED_BACKEND")  # lint: disable=CACHE001  backend selection is result-invariant: the trace-equivalence suite gates byte-identical schedules across backends
    if env:
        return _validate_backend(env.strip().lower())
    return "object"


def set_default_backend(backend: Optional[str]) -> None:
    """Set the process-wide default backend (``None`` resets to the
    environment/``"object"`` resolution)."""
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = None if backend is None else _validate_backend(backend)


_AUTO_REGISTER = ParamSpec(
    "auto_register",
    "bool",
    "register unknown flows at default_weight on first enqueue "
    "(registry default: True for every discipline)",
)
_DEFAULT_WEIGHT = ParamSpec(
    "default_weight", "float", "weight given to auto-registered flows"
)
_TIE_BREAK = ParamSpec(
    "tie_break", "callable", "tag tie-break rule (see repro.core.base.TieBreak)"
)
_DEBUG_CHECKS = ParamSpec(
    "debug_checks", "bool", "enable O(n) per-event invariant assertions"
)

_COMMON = (_AUTO_REGISTER, _DEFAULT_WEIGHT)

#: canonical name -> spec, in Table-1 presentation order.
_REGISTRY: Dict[str, SchedulerSpec] = {}
#: lower-cased alias -> canonical name.
_ALIASES: Dict[str, str] = {}


def register_scheduler(spec: SchedulerSpec) -> SchedulerSpec:
    """Add (or replace) a discipline in the registry.

    The name is matched case-insensitively by :func:`make_scheduler`.
    Returns the spec so callers can ``register_scheduler(SchedulerSpec(
    ...))`` and keep the handle.
    """
    _REGISTRY[spec.name] = spec  # lint: disable=CACHE001  idempotent name-keyed registration (import-time setup), not result state
    _ALIASES[spec.name.lower()] = spec.name  # lint: disable=CACHE001  idempotent name-keyed registration (import-time setup), not result state
    return spec


def available_schedulers() -> List[str]:
    """Canonical names of every registered discipline, in registration
    (Table 1) order."""
    return list(_REGISTRY)


def scheduler_spec(name: str) -> SchedulerSpec:
    """The :class:`SchedulerSpec` for ``name`` (case-insensitive).

    Raises ``ValueError`` naming the available disciplines when the
    lookup fails — the error a CLI typo should produce.
    """
    canonical = _ALIASES.get(name.lower())
    if canonical is None:
        raise ValueError(
            f"unknown scheduler {name!r}; available: "
            + ", ".join(available_schedulers())
        )
    return _REGISTRY[canonical]


def make_scheduler(
    name: str,
    *,
    capacity: float | None = None,
    backend: str | None = None,
    **params: Any,
) -> Scheduler:
    """Construct the discipline ``name`` — the public factory.

    Parameters
    ----------
    name:
        Any registered discipline, case-insensitive (``"SFQ"``,
        ``"wfq"``, ...); see :func:`available_schedulers`.
    capacity:
        Link rate in bits/s. Required by rate-proportional disciplines
        (WFQ, FQS, WF2Q), accepted and ignored by the rest, so a ladder
        can pass it unconditionally.
    backend:
        ``"object"`` (per-flow FlowState objects, the reference path) or
        ``"array"`` (struct-of-arrays slab, byte-identical schedules at
        million-flow scale). ``None`` uses :func:`default_backend`.
        Disciplines without an array variant fall back to their object
        implementation.
    params:
        Discipline-specific keywords, validated against the spec
        (``tie_break``, ``debug_checks``, ``quantum_scale``,
        ``auto_register``, ``default_weight``). Unknown keywords raise
        ``TypeError`` listing what the discipline accepts.
    """
    spec = scheduler_spec(name)
    resolved_backend = (
        default_backend() if backend is None else _validate_backend(backend)
    )
    kwargs: Dict[str, Any] = dict(params)
    allowed = set(spec.param_names())
    unknown = sorted(set(kwargs) - allowed)
    if unknown:
        raise TypeError(
            f"{spec.name} does not accept {', '.join(map(repr, unknown))}; "
            f"accepted parameters: {', '.join(spec.param_names()) or 'none'}"
        )
    if spec.needs_capacity:
        if capacity is None:
            raise TypeError(
                f"{spec.name} is rate-proportional and needs the link "
                f"rate: make_scheduler({spec.name!r}, capacity=...)"
            )
        kwargs["assumed_capacity"] = capacity
    # Normalized default (see module docstring): explicit for every
    # discipline, so DelayEDD/JitterEDD behave like the rest.
    kwargs.setdefault("auto_register", True)
    return spec.backend_cls(resolved_backend)(**kwargs)


# ----------------------------------------------------------------------
# The Table-1 disciplines (plus the Appendix-B Fair Airport server).
# ----------------------------------------------------------------------
register_scheduler(
    SchedulerSpec(
        "SFQ",
        SFQ,
        "Start-time Fair Queueing (the paper's algorithm)",
        params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
        array_cls=ArraySFQ,
    )
)
register_scheduler(
    SchedulerSpec(
        "SCFQ",
        SCFQ,
        "Self-Clocked Fair Queueing (Golestani 1994)",
        params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
        array_cls=ArraySCFQ,
    )
)
register_scheduler(
    SchedulerSpec(
        "WFQ",
        WFQ,
        "Weighted Fair Queueing / PGPS (finish-tag order over fluid GPS)",
        needs_capacity=True,
        params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
        array_cls=ArrayWFQ,
    )
)
register_scheduler(
    SchedulerSpec(
        "FQS",
        FQS,
        "Fair Queueing by Start-time (Greenberg & Madras 1992)",
        needs_capacity=True,
        params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
        array_cls=ArrayFQS,
    )
)
register_scheduler(
    SchedulerSpec(
        "WF2Q",
        WF2Q,
        "Worst-case Fair WFQ (eligibility-gated finish-tag order)",
        needs_capacity=True,
        params=(_DEBUG_CHECKS,) + _COMMON,
        array_cls=ArrayWF2Q,
    )
)
register_scheduler(
    SchedulerSpec(
        "VirtualClock",
        VirtualClock,
        "Virtual Clock (Zhang 1990)",
        params=(_TIE_BREAK, _DEBUG_CHECKS) + _COMMON,
        array_cls=ArrayVirtualClock,
    )
)
register_scheduler(
    SchedulerSpec(
        "DRR",
        DRR,
        "Deficit Round Robin (Shreedhar & Varghese 1995)",
        params=(
            ParamSpec(
                "quantum_scale",
                "float",
                "quantum per round as a multiple of the flow's weight share",
            ),
        )
        + _COMMON,
    )
)
register_scheduler(
    SchedulerSpec(
        "WRR",
        WRR,
        "Weighted Round Robin (packet-count credits)",
        params=_COMMON,
    )
)
register_scheduler(
    SchedulerSpec(
        "FIFO",
        FIFO,
        "Single shared first-in-first-out queue (no isolation)",
        params=_COMMON,
    )
)
register_scheduler(
    SchedulerSpec(
        "DelayEDD",
        DelayEDD,
        "Delay Earliest-Due-Date (flows need add_flow_with_deadline)",
        params=(_DEBUG_CHECKS,) + _COMMON,
    )
)
register_scheduler(
    SchedulerSpec(
        "JitterEDD",
        JitterEDD,
        "Jitter Earliest-Due-Date (non-work-conserving regulator + EDD)",
        params=_COMMON,
    )
)
register_scheduler(
    SchedulerSpec(
        "FairAirport",
        FairAirport,
        "Fair Airport (paper Appendix B: Virtual Clock GSQ + SFQ ASQ)",
        params=_COMMON,
    )
)
