"""Weighted Fair Queuing (WFQ / PGPS) — Demers et al. 1989, Parekh 1992.

WFQ emulates fluid GPS: every packet gets a start tag
:math:`S(p) = \\max\\{v(A(p)), F(p_{prev})\\}` and finish tag
:math:`F(p) = S(p) + l/r` (paper eq. 1–2) where ``v(t)`` is the fluid
GPS round number (eq. 3), and packets are transmitted in increasing
order of **finish** tags.

The paper's critique, reproduced by our benchmarks:

* its fairness measure is at least :math:`l_f^{max}/r_f + l_m^{max}/r_m`
  — a factor of two off the lower bound (Example 1);
* it requires the real-time fluid simulation (expensive); and
* it is built on an assumed constant capacity, so it is unfair on
  variable-rate servers (Example 2, Figure 1(b)).

Both WFQ and FQS run on the flow-head heap of
:class:`repro.core.headheap.HeadHeapScheduler`; the fluid GPS tracker
remains their dominant per-packet cost.
"""

from __future__ import annotations

from repro.core.base import TieBreak
from repro.core.flow import FlowState
from repro.core.gps import GPSVirtualClock
from repro.core.headheap import HeadHeapScheduler, TieBreakRule
from repro.core.packet import Packet
from repro.core.tagmath import start_finish


class WFQ(HeadHeapScheduler):
    """Weighted Fair Queuing (packet-by-packet GPS).

    Parameters
    ----------
    assumed_capacity:
        The link capacity (bits/s) used to simulate the fluid GPS system.
        WFQ has no way to learn the *actual* capacity; feeding it a value
        that differs from reality reproduces Example 2's unfairness.
    """

    __slots__ = ("gps",)

    algorithm = "WFQ"

    def __init__(
        self,
        assumed_capacity: float,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
        self.gps = GPSVirtualClock(assumed_capacity)

    def _stamp(self, state: FlowState, packet: Packet, now: float) -> float:
        """Shared WFQ/FQS arrival work: advance GPS, stamp both tags."""
        v = self.gps.advance(now)
        # The exact-float tag recursion is shared with the slab backend
        # via repro.core.tagmath (see its module docstring).
        start, finish = start_finish(
            v, state.last_finish, packet.length, state._weight, packet.rate
        )
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        self.gps.on_arrival(packet.flow, state.weight, finish)
        return start

    def _tag_packet(self, state: FlowState, packet: Packet, now: float) -> float:
        self._stamp(state, packet, now)
        return packet.finish_tag  # type: ignore[return-value]  # stamped by _stamp

    def _head_key(self, packet: Packet) -> float:
        return packet.finish_tag  # type: ignore[return-value]  # stamped on enqueue

    @property
    def virtual_time(self) -> float:
        """Fluid GPS virtual time at the last advance."""
        return self.gps.v


class FQS(WFQ):
    """Fair Queuing based on Start-time (Greenberg & Madras 1992).

    Identical tag computation to WFQ (fluid GPS ``v(t)``), but packets
    are scheduled in increasing order of **start** tags. The paper notes
    FQS shares all of WFQ's disadvantages (GPS cost, unfairness on
    variable-rate servers) with no delay advantage over SFQ.
    """

    __slots__ = ()

    algorithm = "FQS"

    def _tag_packet(self, state: FlowState, packet: Packet, now: float) -> float:
        return self._stamp(state, packet, now)

    def _head_key(self, packet: Packet) -> float:
        return packet.start_tag  # type: ignore[return-value]  # stamped on enqueue
