"""Weighted Fair Queuing (WFQ / PGPS) — Demers et al. 1989, Parekh 1992.

WFQ emulates fluid GPS: every packet gets a start tag
:math:`S(p) = \\max\\{v(A(p)), F(p_{prev})\\}` and finish tag
:math:`F(p) = S(p) + l/r` (paper eq. 1–2) where ``v(t)`` is the fluid
GPS round number (eq. 3), and packets are transmitted in increasing
order of **finish** tags.

The paper's critique, reproduced by our benchmarks:

* its fairness measure is at least :math:`l_f^{max}/r_f + l_m^{max}/r_m`
  — a factor of two off the lower bound (Example 1);
* it requires the real-time fluid simulation (expensive); and
* it is built on an assumed constant capacity, so it is unfair on
  variable-rate servers (Example 2, Figure 1(b)).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.core.base import Scheduler, TieBreak
from repro.core.flow import FlowState
from repro.core.gps import GPSVirtualClock
from repro.core.packet import Packet


class WFQ(Scheduler):
    """Weighted Fair Queuing (packet-by-packet GPS).

    Parameters
    ----------
    assumed_capacity:
        The link capacity (bits/s) used to simulate the fluid GPS system.
        WFQ has no way to learn the *actual* capacity; feeding it a value
        that differs from reality reproduces Example 2's unfairness.
    """

    algorithm = "WFQ"

    def __init__(
        self,
        assumed_capacity: float,
        tie_break: Callable[[FlowState, Packet], Tuple] = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self.gps = GPSVirtualClock(assumed_capacity)
        self._tie_break = tie_break
        self._heap: List[Tuple] = []

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        v = self.gps.advance(now)
        rate = state.packet_rate(packet)
        start = max(v, state.last_finish)
        finish = start + packet.length / rate
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        self.gps.on_arrival(packet.flow, state.weight, finish)
        key = self._tie_break(state, packet)
        heapq.heappush(self._heap, (finish, key, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        _finish, _key, _uid, packet = heapq.heappop(self._heap)
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet, "per-flow FIFO must match global tag order"
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        return self._heap[0][3] if self._heap else None

    @property
    def virtual_time(self) -> float:
        """Fluid GPS virtual time at the last advance."""
        return self.gps.v


class FQS(WFQ):
    """Fair Queuing based on Start-time (Greenberg & Madras 1992).

    Identical tag computation to WFQ (fluid GPS ``v(t)``), but packets
    are scheduled in increasing order of **start** tags. The paper notes
    FQS shares all of WFQ's disadvantages (GPS cost, unfairness on
    variable-rate servers) with no delay advantage over SFQ.
    """

    algorithm = "FQS"

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        v = self.gps.advance(now)
        rate = state.packet_rate(packet)
        start = max(v, state.last_finish)
        finish = start + packet.length / rate
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        self.gps.on_arrival(packet.flow, state.weight, finish)
        key = self._tie_break(state, packet)
        heapq.heappush(self._heap, (start, key, packet.uid, packet))
