"""Weighted Fair Queuing (WFQ / PGPS) — Demers et al. 1989, Parekh 1992.

WFQ emulates fluid GPS: every packet gets a start tag
:math:`S(p) = \\max\\{v(A(p)), F(p_{prev})\\}` and finish tag
:math:`F(p) = S(p) + l/r` (paper eq. 1–2) where ``v(t)`` is the fluid
GPS round number (eq. 3), and packets are transmitted in increasing
order of **finish** tags.

The paper's critique, reproduced by our benchmarks:

* its fairness measure is at least :math:`l_f^{max}/r_f + l_m^{max}/r_m`
  — a factor of two off the lower bound (Example 1);
* it requires the real-time fluid simulation (expensive); and
* it is built on an assumed constant capacity, so it is unfair on
  variable-rate servers (Example 2, Figure 1(b)).

The disciplines themselves live in :class:`repro.core.pifo.WfqRank` and
:class:`repro.core.pifo.FqsRank`; these classes are deprecation shims.
Construct through ``repro.make_scheduler("WFQ", capacity=...)``.
"""

from __future__ import annotations

from repro.core.base import TieBreak
from repro.core.headheap import TieBreakRule
from repro.core.pifo import (
    FqsRank,
    PifoScheduler,
    WfqRank,
    warn_direct_construction,
)

__all__ = ["WFQ", "FQS"]


class WFQ(PifoScheduler):
    """Weighted Fair Queuing (deprecation shim over the PIFO engine).

    Parameters
    ----------
    assumed_capacity:
        The link capacity (bits/s) used to simulate the fluid GPS system.
        WFQ has no way to learn the *actual* capacity; feeding it a value
        that differs from reality reproduces Example 2's unfairness.
    """

    __slots__ = ()

    algorithm = "WFQ"

    def __init__(
        self,
        assumed_capacity: float,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(WFQ, type(self))
        super().__init__(
            WfqRank(assumed_capacity),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )


class FQS(PifoScheduler):
    """Fair Queuing based on Start-time (Greenberg & Madras 1992).

    Identical tag computation to WFQ (fluid GPS ``v(t)``), but packets
    are scheduled in increasing order of **start** tags. The paper notes
    FQS shares all of WFQ's disadvantages (GPS cost, unfairness on
    variable-rate servers) with no delay advantage over SFQ.
    """

    __slots__ = ()

    algorithm = "FQS"

    def __init__(
        self,
        assumed_capacity: float,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(FQS, type(self))
        super().__init__(
            FqsRank(assumed_capacity),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
