"""Fair Airport (FA) scheduling — paper Appendix B.

FA combines the delay guarantee of WFQ with fairness over variable-rate
servers. Every arriving packet joins **both** a per-flow rate regulator
and an Auxiliary Service Queue (ASQ, scheduled by SFQ). When a packet
passes its regulator (at its expected arrival time computed over the
subsequence of packets previously served through the guaranteed path) it
joins the Guaranteed Service Queue (GSQ, scheduled by Virtual Clock).
The server is work conserving and serves GSQ with priority:

1. on arrival a packet joins its flow's rate regulator and the ASQ;
2. the regulator releases :math:`p_f^j` at
   :math:`EAT^{RC}(p_f^j, r_f)` (eq. 120), the EAT over the GSQ-served
   subsequence only;
3. the ASQ is SFQ; the GSQ is Virtual Clock stamping
   :math:`EAT^{GSQ}(p) + l/r`;
4. a packet is removed from the regulator when it starts ASQ service;
5. a packet that became eligible is served only via GSQ; on its removal
   the next ASQ packet of the flow inherits its start tag;
6. GSQ has (non-preemptive) priority over ASQ.

Implementation note: eligibility is evaluated lazily at each
``dequeue``. Between two dequeue instants the server makes no decisions,
so committing regulator releases at dequeue time is behaviourally
identical to running per-packet timers, and keeps the scheduler free of
any simulator dependency.

Properties verified by the suite: fairness
:math:`|W_f/r_f - W_m/r_m| \\le 3(l_f^{max}/r_f + l_m^{max}/r_m) + 2\\beta`
(Theorem 8) and the WFQ delay guarantee
:math:`L(p) \\le EAT(p) + l/r + l_{max}/C` (Theorem 9).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.base import Scheduler
from repro.core.flow import FlowState
from repro.core.packet import Packet
from repro.core.tagmath import start_finish


class _FAFlow:
    """Per-flow Fair Airport scratch state."""

    __slots__ = ("regulator", "rc_clock")

    def __init__(self) -> None:
        # Packets not yet GSQ-eligible and not yet served, arrival order.
        self.regulator: Deque[Packet] = deque()
        # EAT chain over the GSQ-served subsequence (eq. 120/124):
        # the next candidate p is eligible at max(A(p), rc_clock).
        self.rc_clock = float("-inf")


class FairAirport(Scheduler):
    """Fair Airport scheduler: Virtual Clock GSQ + SFQ ASQ + regulators."""

    __slots__ = (
        "_fa",
        "_asq_heap",
        "_gsq_heap",
        "_release_heap",
        "_gone",
        "v",
        "_max_served_finish",
        "served_via_gsq",
        "served_via_asq",
    )

    algorithm = "FairAirport"

    def __init__(self, auto_register: bool = True, default_weight: float = 1.0) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._fa: Dict[Hashable, _FAFlow] = {}
        # ASQ: SFQ start-tag heap with lazy deletion; entries are
        # (start_tag_at_push, uid, packet).
        self._asq_heap: List[Tuple[float, int, Packet]] = []
        self._gsq_heap: List[Tuple[float, int, Packet]] = []
        # Lazy heap of (release_time, flow) for regulator heads, so a
        # dequeue does O(log Q) work instead of scanning every flow.
        self._release_heap: List[Tuple[float, Hashable]] = []
        # Packets pulled out of the ASQ because GSQ served them.
        self._gone: Set[int] = set()
        self.v = 0.0  # ASQ (SFQ) virtual time
        self._max_served_finish = 0.0
        self.served_via_gsq = 0
        self.served_via_asq = 0

    def _fa_state(self, flow_id: Hashable) -> _FAFlow:
        fa = self._fa.get(flow_id)
        if fa is None:
            fa = _FAFlow()
            self._fa[flow_id] = fa
        return fa

    # ------------------------------------------------------------------
    # Enqueue: join regulator + ASQ
    # ------------------------------------------------------------------
    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        rate = state.packet_rate(packet)
        # Exact-float tag recursion shared with every other discipline
        # via repro.core.tagmath (divides by the reserved rate).
        start, finish = start_finish(self.v, state.last_finish, packet.length, rate, None)
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        heapq.heappush(self._asq_heap, (start, packet.uid, packet))
        fa = self._fa_state(packet.flow)
        fa.regulator.append(packet)
        if len(fa.regulator) == 1:
            self._push_release(packet.flow, fa)

    def _push_release(self, flow_id: Hashable, fa: _FAFlow) -> None:
        """Advertise the flow's current regulator head on the heap."""
        if fa.regulator:
            release = max(fa.regulator[0].arrival, fa.rc_clock)
            heapq.heappush(self._release_heap, (release, flow_id))

    # ------------------------------------------------------------------
    # Dequeue: materialize eligibility, then GSQ-first
    # ------------------------------------------------------------------
    def _do_dequeue(self, now: float) -> Optional[Packet]:
        self._release_eligible(now)
        if self._gsq_heap:
            return self._serve_gsq()
        return self._serve_asq()

    def _release_eligible(self, now: float) -> None:
        """Move regulator heads with release time <= now into the GSQ.

        The release heap is lazy: entries may be stale (the flow's head
        changed since the push), so each pop is re-validated against the
        flow's live state before acting.
        """
        heap = self._release_heap
        while heap and heap[0][0] <= now:
            _advertised, flow_id = heapq.heappop(heap)
            fa = self._fa.get(flow_id)
            if fa is None or not fa.regulator:
                continue
            state = self.flows[flow_id]
            packet = fa.regulator[0]
            release = max(packet.arrival, fa.rc_clock)
            if release > now:
                # Stale entry (head changed); re-advertise the truth.
                heapq.heappush(heap, (release, flow_id))
                continue
            fa.regulator.popleft()
            rate = state.packet_rate(packet)
            # Commit the GSQ EAT chain (rule 5 says the packet will
            # now be served via GSQ only).
            stamp = release + packet.length / rate
            fa.rc_clock = stamp
            packet.eligible_at = release
            packet.timestamp = stamp  # EAT + l/r (rule 3)
            heapq.heappush(self._gsq_heap, (stamp, packet.uid, packet))
            self._push_release(flow_id, fa)

    def _serve_gsq(self) -> Packet:
        _stamp, _uid, packet = heapq.heappop(self._gsq_heap)
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet, "combined FA service must be flow-FIFO"
        self._gone.add(packet.uid)
        self._inherit_start_tag(state, packet)
        if packet.finish_tag is not None and packet.finish_tag > self._max_served_finish:
            self._max_served_finish = packet.finish_tag
        self.served_via_gsq += 1
        return packet

    def _inherit_start_tag(self, state: FlowState, removed: Packet) -> None:
        """Rule 5: the flow's next ASQ packet takes the removed packet's
        start tag (keeping SFQ's Lemma 1/2 machinery valid)."""
        nxt = state.head()
        start = removed.start_tag
        # Exact-copy comparison: an already-inherited tag IS the same
        # float object/value, never the result of different arithmetic.
        if nxt is None or start is None or nxt.start_tag == start:  # lint: disable=TAG001  exact copy, not recomputed arithmetic
            return
        rate = state.packet_rate(nxt)
        nxt.start_tag = start
        nxt.finish_tag = start + nxt.length / rate
        heapq.heappush(self._asq_heap, (start, nxt.uid, nxt))

    def _serve_asq(self) -> Optional[Packet]:
        heap = self._asq_heap
        while heap:
            start, uid, packet = heapq.heappop(heap)
            if uid in self._gone:
                self._gone.discard(uid)
                continue
            if packet.start_tag != start:  # lint: disable=TAG001  exact copy of the tag pushed with this entry
                continue  # stale entry superseded by rule-5 inheritance
            state = self.flows[packet.flow]
            popped = state.pop()
            assert popped is packet, "ASQ must serve each flow in FIFO order"
            fa = self._fa[packet.flow]
            # Rule 4: remove from the regulator; rc_clock is *not*
            # advanced (EAT^RC covers only the GSQ-served subsequence).
            assert fa.regulator and fa.regulator[0] is packet, (
                "an ASQ-served packet must still be regulator head"
            )
            fa.regulator.popleft()
            self.v = start  # SFQ rule: v = start tag of packet in service
            if (
                packet.finish_tag is not None
                and packet.finish_tag > self._max_served_finish
            ):
                self._max_served_finish = packet.finish_tag
            self.served_via_asq += 1
            return packet
        return None

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        if self._backlog_packets == 0:
            self.v = max(self.v, self._max_served_finish)

    @property
    def virtual_time(self) -> float:
        return self.v
