"""Deficit Round Robin — Shreedhar & Varghese 1995; paper Section 1.2.

DRR visits backlogged flows round-robin; each visit adds the flow's
*quantum* (proportional to its weight) to a deficit counter and serves
head packets while the counter covers them. Per-packet work is O(1),
but the paper shows (Table 1) that:

* its fairness measure,
  :math:`1 + l_f^{max}/r_f + l_m^{max}/r_m` with weights normalized so
  :math:`\\min_n r_n = 1`, deviates *unboundedly* from SFQ/SCFQ as weights
  grow (their example: 50x worse for r=100, l=1); and
* its maximum delay grows with :math:`\\sum_{n \\ne f} l^{max} r_n / r_f`
  — arbitrary under arbitrary weights.

``quantum_scale`` maps a weight to a quantum in bits:
``quantum(f) = weight_f * quantum_scale``. The classic fairness results
require every quantum to be at least the flow's maximum packet length;
callers pick ``quantum_scale`` accordingly (the Table 1 benchmark sweeps
it to reproduce the unbounded-unfairness claim).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Hashable, Optional

from repro.core.base import Scheduler, SchedulerError
from repro.core.flow import FlowState
from repro.core.packet import Packet


class _DRRState:
    """Per-flow DRR scratch: deficit counter and active-list membership."""

    __slots__ = ("deficit", "active")

    def __init__(self) -> None:
        self.deficit = 0.0
        self.active = False


class DRR(Scheduler):
    """Deficit Round Robin."""

    __slots__ = ("quantum_scale", "_active", "_current")

    algorithm = "DRR"

    def __init__(
        self,
        quantum_scale: float = 1.0,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        if quantum_scale <= 0:
            raise SchedulerError(f"quantum_scale must be positive, got {quantum_scale}")
        self.quantum_scale = float(quantum_scale)
        self._active: Deque[Hashable] = deque()
        # The flow currently being drained within its round visit, if any.
        self._current: Optional[Hashable] = None

    def quantum(self, state: FlowState) -> float:
        return state.weight * self.quantum_scale

    def _drr(self, state: FlowState) -> _DRRState:
        drr = state.user
        if not isinstance(drr, _DRRState):
            drr = _DRRState()
            state.user = drr
        return drr

    # ------------------------------------------------------------------
    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        state.push(packet)
        drr = self._drr(state)
        if not drr.active:
            drr.active = True
            self._active.append(state.flow_id)

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        while True:
            flow_id = self._current
            if flow_id is None:
                if not self._active:
                    return None
                flow_id = self._active.popleft()
                self._current = flow_id
                state = self.flows[flow_id]
                self._drr(state).deficit += self.quantum(state)
            state = self.flows[flow_id]
            drr = self._drr(state)
            head = state.head()
            if head is None:
                # Backlog drained during this visit: reset and leave.
                drr.deficit = 0.0
                drr.active = False
                self._current = None
                continue
            if head.length <= drr.deficit:
                drr.deficit -= head.length
                packet = state.pop()
                if not state.queue:
                    drr.deficit = 0.0
                    drr.active = False
                    self._current = None
                return packet
            # Deficit exhausted: move the flow to the tail of the round.
            self._active.append(flow_id)
            self._current = None

    def peek(self, now: float) -> Optional[Packet]:
        raise NotImplementedError(
            "DRR dequeue mutates round state; it cannot be peeked and so "
            "cannot serve as an interior node of a hierarchy"
        )


class WRR(Scheduler):
    """Weighted Round Robin with per-round packet counts.

    The degenerate DRR the paper invokes for its delay lower bound
    (Section 1.2, point 2): with equal packet sizes, a flow waits up to
    :math:`\\sum_{n \\ne f} l \\cdot r_n / r_f` time per round. Weights are
    normalized to integers: flow f may send up to ``round(weight_f /
    min_weight)`` packets per round visit.
    """

    __slots__ = ("_active", "_current", "_remaining")

    algorithm = "WRR"

    def __init__(self, auto_register: bool = True, default_weight: float = 1.0) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._active: Deque[Hashable] = deque()
        self._current: Optional[Hashable] = None
        self._remaining = 0

    def _credits(self, state: FlowState) -> int:
        weights = [s.weight for s in self.flows.values()]
        min_weight = min(weights) if weights else 1.0
        return max(1, int(round(state.weight / min_weight)))

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        state.push(packet)
        if state.user is not True:
            state.user = True  # active marker
            self._active.append(state.flow_id)

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        while True:
            if self._current is None:
                if not self._active:
                    return None
                self._current = self._active.popleft()
                self._remaining = self._credits(self.flows[self._current])
            state = self.flows[self._current]
            if not state.queue or self._remaining <= 0:
                if state.queue:
                    self._active.append(self._current)
                else:
                    state.user = False
                self._current = None
                continue
            self._remaining -= 1
            packet = state.pop()
            if not state.queue:
                state.user = False
                self._current = None
            return packet

    def peek(self, now: float) -> Optional[Packet]:
        raise NotImplementedError("WRR cannot be peeked (round state mutates)")
