"""Jitter EDD — the non-work-conserving rate-controlled baseline.

Appendix B compares Fair Airport's implementation complexity with
"non work-conserving dynamic priority algorithms like Jitter EDD"
(Verma, Zhang & Ferrari 1991). Jitter EDD combines a per-flow rate
regulator with earliest-deadline-first service:

* an arriving packet is held by its flow's regulator until its expected
  arrival time :math:`EAT(p)` (eq. 37) — this removes the jitter
  accumulated upstream and restores the flow's declared spacing;
* once eligible, the packet's deadline is :math:`EAT(p) + d_f` and
  eligible packets are served earliest-deadline-first.

Because packets are *held* even when the link is idle, the discipline
is non-work-conserving — the property the paper's work-conserving SFQ
deliberately avoids (held bandwidth is lost). The Link understands this
through :meth:`Scheduler.next_eligible_time`: when ``dequeue`` returns
``None`` with a backlog, the link arms a wake-up for the next
eligibility instant.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.base import Scheduler, SchedulerError
from repro.core.flow import FlowState
from repro.core.packet import Packet


class JitterEDD(Scheduler):
    """Rate-controlled earliest-deadline-first (non-work-conserving)."""

    __slots__ = ("deadlines", "_held", "_ready")

    algorithm = "JitterEDD"

    def __init__(self, auto_register: bool = False, default_weight: float = 1.0) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self.deadlines: Dict[Hashable, float] = {}
        # Packets not yet eligible: (eligible_at, uid, packet).
        self._held: List[Tuple[float, int, Packet]] = []
        # Eligible packets: (deadline, uid, packet).
        self._ready: List[Tuple[float, int, Packet]] = []

    def add_flow_with_deadline(
        self, flow_id: Hashable, rate: float, deadline: float
    ) -> FlowState:
        if deadline <= 0:
            raise SchedulerError(f"deadline must be positive, got {deadline}")
        state = self.add_flow(flow_id, rate)
        self.deadlines[flow_id] = float(deadline)
        return state

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        offset = self.deadlines.get(packet.flow)
        if offset is None:
            raise SchedulerError(
                f"flow {packet.flow!r} has no deadline; use add_flow_with_deadline"
            )
        rate = state.packet_rate(packet)
        eat = state.eat.on_arrival(now, packet.length, rate)
        packet.eligible_at = eat
        packet.deadline = eat + offset
        packet.start_tag = eat
        state.push(packet)
        heapq.heappush(self._held, (eat, packet.uid, packet))

    def _promote(self, now: float) -> None:
        while self._held and self._held[0][0] <= now + 1e-12:
            _eligible, uid, packet = heapq.heappop(self._held)
            deadline: float = packet.deadline  # type: ignore[assignment]  # stamped on enqueue
            heapq.heappush(self._ready, (deadline, uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        self._promote(now)
        if not self._ready:
            return None
        _deadline, _uid, packet = heapq.heappop(self._ready)
        state = self.flows[packet.flow]
        # Eligibility (EAT order) and deadlines (EAT + const) are both
        # monotone per flow, so combined service is flow-FIFO.
        popped = state.pop()
        assert popped is packet, "per-flow FIFO must match deadline order"
        return packet

    def next_eligible_time(self, now: float) -> Optional[float]:
        self._promote(now)
        if self._ready:
            return now
        if self._held:
            return self._held[0][0]
        return None

    def peek(self, now: float) -> Optional[Packet]:
        self._promote(now)
        return self._ready[0][2] if self._ready else None
