"""The PIFO rank-function core: one engine for the whole scheduler zoo.

Sivaraman et al. ("Programmable Packet Scheduling at Line Rate") observe
that most scheduling disciplines are one abstraction: *compute a rank on
arrival, push into a PIFO* (a priority queue that serves in rank order).
SFQ's eq. 4 start-tag order, SCFQ/WFQ finish-tag order, Virtual Clock's
eq. 37 stamp and Delay EDD's deadlines are all instances. This module
makes that abstraction the single implementation:

* :class:`RankFn` — the protocol (shipped as a concrete base class) a
  discipline implements: ``rank(flow, packet, now) -> (key, tie)`` plus
  optional on-dequeue virtual-time advance, busy-period reset, discard
  re-chaining, and an eligibility clock (WF²Q). A rank function is the
  *whole* discipline — typically under ten lines;
* :class:`PifoScheduler` — the object-backend engine: the flow-head heap
  of :class:`~repro.core.headheap.HeadHeapScheduler` driven by a rank
  function (the slab/array twin, ``ArrayPifoScheduler``, lives in
  :mod:`repro.core.arrayheap` next to the heap it reuses);
* the seven tag disciplines — SFQ, SCFQ, WFQ, FQS, WF²Q, Virtual Clock,
  Delay EDD — re-expressed as rank functions (:class:`SfqRank` ...),
  with the historical classes kept as thin deprecation shims. Tag math
  still flows through :mod:`repro.core.tagmath`, so the engine is
  byte-identical to the per-discipline cores it replaces (gated by
  ``tests/test_trace_equivalence.py``);
* :class:`SpPifoScheduler` — the SP-PIFO approximation (Alcoz et al.,
  "Everything Matters in Programmable Packet Scheduling"): k strict-
  priority FIFO bands with push-up/push-down bound adaptation, trading
  rank fidelity (measurable inversions) for O(k) dequeue;
* :class:`LstfRank` / :class:`LSTF` — Least Slack Time First (Mittal et
  al., "Universal Packet Scheduling"), the seed for the ROADMAP's
  replay-harness item.

Exports
-------
A rank function's per-discipline state (virtual time, GPS tracker,
deadline table) lives on the rank object; the engine forwards the names
listed in ``RankFn.exports`` so existing consumers keep working:
``scheduler.virtual_time`` reads the SFQ rank's ``v``, and the fault
monitors' ``hasattr(scheduler, "virtual_time")`` probe stays
discipline-dependent (Virtual Clock and Delay EDD export no virtual
time, exactly as before).
"""

from __future__ import annotations

import heapq
import warnings
from collections import deque
from contextlib import contextmanager
from typing import (
    Any,
    Deque,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
)

from repro.core.base import Scheduler, SchedulerError, TieBreak
from repro.core.flow import FlowState
from repro.core.gps import GPSVirtualClock
from repro.core.headheap import HeadHeapScheduler, HeapEntry, TieBreakRule
from repro.core.packet import Packet
from repro.core.tagmath import start_finish

__all__ = [
    "RankFlow",
    "RankFn",
    "PifoScheduler",
    "SpPifoScheduler",
    "SfqRank",
    "ScfqRank",
    "WfqRank",
    "FqsRank",
    "Wf2qRank",
    "VcRank",
    "DelayEddRank",
    "LstfRank",
    "LSTF",
    "registry_construction",
    "warn_direct_construction",
]


class RankFlow(Protocol):
    """Per-flow state surface a rank function may touch.

    Satisfied by both backends' flow handles —
    :class:`~repro.core.flow.FlowState` (object) and
    :class:`~repro.core.slab.FlowView` (slab/array) — so one rank
    function drives both engines. Reads and writes on this surface hit
    the same floats the legacy per-discipline cores used, which is what
    keeps the PIFO engine byte-identical.
    """

    __slots__ = ()

    last_finish: float

    @property
    def weight(self) -> float: ...

    @property
    def queue(self) -> Deque[Packet]: ...

    def packet_rate(self, packet: Packet) -> float: ...

    def eat_on_arrival(self, arrival: float, length: int, rate: float) -> float: ...


class RankFn:
    """One scheduling discipline, expressed as a rank function.

    Subclasses override :meth:`rank` (arrival: stamp tags, return the
    scheduling key and an optional tie tuple) and :meth:`head_key`
    (read the key back off an already-tagged packet), plus whichever
    optional hooks the discipline needs. Class attributes declare the
    discipline's contract to the engine and the registry:

    ``needs_capacity``
        True for rate-proportional disciplines; the registry injects the
        link rate as ``assumed_capacity`` when constructing the rank.
    ``supports_discard``
        True when :meth:`on_discard` re-chains tags so ``discard_tail``
        leaves no virtual-time gap (SFQ/SCFQ).
    ``eligibility``
        True when dequeue must gate on :meth:`advance` (WF²Q's
        ``S(p) <= v(t)`` scan).
    ``provides_tie``
        True when :meth:`rank` returns meaningful tie tuples; the engine
        then uses them instead of a ``tie_break`` rule.
    ``exports``
        Attribute names the owning scheduler forwards (read-only) to
        this rank — the discipline's public state surface.
    """

    __slots__ = ()

    name = "rank"
    needs_capacity = False
    supports_discard = False
    eligibility = False
    provides_tie = False
    exports: Tuple[str, ...] = ()

    def bind(self, scheduler: Scheduler) -> None:
        """Called once when a scheduler adopts this rank (default no-op)."""

    def rank(
        self, flow: RankFlow, packet: Packet, now: float
    ) -> Tuple[float, Tuple[Any, ...]]:
        """Stamp tags on an arriving packet; return ``(key, tie)``."""
        raise NotImplementedError

    def head_key(self, packet: Packet) -> float:
        """Scheduling key of an already-tagged packet."""
        raise NotImplementedError

    def on_dequeue(self, flow: RankFlow, packet: Packet) -> None:
        """Virtual-time bookkeeping once a packet is selected (no-op)."""

    def on_idle(self) -> None:
        """End-of-busy-period bookkeeping (no-op)."""

    def on_discard(self, flow: RankFlow, packet: Packet) -> None:
        """Re-chain tags after ``packet`` was discarded from the tail."""

    def advance(self, now: float) -> float:
        """Eligibility clock (only when ``eligibility`` is True)."""
        raise NotImplementedError(f"{self.name} has no eligibility clock")

    def band_origin(self, now: float) -> float:
        """Origin subtracted from keys before SP-PIFO band mapping.

        Virtual-time and deadline ranks drift upward without bound, so
        raw keys compared against band bounds learned from older packets
        always look "largest ever seen" and sink to the lowest-priority
        band — the quantized scheduler degenerates to a FIFO. Expressing
        the rank *relative to the discipline's clock* (tag minus v(t),
        deadline minus now) makes the distribution quasi-stationary,
        which is the standard trick for running fair queueing on
        fixed-range PIFO hardware. Exact (heap) ordering keeps absolute
        keys; only the band-bound comparison is origin-shifted.
        """
        return 0.0


# ----------------------------------------------------------------------
# Deprecation shims: direct class construction warns, once per site
# ----------------------------------------------------------------------

_REGISTRY_CONSTRUCTIONS = 0


@contextmanager
def registry_construction() -> Iterator[None]:
    """Suppress the direct-construction warning (used by the registry)."""
    global _REGISTRY_CONSTRUCTIONS
    _REGISTRY_CONSTRUCTIONS += 1  # lint: disable=CACHE001  balanced re-entrancy counter; restored on exit, so entry points stay pure
    try:
        yield
    finally:
        _REGISTRY_CONSTRUCTIONS -= 1  # lint: disable=CACHE001  balanced re-entrancy counter; restored on exit, so entry points stay pure


def warn_direct_construction(shim: type, actual: type) -> None:
    """Warn when a legacy discipline class is constructed directly.

    Silent for subclasses (``BrokenSFQ``-style test doubles legitimately
    extend the shims) and inside :func:`registry_construction` (the
    registry builds through the same classes to keep ``isinstance``
    contracts).
    """
    if actual is not shim or _REGISTRY_CONSTRUCTIONS:
        return
    warnings.warn(
        f"constructing {shim.__name__} directly is deprecated; use "
        f"repro.make_scheduler({shim.__name__!r}, ...). The class remains "
        "importable as a thin shim over the PIFO rank-function engine "
        "(repro.core.pifo).",
        DeprecationWarning,
        stacklevel=3,
    )


# ----------------------------------------------------------------------
# The seven disciplines as rank functions
# ----------------------------------------------------------------------


class _TagPairRank(RankFn):
    """Shared state/hooks of the self-clocked tag pair (SFQ and SCFQ).

    Both stamp eq. 4 start/finish tags off the rank-local virtual time
    ``v`` and differ only in which tag orders service and which tag
    ``v`` tracks. Busy-period rule 2 and the discard re-chaining are
    identical.
    """

    __slots__ = ("v", "_max_served_finish")

    supports_discard = True
    exports = ("v", "virtual_time")

    def __init__(self) -> None:
        self.v = 0.0  # system virtual time v(t)
        self._max_served_finish = 0.0

    @property
    def virtual_time(self) -> float:
        """Current system virtual time ``v(t)``."""
        return self.v

    def on_idle(self) -> None:
        # End of busy period: v is set to the maximum finish tag
        # assigned to any packet serviced by now (rule 2).
        self.v = max(self.v, self._max_served_finish)

    def band_origin(self, now: float) -> float:
        # Tags drift with v(t); band-map on tag - v so the quantizer
        # sees a stationary distribution.
        return self.v

    def on_discard(self, flow: RankFlow, packet: Packet) -> None:
        # Re-chain future arrivals off the new tail so no virtual-time
        # gap is left where the discarded packet sat.
        queue = flow.queue
        tail = queue[-1] if queue else None
        flow.last_finish = (  # type: ignore[assignment]  # tags stamped on enqueue
            tail.finish_tag if tail is not None else packet.start_tag
        )


class SfqRank(_TagPairRank):
    """Start-time Fair Queuing (the paper's algorithm, Section 2)."""

    __slots__ = ()

    name = "SFQ"

    def rank(
        self, flow: RankFlow, packet: Packet, now: float
    ) -> Tuple[float, Tuple[Any, ...]]:
        # The exact-float tag recursion is shared with every backend via
        # repro.core.tagmath (see its module docstring).
        start, finish = start_finish(
            self.v, flow.last_finish, packet.length, flow.weight, packet.rate
        )
        packet.start_tag = start
        packet.finish_tag = finish
        flow.last_finish = finish
        return start, ()

    def head_key(self, packet: Packet) -> float:
        return packet.start_tag  # type: ignore[return-value]  # stamped on enqueue

    def on_dequeue(self, flow: RankFlow, packet: Packet) -> None:
        # Rule 2: v(t) is the start tag of the packet in service.
        self.v = packet.start_tag  # type: ignore[assignment]  # stamped on enqueue
        finish = packet.finish_tag
        if finish is not None and finish > self._max_served_finish:
            self._max_served_finish = finish


class ScfqRank(_TagPairRank):
    """Self-Clocked Fair Queuing (Golestani 1994; paper Section 1.2)."""

    __slots__ = ()

    name = "SCFQ"

    def rank(
        self, flow: RankFlow, packet: Packet, now: float
    ) -> Tuple[float, Tuple[Any, ...]]:
        start, finish = start_finish(
            self.v, flow.last_finish, packet.length, flow.weight, packet.rate
        )
        packet.start_tag = start
        packet.finish_tag = finish
        flow.last_finish = finish
        return finish, ()

    def head_key(self, packet: Packet) -> float:
        return packet.finish_tag  # type: ignore[return-value]  # stamped on enqueue

    def on_dequeue(self, flow: RankFlow, packet: Packet) -> None:
        # Self-clocking: v(t) approximates GPS round number with the
        # finish tag of the packet in service.
        finish: float = packet.finish_tag  # type: ignore[assignment]  # stamped on enqueue
        self.v = finish
        if finish > self._max_served_finish:
            self._max_served_finish = finish


class WfqRank(RankFn):
    """Weighted Fair Queuing / PGPS (finish-tag order over fluid GPS)."""

    __slots__ = ("gps",)

    name = "WFQ"
    needs_capacity = True
    exports = ("gps", "virtual_time")

    def __init__(self, assumed_capacity: float) -> None:
        self.gps = GPSVirtualClock(assumed_capacity)

    @property
    def virtual_time(self) -> float:
        """Fluid GPS virtual time at the last advance."""
        return self.gps.v

    def _stamp(
        self, flow: RankFlow, packet: Packet, now: float
    ) -> Tuple[float, float]:
        """Shared WFQ/FQS/WF²Q arrival work: advance GPS, stamp tags."""
        v = self.gps.advance(now)
        weight = flow.weight
        start, finish = start_finish(
            v, flow.last_finish, packet.length, weight, packet.rate
        )
        packet.start_tag = start
        packet.finish_tag = finish
        flow.last_finish = finish
        self.gps.on_arrival(packet.flow, weight, finish)
        return start, finish

    def rank(
        self, flow: RankFlow, packet: Packet, now: float
    ) -> Tuple[float, Tuple[Any, ...]]:
        return self._stamp(flow, packet, now)[1], ()

    def head_key(self, packet: Packet) -> float:
        return packet.finish_tag  # type: ignore[return-value]  # stamped on enqueue

    def band_origin(self, now: float) -> float:
        # Tags drift with the fluid GPS clock; band-map relative to it.
        return self.gps.v


class FqsRank(WfqRank):
    """Fair Queuing by Start-time (Greenberg & Madras 1992)."""

    __slots__ = ()

    name = "FQS"

    def rank(
        self, flow: RankFlow, packet: Packet, now: float
    ) -> Tuple[float, Tuple[Any, ...]]:
        return self._stamp(flow, packet, now)[0], ()

    def head_key(self, packet: Packet) -> float:
        return packet.start_tag  # type: ignore[return-value]  # stamped on enqueue


class Wf2qRank(WfqRank):
    """Worst-case Fair WFQ (eligibility-gated finish-tag order)."""

    __slots__ = ()

    name = "WF2Q"
    eligibility = True

    def advance(self, now: float) -> float:
        return self.gps.advance(now)


class VcRank(RankFn):
    """Virtual Clock (Zhang 1990): EAT + l/r stamp order, eq. 37."""

    __slots__ = ()

    name = "VirtualClock"

    def rank(
        self, flow: RankFlow, packet: Packet, now: float
    ) -> Tuple[float, Tuple[Any, ...]]:
        rate = flow.packet_rate(packet)
        eat = flow.eat_on_arrival(now, packet.length, rate)
        stamp = eat + packet.length / rate
        packet.timestamp = stamp
        # Keep tags populated for uniform trace analysis.
        packet.start_tag = eat
        packet.finish_tag = stamp
        return stamp, ()

    def head_key(self, packet: Packet) -> float:
        return packet.timestamp  # type: ignore[return-value]  # stamped on enqueue

    def band_origin(self, now: float) -> float:
        # EAT stamps are absolute times; band-map relative to now.
        return now


class DelayEddRank(RankFn):
    """Delay Earliest-Due-Date (paper Section 3, eq. 66)."""

    __slots__ = ("deadlines", "_scheduler")

    name = "DelayEDD"
    exports = ("deadlines", "add_flow_with_deadline")

    def __init__(self) -> None:
        self.deadlines: Dict[Hashable, float] = {}
        self._scheduler: Optional[Scheduler] = None

    def bind(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler

    def add_flow_with_deadline(
        self, flow_id: Hashable, rate: float, deadline: float
    ) -> Any:
        """Register a flow with rate ``rate`` (bits/s) and per-packet
        deadline offset ``deadline`` (seconds)."""
        if deadline <= 0:
            raise SchedulerError(f"deadline must be positive, got {deadline}")
        scheduler = self._scheduler
        if scheduler is None:
            raise SchedulerError(
                "DelayEddRank is not bound to a scheduler yet"
            )
        state = scheduler.add_flow(flow_id, rate)
        self.deadlines[flow_id] = float(deadline)
        return state

    def rank(
        self, flow: RankFlow, packet: Packet, now: float
    ) -> Tuple[float, Tuple[Any, ...]]:
        deadline_offset = self.deadlines.get(packet.flow)
        if deadline_offset is None:
            raise SchedulerError(
                f"flow {packet.flow!r} has no deadline; use add_flow_with_deadline"
            )
        rate = flow.packet_rate(packet)
        eat = flow.eat_on_arrival(now, packet.length, rate)
        deadline = eat + deadline_offset
        packet.deadline = deadline
        packet.start_tag = eat
        return deadline, ()

    def head_key(self, packet: Packet) -> float:
        return packet.deadline  # type: ignore[return-value]  # stamped on enqueue

    def band_origin(self, now: float) -> float:
        # Deadlines are absolute times; band-map relative to now.
        return now


class LstfRank(RankFn):
    """Least Slack Time First (Mittal et al., "Universal Packet
    Scheduling").

    Each packet's priority is its arrival time plus the flow's slack
    budget: the packet that can least afford to wait is served first.
    Seed for the ROADMAP's replay-harness item — slack-initialized
    headers are what lets LSTF replay other disciplines' schedules.
    Change a flow's slack only while it is idle: the flow-head heap
    relies on within-flow rank monotonicity.
    """

    __slots__ = ("slacks", "default_slack")

    name = "LSTF"
    exports = ("slacks", "set_slack")

    def __init__(self, default_slack: float = 0.01) -> None:
        if default_slack <= 0:
            raise SchedulerError(
                f"default_slack must be positive, got {default_slack}"
            )
        self.slacks: Dict[Hashable, float] = {}
        self.default_slack = float(default_slack)

    def set_slack(self, flow_id: Hashable, slack: float) -> None:
        """Assign flow ``flow_id`` a slack budget in seconds."""
        if slack <= 0:
            raise SchedulerError(f"slack must be positive, got {slack}")
        self.slacks[flow_id] = float(slack)

    def rank(
        self, flow: RankFlow, packet: Packet, now: float
    ) -> Tuple[float, Tuple[Any, ...]]:
        deadline = now + self.slacks.get(packet.flow, self.default_slack)
        packet.deadline = deadline
        return deadline, ()

    def head_key(self, packet: Packet) -> float:
        return packet.deadline  # type: ignore[return-value]  # stamped on enqueue

    def band_origin(self, now: float) -> float:
        # Slack deadlines are absolute times; band-map relative to now.
        return now


# ----------------------------------------------------------------------
# The object-backend PIFO engine
# ----------------------------------------------------------------------


class PifoScheduler(HeadHeapScheduler):
    """Flow-head-heap PIFO engine driven by a :class:`RankFn`.

    This is the one object-backend hot path every tag discipline now
    runs on; the discipline itself is the ``rank_fn`` argument. The
    slab/array twin is ``repro.core.arrayheap.ArrayPifoScheduler``.
    """

    __slots__ = ("_rank", "_eligibility", "_rank_ties", "_pending_tie")

    algorithm = "PIFO"

    def __init__(
        self,
        rank_fn: RankFn,
        *,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
        self._rank = rank_fn
        self._eligibility = bool(rank_fn.eligibility)
        self._rank_ties = bool(rank_fn.provides_tie)
        self._pending_tie: Tuple[Any, ...] = ()
        if self._rank_ties:
            self._fifo_ties = False
            self._tie_break = self._rank_tie
        rank_fn.bind(self)

    @property
    def rank_fn(self) -> RankFn:
        """The rank function driving this engine."""
        return self._rank

    def _rank_tie(self, state: FlowState, packet: Packet) -> Tuple[Any, ...]:
        # Tie produced by the rank function during rank() (arrival).
        return self._pending_tie

    def __getattr__(self, name: str) -> Any:
        # Forward the rank's exported state (scheduler.virtual_time,
        # .gps, .deadlines, ...) so the per-discipline attribute surface
        # survives the engine unification. hasattr() therefore stays
        # discipline-dependent, which the fault monitors rely on.
        try:
            rank = object.__getattribute__(self, "_rank")
        except AttributeError:
            raise AttributeError(name) from None
        if name in rank.exports:
            return getattr(rank, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    # HeadHeapScheduler hooks, delegated to the rank function
    # ------------------------------------------------------------------
    def _tag_packet(self, state: FlowState, packet: Packet, now: float) -> float:
        key, tie = self._rank.rank(state, packet, now)
        if self._rank_ties:
            self._pending_tie = tie
        return key

    def _head_key(self, packet: Packet) -> float:
        return self._rank.head_key(packet)

    def _on_dequeued(self, state: FlowState, packet: Packet) -> None:
        self._rank.on_dequeue(state, packet)

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        if self._backlog_packets == 0:
            self._rank.on_idle()

    def _do_discard_tail(self, state: FlowState) -> Optional[Packet]:
        if not self._rank.supports_discard:
            return super()._do_discard_tail(state)  # raises, naming the algorithm
        packet = self._pop_tail(state)
        self._rank.on_discard(state, packet)
        return packet

    # ------------------------------------------------------------------
    # Eligibility-gated selection (WF²Q)
    # ------------------------------------------------------------------
    def _do_dequeue(self, now: float) -> Optional[Packet]:
        if self._eligibility:
            return self._dequeue_eligible(now)
        return super()._do_dequeue(now)

    def _dequeue_eligible(self, now: float) -> Optional[Packet]:
        heap = self._head_heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        v = self._rank.advance(now)
        # Pop ineligible flow heads aside until an eligible one surfaces.
        shelved: List[HeapEntry] = []
        chosen: Optional[HeapEntry] = None
        while heap:
            entry = heapq.heappop(heap)
            packet = entry[3]
            if packet is None:
                continue
            if packet.start_tag is not None and packet.start_tag <= v + 1e-12:
                chosen = entry
                break
            shelved.append(entry)
        if chosen is None:
            # Work-conserving fallback: smallest start tag, ties by uid.
            chosen = min(shelved, key=lambda e: (e[3].start_tag, e[2]))
            for entry in shelved:
                if entry is not chosen:
                    heapq.heappush(heap, entry)
        else:
            for entry in shelved:
                heapq.heappush(heap, entry)
        return self._consume_entry(chosen)

    def peek(self, now: float) -> Optional[Packet]:
        """Packet the next ``dequeue`` would return (no side effects)."""
        if not self._eligibility:
            return super().peek(now)
        heap = self._head_heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        v = self._rank.advance(now)
        live = [e for e in heap if e[3] is not None]
        eligible = [e for e in live if e[3].start_tag <= v + 1e-12]
        if eligible:
            return min(eligible, key=lambda e: (e[3].finish_tag, e[2]))[3]
        return min(live, key=lambda e: (e[3].start_tag, e[2]))[3]


# ----------------------------------------------------------------------
# SP-PIFO: k strict-priority bands approximating the perfect PIFO
# ----------------------------------------------------------------------


class SpPifoScheduler(Scheduler):
    """SP-PIFO (Alcoz et al.): quantized PIFO over k priority bands.

    A perfect PIFO serves strictly in rank order at O(log n). SP-PIFO
    approximates it with ``bands`` strict-priority FIFO queues and one
    adaptive bound per band:

    * **push-up** — a packet is enqueued into the lowest-priority band
      whose bound its rank meets, and that band's bound rises to the
      rank;
    * **push-down** — a rank below even the top band's bound signals an
      inversion-in-the-making: all bounds drop by the overshoot and the
      packet enters the top band.

    Enqueue/dequeue are O(k); fidelity is measured as the **rank
    inversion rate** — the fraction of dequeues where some queued packet
    had a strictly smaller rank (tracked against an exact side-heap when
    ``track_inversions`` is on). ``bands=None`` is the k→∞ degenerate
    case: a single exact heap, byte-identical in service order to
    :class:`PifoScheduler` for within-flow-monotone ranks.

    Unlike the PIFO engine this scheduler does not forward the rank's
    exported state (no ``virtual_time``): it intentionally serves out of
    tag order, so virtual-time monitors must not attach to it.
    """

    __slots__ = (
        "_rank",
        "_bands",
        "bounds",
        "_exact_heap",
        "track_inversions",
        "inversions",
        "unpifoness",
        "dequeues",
        "push_ups",
        "push_downs",
        "_pending",
        "_done",
    )

    algorithm = "SP-PIFO"

    def __init__(
        self,
        rank_fn: RankFn,
        bands: Optional[int] = 8,
        *,
        auto_register: bool = True,
        default_weight: float = 1.0,
        track_inversions: bool = True,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        if bands is not None and bands < 1:
            raise SchedulerError(f"bands must be >= 1 (or None for exact), got {bands}")
        self._rank = rank_fn
        #: Strict-priority FIFO bands, index 0 = highest priority
        #: (smallest ranks); None in exact (k=inf) mode.
        self._bands: Optional[List[Deque[Packet]]] = (
            None if bands is None else [deque() for _ in range(bands)]
        )
        #: Per-band rank bounds, adapted by push-up/push-down.
        self.bounds: List[float] = [] if bands is None else [0.0] * bands
        #: Exact PIFO heap of (rank, uid, packet); only in k=inf mode.
        self._exact_heap: Optional[List[Tuple[float, int, Packet]]] = (
            [] if bands is None else None
        )
        self.track_inversions = bool(track_inversions) and bands is not None
        self.inversions = 0
        #: Sum of positive rank gaps (served key minus exact-PIFO
        #: minimum queued key) — the magnitude-weighted inversion
        #: measure of Alcoz et al.; rate alone saturates once a small
        #: rank is stranded.
        self.unpifoness = 0.0
        self.dequeues = 0
        self.push_ups = 0
        self.push_downs = 0
        #: Side min-heap of (rank, uid) of queued packets (fidelity
        #: tracking only; never consulted for scheduling).
        self._pending: List[Tuple[float, int]] = []
        #: uids dequeued while not at the side-heap top (lazy purge).
        self._done: Dict[int, None] = {}
        rank_fn.bind(self)

    @property
    def rank_fn(self) -> RankFn:
        """The rank function driving this approximation."""
        return self._rank

    @property
    def band_count(self) -> Optional[int]:
        """Number of priority bands (None in exact k=inf mode)."""
        return None if self._bands is None else len(self._bands)

    @property
    def inversion_rate(self) -> float:
        """Fraction of dequeues that inverted the perfect-PIFO order."""
        return self.inversions / self.dequeues if self.dequeues else 0.0

    def band_occupancy(self) -> List[int]:
        """Queued packets per band, highest priority first."""
        return [] if self._bands is None else [len(b) for b in self._bands]

    # ------------------------------------------------------------------
    # Scheduler protocol
    # ------------------------------------------------------------------
    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        key, _tie = self._rank.rank(state, packet, now)
        heap = self._exact_heap
        if heap is not None:
            heapq.heappush(heap, (key, packet.uid, packet))
            return
        bands = self._bands
        assert bands is not None  # exact mode returned above
        bounds = self.bounds
        if self.track_inversions:
            heapq.heappush(self._pending, (key, packet.uid))
        # Band-map on the origin-relative key (see RankFn.band_origin):
        # bounds learned from drifting absolute tags would sink every
        # newer packet to the bottom band.
        rel = key - self._rank.band_origin(now)
        # Scan bottom-up (largest bounds first): the packet lands in the
        # lowest-priority band whose bound its rank meets, pushing that
        # bound up to the rank.
        for i in range(len(bands) - 1, 0, -1):
            if rel >= bounds[i]:
                bounds[i] = rel
                self.push_ups += 1
                bands[i].append(packet)
                return
        if rel >= bounds[0]:
            bounds[0] = rel
            self.push_ups += 1
        else:
            # Inversion at the top band: push every bound down by the
            # overshoot, admit the packet at highest priority.
            delta = bounds[0] - rel
            for i in range(len(bounds)):
                bounds[i] -= delta
            self.push_downs += 1
        bands[0].append(packet)

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        heap = self._exact_heap
        if heap is not None:
            if not heap:
                return None
            _key, _uid, packet = heapq.heappop(heap)
            self.dequeues += 1
            self._rank.on_dequeue(self.flows[packet.flow], packet)
            return packet
        bands = self._bands
        assert bands is not None  # exact mode returned above
        packet = None
        for band in bands:
            if band:
                packet = band.popleft()
                break
        if packet is None:
            return None
        self.dequeues += 1
        if self.track_inversions:
            self._record_inversion(packet)
        self._rank.on_dequeue(self.flows[packet.flow], packet)
        return packet

    def _record_inversion(self, packet: Packet) -> None:
        """Compare this dequeue against the exact side-heap minimum."""
        pending = self._pending
        done = self._done
        while pending and pending[0][1] in done:
            del done[pending[0][1]]
            heapq.heappop(pending)
        if not pending:
            return
        top_key, top_uid = pending[0]
        if top_uid == packet.uid:
            heapq.heappop(pending)
            return
        # A strictly smaller rank is still queued: perfect PIFO would
        # have served it first. (Equal ranks are not inversions.)
        gap = self._rank.head_key(packet) - top_key
        if gap > 0.0:
            self.inversions += 1
            self.unpifoness += gap
        done[packet.uid] = None

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        if self._backlog_packets == 0:
            self._rank.on_idle()

    def peek(self, now: float) -> Optional[Packet]:
        """Packet the next ``dequeue`` would return (no side effects)."""
        heap = self._exact_heap
        if heap is not None:
            return heap[0][2] if heap else None
        bands = self._bands
        assert bands is not None  # exact mode returned above
        for band in bands:
            if band:
                return band[0]
        return None


# ----------------------------------------------------------------------
# LSTF as a registered discipline (object backend)
# ----------------------------------------------------------------------


class LSTF(PifoScheduler):
    """Least Slack Time First on the PIFO engine.

    Parameters
    ----------
    default_slack:
        Slack budget (seconds) for flows without an explicit
        ``set_slack`` assignment.
    """

    __slots__ = ()

    algorithm = "LSTF"

    def __init__(
        self,
        default_slack: float = 0.01,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(
            LstfRank(default_slack),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
