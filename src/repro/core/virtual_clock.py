"""Virtual Clock — Zhang 1990; paper Sections 1.1 and Appendix B.

Virtual Clock stamps packet :math:`p_f^j` with
:math:`EAT(p_f^j, r_f) + l_f^j / r_f` (expected arrival time, eq. 37)
and transmits packets in increasing stamp order. It provides the same
delay guarantee as WFQ but is *unfair*: a flow that used idle bandwidth
is punished later (its clock ran ahead), which is why the paper classes
it with the real-time-but-unfair algorithms. It reappears as the
Guaranteed Service Queue of the Fair Airport scheduler (Appendix B).

The discipline itself lives in :class:`repro.core.pifo.VcRank`; this
class is a deprecation shim. Construct through
``repro.make_scheduler("VirtualClock", ...)``.
"""

from __future__ import annotations

from repro.core.base import TieBreak
from repro.core.headheap import TieBreakRule
from repro.core.pifo import PifoScheduler, VcRank, warn_direct_construction

__all__ = ["VirtualClock"]


class VirtualClock(PifoScheduler):
    """Virtual Clock scheduler (deprecation shim over the PIFO engine)."""

    __slots__ = ()

    algorithm = "VirtualClock"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(VirtualClock, type(self))
        super().__init__(
            VcRank(),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
