"""Virtual Clock — Zhang 1990; paper Sections 1.1 and Appendix B.

Virtual Clock stamps packet :math:`p_f^j` with
:math:`EAT(p_f^j, r_f) + l_f^j / r_f` (expected arrival time, eq. 37)
and transmits packets in increasing stamp order. It provides the same
delay guarantee as WFQ but is *unfair*: a flow that used idle bandwidth
is punished later (its clock ran ahead), which is why the paper classes
it with the real-time-but-unfair algorithms. It reappears as the
Guaranteed Service Queue of the Fair Airport scheduler (Appendix B).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.core.base import Scheduler, TieBreak
from repro.core.flow import FlowState
from repro.core.packet import Packet


class VirtualClock(Scheduler):
    """Virtual Clock scheduler."""

    algorithm = "VirtualClock"

    def __init__(
        self,
        tie_break: Callable[[FlowState, Packet], Tuple] = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._tie_break = tie_break
        self._heap: List[Tuple] = []

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        rate = state.packet_rate(packet)
        eat = state.eat.on_arrival(now, packet.length, rate)
        stamp = eat + packet.length / rate
        packet.timestamp = stamp
        # Keep tags populated for uniform trace analysis.
        packet.start_tag = eat
        packet.finish_tag = stamp
        state.push(packet)
        key = self._tie_break(state, packet)
        heapq.heappush(self._heap, (stamp, key, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        _stamp, _key, _uid, packet = heapq.heappop(self._heap)
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet, "per-flow FIFO must match stamp order"
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        return self._heap[0][3] if self._heap else None
