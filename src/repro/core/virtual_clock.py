"""Virtual Clock — Zhang 1990; paper Sections 1.1 and Appendix B.

Virtual Clock stamps packet :math:`p_f^j` with
:math:`EAT(p_f^j, r_f) + l_f^j / r_f` (expected arrival time, eq. 37)
and transmits packets in increasing stamp order. It provides the same
delay guarantee as WFQ but is *unfair*: a flow that used idle bandwidth
is punished later (its clock ran ahead), which is why the paper classes
it with the real-time-but-unfair algorithms. It reappears as the
Guaranteed Service Queue of the Fair Airport scheduler (Appendix B).

EAT (and therefore the stamp) is monotone within a flow, so Virtual
Clock runs on the flow-head heap of
:class:`repro.core.headheap.HeadHeapScheduler`.
"""

from __future__ import annotations

from repro.core.base import TieBreak
from repro.core.flow import FlowState
from repro.core.headheap import HeadHeapScheduler, TieBreakRule
from repro.core.packet import Packet


class VirtualClock(HeadHeapScheduler):
    """Virtual Clock scheduler."""

    __slots__ = ()

    algorithm = "VirtualClock"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )

    def _tag_packet(self, state: FlowState, packet: Packet, now: float) -> float:
        rate = state.packet_rate(packet)
        eat = state.eat.on_arrival(now, packet.length, rate)
        stamp = eat + packet.length / rate
        packet.timestamp = stamp
        # Keep tags populated for uniform trace analysis.
        packet.start_tag = eat
        packet.finish_tag = stamp
        return stamp

    def _head_key(self, packet: Packet) -> float:
        return packet.timestamp  # type: ignore[return-value]  # stamped on enqueue
