"""Flow-head heaps: shared O(log F) machinery for all tag schedulers.

The paper sells SFQ on complexity — :math:`O(\\log Q)` per packet where
*Q is the number of flows* — but a naive implementation (and this
repo's seed core, preserved under ``tests/reference/``) keeps one global
heap of *packets*, so every operation costs :math:`O(\\log N)` in total
backlog and ``discard_tail`` needs a stale-uid set that the dequeue path
must skim on every pop.

The key structural fact that rescues the paper's bound: **within one
flow, scheduling tags are monotone**. Arrivals are FIFO per flow, and
every discipline in this library chains its tag off the previous
packet's (eq. 4's ``max{v, F(prev)}`` for SFQ/SCFQ/WFQ/FQS, the EAT
recursion of eq. 37 for Virtual Clock and Delay EDD), so a flow's
earliest-tag packet is always its FIFO head. The scheduler therefore
only ever needs to compare the *head packet of each backlogged flow*:

* per-flow FIFO queues hold the backlog (``FlowState.queue``);
* one heap holds at most one entry per backlogged flow — the flow's
  head packet keyed by ``(tag, tie_key, uid)``, exactly the key the
  seed's packet heap used, so the service order is identical;
* enqueue/dequeue are ``O(log F)`` in *backlogged flows*, independent of
  per-flow backlog depth;
* ``discard_tail`` is ``O(1)``: the victim is the FIFO tail, which is
  in the head heap only when it is the flow's sole packet — in that
  case the flow's live entry is lazily invalidated in place (no
  unbounded ``_discarded`` set, no skimming loop proportional to
  discards).

Invariants (exercised by ``tests/test_trace_equivalence.py`` and, under
``debug_checks=True``, re-checked on every dequeue):

1. a flow has a live ``heap_entry`` iff it is backlogged, and that entry
   references its current FIFO head;
2. heap order ``(tag, tie_key, uid)`` equals the seed core's global
   packet-heap order, because per-flow tag monotonicity makes the head
   the flow's minimum;
3. invalidated entries (``entry[3] is None``) are purged lazily at the
   next dequeue/peek and never outnumber the flows that discarded their
   sole packet since the last dequeue.

``debug_checks`` replaces the seed core's per-dequeue ``assert`` (which
ran even under ``python -O`` ... actually it *disappeared* under ``-O``
— the worst of both worlds): by default the hot path performs no check,
and with ``debug_checks=True`` a violated invariant raises
:class:`~repro.core.base.SchedulerError` deterministically.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

from repro.core.base import Scheduler, SchedulerError, TieBreak
from repro.core.flow import FlowState
from repro.core.packet import Packet

TieBreakRule = Callable[[FlowState, Packet], Tuple[Any, ...]]

#: A 5-slot mutable heap entry ``[key, tie_key, uid, packet, state]``
#: (``entry[3] is None`` marks lazy invalidation). Heterogeneous by
#: design — a list so invalidation can happen in place.
HeapEntry = List[Any]

__all__ = ["HeadHeapScheduler"]


class HeadHeapScheduler(Scheduler):
    """Base class for tag schedulers built on a heap of flow heads.

    Subclasses implement:

    ``_tag_packet(state, packet, now) -> float``
        Stamp the packet's tags (arrival-time work) and return the
        scalar scheduling key.
    ``_head_key(packet) -> float``
        Read the scheduling key back off an already-tagged packet (used
        when a queued packet becomes its flow's head).
    ``_on_dequeued(state, packet)``
        Optional virtual-time bookkeeping once a packet is selected.

    Heap entries are 5-slot lists ``[key, tie_key, uid, packet, state]``;
    ``uid`` is unique so comparisons never reach the packet. A lazily
    invalidated entry has ``entry[3] is None``.
    """

    __slots__ = ("_tie_break", "_fifo_ties", "_head_heap", "debug_checks")

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._tie_break = tie_break
        self._fifo_ties = tie_break is TieBreak.fifo
        #: Heap of live flow-head entries (at most one per backlogged flow).
        self._head_heap: List[HeapEntry] = []
        #: When True, re-verify the head-heap/FIFO invariant per dequeue
        #: and raise SchedulerError on corruption (seed behavior: assert).
        self.debug_checks = bool(debug_checks)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _tag_packet(self, state: FlowState, packet: Packet, now: float) -> float:
        """Stamp tags on an arriving packet; return its scheduling key."""
        raise NotImplementedError

    def _head_key(self, packet: Packet) -> float:
        """Scheduling key of an already-tagged packet."""
        raise NotImplementedError

    def _on_dequeued(self, state: FlowState, packet: Packet) -> None:
        """Virtual-time bookkeeping hook; default no-op."""

    # ------------------------------------------------------------------
    # Scheduler protocol
    # ------------------------------------------------------------------
    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        key = self._tag_packet(state, packet, now)
        queue = state.queue
        queue.append(packet)
        length = packet.length
        state.bits_enqueued += length
        if length > state.max_length_seen:
            state.max_length_seen = length
        if self._fifo_ties:
            tie: Tuple[Any, ...] = ()
        else:
            tie = self._tie_break(state, packet)
            keys = state.tie_keys
            if keys is None:
                keys = state.tie_keys = deque()
            keys.append(tie)
        if len(queue) == 1:
            # The flow just became backlogged: its head enters the heap.
            entry: HeapEntry = [key, tie, packet.uid, packet, state]
            state.heap_entry = entry
            heapq.heappush(self._head_heap, entry)

    def _pop_min_entry(self) -> Optional[HeapEntry]:
        """Pop the live minimum entry, purging invalidated ones."""
        heap = self._head_heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[3] is not None:
                return entry
        return None

    def _consume_entry(self, entry: HeapEntry) -> Packet:
        """Dequeue the entry's packet and re-offer the flow's next head."""
        packet: Packet = entry[3]
        state: FlowState = entry[4]
        state.heap_entry = None
        queue = state.queue
        head = queue.popleft()
        if self.debug_checks and head is not packet:
            raise SchedulerError(
                f"{self.algorithm} internal error: flow {state.flow_id!r} "
                "FIFO head diverged from its head-heap entry"
            )
        if self._fifo_ties:
            if queue:
                nxt = queue[0]
                fresh: HeapEntry = [self._head_key(nxt), (), nxt.uid, nxt, state]
                state.heap_entry = fresh
                heapq.heappush(self._head_heap, fresh)
        else:
            keys = state.tie_keys
            assert keys is not None  # non-FIFO enqueue always fills it
            keys.popleft()
            if queue:
                nxt = queue[0]
                fresh = [self._head_key(nxt), keys[0], nxt.uid, nxt, state]
                state.heap_entry = fresh
                heapq.heappush(self._head_heap, fresh)
        return packet

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        entry = self._pop_min_entry()
        if entry is None:
            return None
        state = entry[4]
        packet = self._consume_entry(entry)
        self._on_dequeued(state, packet)
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        """Packet the next ``dequeue`` would return (no side effects)."""
        heap = self._head_heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        return heap[0][3] if heap else None

    # ------------------------------------------------------------------
    # discard_tail support (O(1))
    # ------------------------------------------------------------------
    def _pop_tail(self, state: FlowState) -> Packet:
        """Remove a flow's FIFO tail; invalidate its entry if now empty.

        The tail is in the head heap only when it is the flow's sole
        packet; in that case the live entry is invalidated in place and
        reaped lazily by the next dequeue/peek.
        """
        queue = state.queue
        packet = queue.pop()
        if not self._fifo_ties and state.tie_keys:
            state.tie_keys.pop()
        if not queue:
            entry = state.heap_entry
            if entry is not None:
                entry[3] = None
                entry[4] = None
                state.heap_entry = None
        return packet
