"""Start-time Fair Queuing (SFQ) — the paper's contribution (Section 2).

Algorithm (paper, Section 2):

1. On arrival, packet :math:`p_f^j` is stamped with start tag

   .. math:: S(p_f^j) = \\max\\{v(A(p_f^j)),\\; F(p_f^{j-1})\\}

   where the finish tag is :math:`F(p_f^j) = S(p_f^j) + l_f^j / r_f^j`
   with :math:`F(p_f^0) = 0`. The generalized algorithm of Section 2.3
   allows a per-packet rate :math:`r_f^j` (eq. 36); by default the flow
   weight is used.

2. ``v(t)`` is 0 initially; during a busy period it equals the start tag
   of the packet in service; at the end of a busy period it is set to the
   maximum finish tag assigned to any packet serviced by then.

3. Packets are serviced in increasing order of start tags; ties are
   broken by a configurable rule (Section 2.3 notes some rules are more
   desirable than others).

Properties reproduced by the test/bench suite:

* fairness: :math:`|W_f/r_f - W_m/r_m| \\le l_f^{max}/r_f + l_m^{max}/r_m`
  for any interval where both flows are backlogged (Theorem 1), on *any*
  server, including variable-rate ones;
* throughput guarantee on FC/EBF servers (Theorems 2–3);
* delay guarantee :math:`L(p) \\le EAT(p) + \\sum_{n \\ne f} l_n^{max}/C +
  l_f^j/C + \\delta(C)/C` (Theorems 4–5);
* :math:`O(\\log Q)` per-packet cost — realized here by the flow-head
  heap of :class:`repro.core.headheap.HeadHeapScheduler`, which keeps
  per-packet work logarithmic in *backlogged flows*, not total backlog.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import TieBreak
from repro.core.flow import FlowState
from repro.core.headheap import HeadHeapScheduler, TieBreakRule
from repro.core.packet import Packet
from repro.core.tagmath import start_finish


class SFQ(HeadHeapScheduler):
    """Start-time Fair Queuing.

    Parameters
    ----------
    tie_break:
        Secondary sort key for packets with equal start tags; one of the
        rules in :class:`repro.core.base.TieBreak` or any callable
        ``(FlowState, Packet) -> tuple``.
    debug_checks:
        When True, re-verify the flow-head-heap invariant on every
        dequeue (raising :class:`~repro.core.base.SchedulerError` on
        corruption). Off by default — the invariant is structural and
        exercised by the trace-equivalence suite.
    """

    __slots__ = ("v", "_max_served_finish")

    algorithm = "SFQ"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
        self.v = 0.0  # system virtual time v(t)
        self._max_served_finish = 0.0

    # ------------------------------------------------------------------
    # HeadHeapScheduler hooks
    # ------------------------------------------------------------------
    def _tag_packet(self, state: FlowState, packet: Packet, now: float) -> float:
        # The exact-float tag recursion is shared with the slab backend
        # via repro.core.tagmath (see its module docstring).
        start, finish = start_finish(
            self.v, state.last_finish, packet.length, state._weight, packet.rate
        )
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        return start

    def _head_key(self, packet: Packet) -> float:
        return packet.start_tag  # type: ignore[return-value]  # stamped on enqueue

    def _on_dequeued(self, state: FlowState, packet: Packet) -> None:
        # Rule 2: v(t) is the start tag of the packet in service.
        self.v = packet.start_tag  # type: ignore[assignment]  # stamped on enqueue
        finish = packet.finish_tag
        if finish is not None and finish > self._max_served_finish:
            self._max_served_finish = finish

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        if self._backlog_packets == 0:
            # End of busy period: v is set to the maximum finish tag
            # assigned to any packet serviced by now (rule 2).
            self.v = max(self.v, self._max_served_finish)

    def _do_discard_tail(self, state: FlowState) -> Optional[Packet]:
        packet = self._pop_tail(state)
        # Re-chain future arrivals off the new tail so no virtual-time
        # gap is left where the discarded packet sat.
        tail = state.queue[-1] if state.queue else None
        state.last_finish = (  # type: ignore[assignment]  # tags stamped on enqueue
            tail.finish_tag if tail is not None else packet.start_tag
        )
        return packet

    @property
    def virtual_time(self) -> float:
        """Current system virtual time ``v(t)``."""
        return self.v
