"""Start-time Fair Queuing (SFQ) — the paper's contribution (Section 2).

Algorithm (paper, Section 2):

1. On arrival, packet :math:`p_f^j` is stamped with start tag

   .. math:: S(p_f^j) = \\max\\{v(A(p_f^j)),\\; F(p_f^{j-1})\\}

   where the finish tag is :math:`F(p_f^j) = S(p_f^j) + l_f^j / r_f^j`
   with :math:`F(p_f^0) = 0`. The generalized algorithm of Section 2.3
   allows a per-packet rate :math:`r_f^j` (eq. 36); by default the flow
   weight is used.

2. ``v(t)`` is 0 initially; during a busy period it equals the start tag
   of the packet in service; at the end of a busy period it is set to the
   maximum finish tag assigned to any packet serviced by then.

3. Packets are serviced in increasing order of start tags; ties are
   broken by a configurable rule (Section 2.3 notes some rules are more
   desirable than others).

Properties reproduced by the test/bench suite:

* fairness: :math:`|W_f/r_f - W_m/r_m| \\le l_f^{max}/r_f + l_m^{max}/r_m`
  for any interval where both flows are backlogged (Theorem 1), on *any*
  server, including variable-rate ones;
* throughput guarantee on FC/EBF servers (Theorems 2–3);
* delay guarantee :math:`L(p) \\le EAT(p) + \\sum_{n \\ne f} l_n^{max}/C +
  l_f^j/C + \\delta(C)/C` (Theorems 4–5);
* :math:`O(\\log Q)` per-packet cost.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.core.base import Scheduler, TieBreak
from repro.core.flow import FlowState
from repro.core.packet import Packet

TieBreakRule = Callable[[FlowState, Packet], Tuple]


class SFQ(Scheduler):
    """Start-time Fair Queuing.

    Parameters
    ----------
    tie_break:
        Secondary sort key for packets with equal start tags; one of the
        rules in :class:`repro.core.base.TieBreak` or any callable
        ``(FlowState, Packet) -> tuple``.
    """

    algorithm = "SFQ"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._tie_break = tie_break
        # Heap entries: (start_tag, tie_key, uid, packet). The uid keeps
        # comparison total and preserves FIFO order among equal keys.
        self._heap: List[Tuple] = []
        self.v = 0.0  # system virtual time v(t)
        self._max_served_finish = 0.0
        # Packets removed by discard_tail; their heap entries are stale.
        self._discarded: set = set()

    # ------------------------------------------------------------------
    # Scheduler protocol
    # ------------------------------------------------------------------
    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        rate = state.packet_rate(packet)
        start = max(self.v, state.last_finish)
        finish = start + packet.length / rate
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        key = self._tie_break(state, packet)
        heapq.heappush(self._heap, (start, key, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        while self._heap and self._heap[0][2] in self._discarded:
            self._discarded.discard(heapq.heappop(self._heap)[2])
        if not self._heap:
            return None
        start, _key, _uid, packet = heapq.heappop(self._heap)
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet, "per-flow FIFO must match global tag order"
        # Rule 2: v(t) is the start tag of the packet in service.
        self.v = start
        if packet.finish_tag is not None and packet.finish_tag > self._max_served_finish:
            self._max_served_finish = packet.finish_tag
        return packet

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        if self._backlog_packets == 0:
            # End of busy period: v is set to the maximum finish tag
            # assigned to any packet serviced by now (rule 2).
            self.v = max(self.v, self._max_served_finish)

    def _do_discard_tail(self, state: FlowState) -> Optional[Packet]:
        packet = state.queue.pop()
        self._discarded.add(packet.uid)
        # Re-chain future arrivals off the new tail so no virtual-time
        # gap is left where the discarded packet sat.
        tail = state.queue[-1] if state.queue else None
        state.last_finish = tail.finish_tag if tail is not None else packet.start_tag
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        while self._heap and self._heap[0][2] in self._discarded:
            self._discarded.discard(heapq.heappop(self._heap)[2])
        return self._heap[0][3] if self._heap else None

    @property
    def virtual_time(self) -> float:
        """Current system virtual time ``v(t)``."""
        return self.v
