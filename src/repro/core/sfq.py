"""Start-time Fair Queuing (SFQ) — the paper's contribution (Section 2).

Algorithm (paper, Section 2):

1. On arrival, packet :math:`p_f^j` is stamped with start tag

   .. math:: S(p_f^j) = \\max\\{v(A(p_f^j)),\\; F(p_f^{j-1})\\}

   where the finish tag is :math:`F(p_f^j) = S(p_f^j) + l_f^j / r_f^j`
   with :math:`F(p_f^0) = 0`. The generalized algorithm of Section 2.3
   allows a per-packet rate :math:`r_f^j` (eq. 36); by default the flow
   weight is used.

2. ``v(t)`` is 0 initially; during a busy period it equals the start tag
   of the packet in service; at the end of a busy period it is set to the
   maximum finish tag assigned to any packet serviced by then.

3. Packets are serviced in increasing order of start tags; ties are
   broken by a configurable rule (Section 2.3 notes some rules are more
   desirable than others).

Properties reproduced by the test/bench suite:

* fairness: :math:`|W_f/r_f - W_m/r_m| \\le l_f^{max}/r_f + l_m^{max}/r_m`
  for any interval where both flows are backlogged (Theorem 1), on *any*
  server, including variable-rate ones;
* throughput guarantee on FC/EBF servers (Theorems 2–3);
* delay guarantee :math:`L(p) \\le EAT(p) + \\sum_{n \\ne f} l_n^{max}/C +
  l_f^j/C + \\delta(C)/C` (Theorems 4–5);
* :math:`O(\\log Q)` per-packet cost — realized by the flow-head heap
  under the PIFO engine, which keeps per-packet work logarithmic in
  *backlogged flows*, not total backlog.

The discipline itself lives in :class:`repro.core.pifo.SfqRank`; this
class is a deprecation shim kept so ``isinstance`` checks and
subclassing (e.g. chaos fixtures) continue to work. Construct through
``repro.make_scheduler("SFQ", ...)``.
"""

from __future__ import annotations

from repro.core.base import TieBreak
from repro.core.headheap import TieBreakRule
from repro.core.pifo import PifoScheduler, SfqRank, warn_direct_construction

__all__ = ["SFQ"]


class SFQ(PifoScheduler):
    """Start-time Fair Queuing (deprecation shim over the PIFO engine).

    Parameters
    ----------
    tie_break:
        Secondary sort key for packets with equal start tags; one of the
        rules in :class:`repro.core.base.TieBreak` or any callable
        ``(FlowState, Packet) -> tuple``.
    debug_checks:
        When True, re-verify the flow-head-heap invariant on every
        dequeue (raising :class:`~repro.core.base.SchedulerError` on
        corruption). Off by default — the invariant is structural and
        exercised by the trace-equivalence suite.
    """

    __slots__ = ()

    algorithm = "SFQ"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(SFQ, type(self))
        super().__init__(
            SfqRank(),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
