"""Per-flow scheduler state.

Every scheduler in the library keeps one :class:`FlowState` per flow: the
flow's weight (interpreted as its rate :math:`r_f` in bits/s, Section
2.2), the finish tag of the last *arrived* packet (for the tag chain of
eq. 4), the FIFO backlog of queued packets, and service accounting used
by the fairness analysis.

Two hot-path caches live here as well:

* ``inv_weight`` — the precomputed :math:`1/r_f`, kept in sync with
  ``weight`` by a property setter. Consumers that tolerate reciprocal
  rounding (e.g. the fairness monitor's normalized-service accounting,
  whose bound checks carry explicit slack) multiply by it instead of
  dividing per packet. Tag computation deliberately does *not* use it:
  ``l * (1/r)`` and ``l / r`` differ in ulps for non-dyadic rates, and
  the trace-equivalence suite requires schedules byte-identical to the
  seed core's;
* ``heap_entry`` / ``tie_keys`` — scratch used by
  :class:`repro.core.headheap.HeadHeapScheduler` to track this flow's
  entry in the flow-head heap.

The expected-arrival-time (EAT) tracker of eq. 37 also lives here since
Virtual Clock, Delay EDD and the delay-bound analysis all need it:

.. math::

   EAT(p_f^j) = \\max\\{A(p_f^j),\\; EAT(p_f^{j-1}) + l_f^{j-1}/r_f^{j-1}\\}
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Hashable, List, Optional, Tuple

from repro.core.packet import Packet
from repro.core.tagmath import eat_step


class EATTracker:
    """Incremental expected-arrival-time computation (eq. 37)."""

    __slots__ = ("_prev_eat", "_prev_service")

    def __init__(self) -> None:
        self._prev_eat = float("-inf")
        self._prev_service = 0.0

    def on_arrival(self, arrival: float, length: int, rate: float) -> float:
        """Record packet arrival; return its EAT.

        ``rate`` is the rate assigned to this packet (:math:`r_f^j`).
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        # The recursion itself is shared with the slab backend via
        # repro.core.tagmath (see its module docstring).
        eat, service = eat_step(
            arrival, self._prev_eat, self._prev_service, length, rate
        )
        self._prev_eat = eat
        self._prev_service = service
        return eat

    def reset(self) -> None:
        self._prev_eat = float("-inf")
        self._prev_service = 0.0


class FlowState:
    """State a scheduler keeps for one flow."""

    __slots__ = (
        "flow_id",
        "_weight",
        "inv_weight",
        "queue",
        "last_finish",
        "max_length_seen",
        "bits_enqueued",
        "bits_served",
        "packets_served",
        "eat",
        "user",
        "heap_entry",
        "tie_keys",
    )

    def __init__(self, flow_id: Hashable, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"flow weight must be positive, got {weight}")
        self.flow_id = flow_id
        self._weight = float(weight)
        self.inv_weight = 1.0 / self._weight
        self.queue: Deque[Packet] = deque()
        # Finish tag of the last arrived packet: F(p_f^0) = 0 per the paper.
        self.last_finish = 0.0
        self.max_length_seen = 0
        self.bits_enqueued = 0
        self.bits_served = 0
        self.packets_served = 0
        self.eat = EATTracker()
        self.user: Optional[object] = None  # scheduler-specific scratch
        #: Live flow-head heap entry (HeadHeapScheduler scratch), or None.
        self.heap_entry: Optional[List[Any]] = None
        #: Parallel deque of tie-break keys (non-FIFO tie rules only).
        self.tie_keys: Optional[Deque[Tuple[Any, ...]]] = None

    @property
    def weight(self) -> float:
        """Flow rate :math:`r_f` (bits/s); assignment refreshes ``inv_weight``."""
        return self._weight

    @weight.setter
    def weight(self, value: float) -> None:
        value = float(value)
        if value <= 0:
            raise ValueError(f"flow weight must be positive, got {value}")
        self._weight = value
        self.inv_weight = 1.0 / value

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def push(self, packet: Packet) -> None:
        self.queue.append(packet)
        self.bits_enqueued += packet.length
        if packet.length > self.max_length_seen:
            self.max_length_seen = packet.length

    def pop(self) -> Packet:
        return self.queue.popleft()

    def head(self) -> Optional[Packet]:
        return self.queue[0] if self.queue else None

    @property
    def backlogged(self) -> bool:
        return bool(self.queue)

    @property
    def backlog_bits(self) -> int:
        return sum(p.length for p in self.queue)

    @property
    def backlog_packets(self) -> int:
        return len(self.queue)

    def packet_rate(self, packet: Packet) -> float:
        """Rate assigned to ``packet``: its own rate or the flow weight."""
        return packet.rate if packet.rate is not None else self._weight

    def eat_on_arrival(self, arrival: float, length: int, rate: float) -> float:
        """Incremental expected-arrival-time step (eq. 37) for this flow."""
        return self.eat.on_arrival(arrival, length, rate)

    def record_service(self, packet: Packet) -> None:
        self.bits_served += packet.length
        self.packets_served += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowState({self.flow_id!r}, w={self._weight:.9g}, "
            f"backlog={len(self.queue)}p, F_prev={self.last_finish:.9g})"
        )
