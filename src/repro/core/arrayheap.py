"""Array-backed tag schedulers: the flow-head heap over a FlowSlab.

This is the performance twin of :mod:`repro.core.headheap`. The object
backend keeps one :class:`~repro.core.flow.FlowState` per flow and heap
entries that point at those objects; here per-flow state lives in the
parallel arrays of :class:`~repro.core.slab.FlowSlab` and heap entries
carry a plain ``int`` slot instead of an object reference:

``[key, tie_key, uid, packet, slot]``

The heap *ordering* is unchanged — comparisons stop at
``(key, tie_key, uid)`` exactly as in the object backend, and every tag
is computed with the same expressions on the same C doubles
(``array('d')`` stores exact binary64 values), so the service order is
byte-identical. The trace-equivalence suite runs every workload on both
backends and asserts identical traces; ``make_scheduler(...,
backend="array")`` selects this implementation, ``backend="object"``
the reference one.

What the layout buys at scale (the ISSUE's 10^6-flow target):

* flow registration is an array append / free-slot pop — no object
  allocation, no ``__init__`` dispatch, and churned flows recycle their
  slot (and its deque) through the slab free list;
* numeric per-flow state is 9 × 8 bytes in contiguous buffers instead
  of a ~500-byte boxed object graph, so million-flow slabs fit hot in
  cache and the resident footprint stays tens of MB;
* the hot enqueue/dequeue paths index arrays (``last_finish[slot]``)
  rather than chasing ``state`` attribute pointers.

External consumers never see slots: ``scheduler.flows`` is a
:class:`~repro.core.slab.SlabFlowMapping` yielding on-demand
:class:`~repro.core.slab.FlowView` proxies with the ``FlowState``
attribute surface (weight, inv_weight, backlog, counters), which is all
the fault monitors and experiments touch.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Hashable, Iterable, List, Optional, Tuple

from repro.core.base import Scheduler, SchedulerError, TieBreak
from repro.core.headheap import TieBreakRule
from repro.core.packet import Packet
from repro.core.pifo import (
    DelayEddRank,
    FqsRank,
    LstfRank,
    RankFn,
    ScfqRank,
    SfqRank,
    VcRank,
    Wf2qRank,
    WfqRank,
    warn_direct_construction,
)
from repro.core.slab import FlowSlab, FlowView, SlabFlowMapping

#: 5-slot mutable heap entry ``[key, tie_key, uid, packet, slot]``;
#: ``entry[3] is None`` marks lazy invalidation (same protocol as the
#: object backend, with an int slot where it kept a FlowState).
SlotHeapEntry = List[Any]

__all__ = [
    "ArrayHeadHeapScheduler",
    "ArrayPifoScheduler",
    "ArraySFQ",
    "ArraySCFQ",
    "ArrayWFQ",
    "ArrayFQS",
    "ArrayWF2Q",
    "ArrayVirtualClock",
    "ArrayDelayEDD",
    "ArrayLSTF",
]


class ArrayHeadHeapScheduler(Scheduler):
    """Flow-head heap scheduler over slab-resident per-flow state.

    Subclasses implement the slot-indexed hooks:

    ``_tag_packet_slot(slot, packet, now) -> float``
        Stamp the packet's tags (arrival-time work) and return the
        scalar scheduling key.
    ``_head_key(packet) -> float``
        Read the scheduling key back off an already-tagged packet.
    ``_on_dequeued_slot(slot, packet)``
        Optional virtual-time bookkeeping once a packet is selected.
    """

    __slots__ = ("_slab", "_tie_break", "_fifo_ties", "_head_heap", "debug_checks")

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._slab = FlowSlab()
        # ``flows`` is the public mapping; rebind the dict the base class
        # installed to the slab-backed view (same attribute surface).
        self.flows = SlabFlowMapping(self._slab)  # type: ignore[assignment]
        self._tie_break = tie_break
        self._fifo_ties = tie_break is TieBreak.fifo
        self._head_heap: List[SlotHeapEntry] = []
        self.debug_checks = bool(debug_checks)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _tag_packet_slot(self, slot: int, packet: Packet, now: float) -> float:
        """Stamp tags on an arriving packet; return its scheduling key."""
        raise NotImplementedError

    def _head_key(self, packet: Packet) -> float:
        """Scheduling key of an already-tagged packet."""
        raise NotImplementedError

    def _on_dequeued_slot(self, slot: int, packet: Packet) -> None:
        """Virtual-time bookkeeping hook; default no-op."""

    # ------------------------------------------------------------------
    # Flow management (slab-backed overrides of the dict-based base)
    # ------------------------------------------------------------------
    def add_flow(self, flow_id: Hashable, weight: float = 1.0) -> FlowView:
        """Register ``flow_id``; returns a :class:`FlowView` proxy."""
        slab = self._slab
        if flow_id in slab.index:
            raise SchedulerError(f"flow {flow_id!r} already registered")
        try:
            slot = slab.alloc(flow_id, weight)
        except ValueError as exc:
            raise SchedulerError(str(exc)) from exc
        return FlowView(slab, slot)

    def remove_flow(self, flow_id: Hashable) -> None:
        """Unregister an idle flow; its slot returns to the free list."""
        slab = self._slab
        slot = slab.index.get(flow_id)
        if slot is None:
            raise SchedulerError(f"flow {flow_id!r} not registered")
        if slab.queues[slot]:
            raise SchedulerError(f"cannot remove backlogged flow {flow_id!r}")
        slab.release(slot)

    def set_weight(self, flow_id: Hashable, weight: float) -> None:
        """Change a flow's weight; applies to subsequently arriving packets."""
        if weight <= 0:
            raise SchedulerError(f"weight must be positive, got {weight}")
        slab = self._slab
        slab.set_weight(self._slot(flow_id), float(weight))

    def _slot(self, flow_id: Hashable) -> int:
        slot = self._slab.index.get(flow_id)
        if slot is None:
            if not self.auto_register:
                raise SchedulerError(f"unknown flow {flow_id!r}")
            slot = self._slab.alloc(flow_id, self.default_weight)
        return slot

    # ------------------------------------------------------------------
    # Queueing protocol (slot-indexed fast paths)
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> None:  # lint: hot
        """Accept ``packet`` arriving at time ``now``."""
        slot = self._slab.index.get(packet.flow)
        if slot is None:
            slot = self._slot(packet.flow)
        packet.arrival = now
        length = packet.length
        self._backlog_packets += 1
        self._backlog_bits += length
        key = self._tag_packet_slot(slot, packet, now)
        slab = self._slab
        queue = slab.queues[slot]
        queue.append(packet)
        slab.bits_enqueued[slot] += length
        if length > slab.max_length_seen[slot]:
            slab.max_length_seen[slot] = length
        if self._fifo_ties:
            tie: Tuple[Any, ...] = ()
        else:
            tie = self._tie_break(FlowView(slab, slot), packet)
            keys = slab.tie_keys[slot]
            if keys is None:
                keys = slab.tie_keys[slot] = deque()
            keys.append(tie)
        if len(queue) == 1:
            # The flow just became backlogged: its head enters the heap.
            entry: SlotHeapEntry = [key, tie, packet.uid, packet, slot]
            slab.entries[slot] = entry
            _heappush(self._head_heap, entry)

    def dequeue(self, now: float) -> Optional[Packet]:  # lint: hot
        """Select the next packet for transmission; ``None`` when empty.

        The generic pop-min path is inlined here (one frame instead of
        dispatching through ``_do_dequeue``); subclasses that need a
        different selection rule (WF2Q's eligibility scan) override
        :meth:`dequeue` wholesale with the same bookkeeping tail.
        """
        heap = self._head_heap
        while heap:
            entry = _heappop(heap)
            if entry[3] is not None:
                packet = self._consume_entry(entry)
                self._on_dequeued_slot(entry[4], packet)
                self._backlog_packets -= 1
                self._backlog_bits -= packet.length
                self.in_service = packet
                return packet
        return None

    def _pop_min_entry(self) -> Optional[SlotHeapEntry]:
        """Pop the live minimum entry, purging invalidated ones."""
        heap = self._head_heap
        while heap:
            entry = _heappop(heap)
            if entry[3] is not None:
                return entry
        return None

    def _consume_entry(self, entry: SlotHeapEntry) -> Packet:
        """Dequeue the entry's packet and re-offer the flow's next head.

        Also charges the per-flow served counters — the entry carries
        the slot, so doing it here saves ``dequeue`` a flow-id dict
        lookup per packet.
        """
        packet: Packet = entry[3]
        slot: int = entry[4]
        slab = self._slab
        slab.entries[slot] = None
        length = packet.length
        slab.bits_served[slot] += length
        slab.packets_served[slot] += 1
        queue = slab.queues[slot]
        head = queue.popleft()
        if self.debug_checks and head is not packet:
            raise SchedulerError(
                f"{self.algorithm} internal error: flow {slab.ids[slot]!r} "
                "FIFO head diverged from its head-heap entry"
            )
        if self._fifo_ties:
            if queue:
                nxt = queue[0]
                fresh: SlotHeapEntry = [self._head_key(nxt), (), nxt.uid, nxt, slot]
                slab.entries[slot] = fresh
                _heappush(self._head_heap, fresh)
        else:
            keys = slab.tie_keys[slot]
            assert keys is not None  # non-FIFO enqueue always fills it
            keys.popleft()
            if queue:
                nxt = queue[0]
                fresh = [self._head_key(nxt), keys[0], nxt.uid, nxt, slot]
                slab.entries[slot] = fresh
                _heappush(self._head_heap, fresh)
        return packet

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        # Same selection as the inlined ``dequeue`` fast path; only the
        # WF2Q override (reached via its own ``dequeue``) diverges.
        heap = self._head_heap
        while heap:
            entry = _heappop(heap)
            if entry[3] is not None:
                packet = self._consume_entry(entry)
                self._on_dequeued_slot(entry[4], packet)
                return packet
        return None

    def peek(self, now: float) -> Optional[Packet]:
        """Packet the next ``dequeue`` would return (no side effects)."""
        heap = self._head_heap
        while heap and heap[0][3] is None:
            _heappop(heap)
        return heap[0][3] if heap else None

    # ------------------------------------------------------------------
    # discard_tail support (O(1))
    # ------------------------------------------------------------------
    def discard_tail(self, flow_id: Hashable) -> Optional[Packet]:
        """Remove and return the youngest queued packet of ``flow_id``."""
        slab = self._slab
        slot = slab.index.get(flow_id)
        if slot is None or not slab.queues[slot]:
            return None
        packet = self._do_discard_tail_slot(slot)
        if packet is not None:
            self._backlog_packets -= 1
            self._backlog_bits -= packet.length
        return packet

    def _do_discard_tail_slot(self, slot: int) -> Optional[Packet]:
        raise NotImplementedError(
            f"{self.algorithm} does not support discard_tail(); use "
            "drop-tail buffering with it"
        )

    def _pop_tail(self, slot: int) -> Packet:
        """Remove a flow's FIFO tail; invalidate its entry if now empty."""
        slab = self._slab
        queue = slab.queues[slot]
        packet = queue.pop()
        keys = slab.tie_keys[slot]
        if not self._fifo_ties and keys:
            keys.pop()
        if not queue:
            entry = slab.entries[slot]
            if entry is not None:
                entry[3] = None
                entry[4] = None
                slab.entries[slot] = None
        return packet

    # ------------------------------------------------------------------
    # Introspection (slab-backed overrides)
    # ------------------------------------------------------------------
    def backlogged_flows(self) -> List[Hashable]:
        slab = self._slab
        return [fid for fid, slot in slab.index.items() if slab.queues[slot]]

    def flow_backlog(self, flow_id: Hashable) -> int:
        slab = self._slab
        slot = slab.index.get(flow_id)
        return len(slab.queues[slot]) if slot is not None else 0

    def total_weight(self, backlogged_only: bool = False) -> float:
        slab = self._slab
        slots: Iterable[int] = slab.index.values()
        if backlogged_only:
            slots = (s for s in slots if slab.queues[s])
        return sum(slab.weight[s] for s in slots)

    @property
    def slab(self) -> FlowSlab:
        """The backing :class:`FlowSlab` (tests and experiments only)."""
        return self._slab

    # The abstract pair is satisfied for the ABC; the array backend
    # replaces enqueue()/dequeue() wholesale with slot-indexed paths, so
    # the state-object entry point must never be reached.
    def _do_enqueue(self, state: Any, packet: Packet, now: float) -> None:
        raise SchedulerError(
            f"{self.algorithm}[array] uses slot-indexed enqueue; "
            "_do_enqueue(state, ...) is not part of this backend"
        )


class ArrayPifoScheduler(ArrayHeadHeapScheduler):
    """Slab-backed PIFO engine driven by a :class:`~repro.core.pifo.RankFn`.

    The performance twin of :class:`repro.core.pifo.PifoScheduler`: the
    same rank function drives both backends through the shared
    :class:`~repro.core.pifo.RankFlow` surface — here a cached
    :class:`~repro.core.slab.FlowView` per slot, so the per-packet rank
    call costs no allocation. Tag math therefore runs expression-for-
    expression identically on both backends (gated by the
    trace-equivalence suite).
    """

    __slots__ = ("_rank", "_eligibility", "_rank_ties", "_pending_tie", "_views")

    algorithm = "PIFO"

    def __init__(
        self,
        rank_fn: RankFn,
        *,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
        self._rank = rank_fn
        self._eligibility = bool(rank_fn.eligibility)
        self._rank_ties = bool(rank_fn.provides_tie)
        self._pending_tie: Tuple[Any, ...] = ()
        if self._rank_ties:
            self._fifo_ties = False
            self._tie_break = self._rank_tie
        #: slot -> cached FlowView; views read through the slab, so a
        #: recycled slot's view is automatically current.
        self._views: List[FlowView] = []
        rank_fn.bind(self)

    @property
    def rank_fn(self) -> RankFn:
        """The rank function driving this engine."""
        return self._rank

    def _rank_tie(self, state: Any, packet: Packet) -> Tuple[Any, ...]:
        # Tie produced by the rank function during rank() (arrival).
        return self._pending_tie

    def _view(self, slot: int) -> FlowView:
        views = self._views
        n = len(views)
        if slot >= n:
            slab = self._slab
            views.extend(FlowView(slab, s) for s in range(n, slot + 1))
        return views[slot]

    def __getattr__(self, name: str) -> Any:
        # Forward the rank's exported state (scheduler.virtual_time,
        # .gps, .deadlines, ...); see PifoScheduler.__getattr__.
        try:
            rank = object.__getattribute__(self, "_rank")
        except AttributeError:
            raise AttributeError(name) from None
        if name in rank.exports:
            return getattr(rank, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    # ArrayHeadHeapScheduler hooks, delegated to the rank function
    # ------------------------------------------------------------------
    def _tag_packet_slot(self, slot: int, packet: Packet, now: float) -> float:
        key, tie = self._rank.rank(self._view(slot), packet, now)
        if self._rank_ties:
            self._pending_tie = tie
        return key

    def _head_key(self, packet: Packet) -> float:
        return self._rank.head_key(packet)

    def _on_dequeued_slot(self, slot: int, packet: Packet) -> None:
        self._rank.on_dequeue(self._view(slot), packet)

    def on_service_complete(self, packet: Packet, now: float) -> None:
        """Base dispatch flattened into one frame (hot path)."""
        if self.in_service is packet:
            self.in_service = None
        if self._backlog_packets == 0:
            self._rank.on_idle()

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        # Unreached (on_service_complete is overridden); kept so the
        # subclass still satisfies the template-method contract.
        if self._backlog_packets == 0:
            self._rank.on_idle()

    def _do_discard_tail_slot(self, slot: int) -> Optional[Packet]:
        if not self._rank.supports_discard:
            return super()._do_discard_tail_slot(slot)  # raises, naming the algorithm
        packet = self._pop_tail(slot)
        self._rank.on_discard(self._view(slot), packet)
        return packet

    # ------------------------------------------------------------------
    # Eligibility-gated selection (WF²Q)
    # ------------------------------------------------------------------
    def dequeue(self, now: float) -> Optional[Packet]:  # lint: hot
        """Select the next packet for transmission; ``None`` when empty."""
        if self._eligibility:
            packet = self._do_dequeue(now)
            if packet is not None:
                self._backlog_packets -= 1
                self._backlog_bits -= packet.length
                self.in_service = packet
            return packet
        heap = self._head_heap
        while heap:
            entry = _heappop(heap)
            if entry[3] is not None:
                packet = self._consume_entry(entry)
                self._rank.on_dequeue(self._view(entry[4]), packet)
                self._backlog_packets -= 1
                self._backlog_bits -= packet.length
                self.in_service = packet
                return packet
        return None

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        if not self._eligibility:
            return super()._do_dequeue(now)
        heap = self._head_heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        v = self._rank.advance(now)
        # Pop ineligible flow heads aside until an eligible one surfaces.
        shelved: List[SlotHeapEntry] = []
        chosen: Optional[SlotHeapEntry] = None
        while heap:
            entry = heapq.heappop(heap)
            packet = entry[3]
            if packet is None:
                continue
            if packet.start_tag is not None and packet.start_tag <= v + 1e-12:
                chosen = entry
                break
            shelved.append(entry)
        if chosen is None:
            # Work-conserving fallback: smallest start tag, ties by uid.
            chosen = min(shelved, key=lambda e: (e[3].start_tag, e[2]))
            for entry in shelved:
                if entry is not chosen:
                    heapq.heappush(heap, entry)
        else:
            for entry in shelved:
                heapq.heappush(heap, entry)
        return self._consume_entry(chosen)

    def peek(self, now: float) -> Optional[Packet]:
        """Packet the next ``dequeue`` would return (no side effects)."""
        if not self._eligibility:
            return super().peek(now)
        heap = self._head_heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        v = self._rank.advance(now)
        live = [e for e in heap if e[3] is not None]
        eligible = [e for e in live if e[3].start_tag <= v + 1e-12]
        if eligible:
            return min(eligible, key=lambda e: (e[3].finish_tag, e[2]))[3]
        return min(live, key=lambda e: (e[3].start_tag, e[2]))[3]


# ----------------------------------------------------------------------
# Deprecation shims: the named slab-backed disciplines
# ----------------------------------------------------------------------


class ArraySFQ(ArrayPifoScheduler):
    """Start-time Fair Queuing on the slab layout (deprecation shim)."""

    __slots__ = ()

    algorithm = "SFQ"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(ArraySFQ, type(self))
        super().__init__(
            SfqRank(),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )


class ArraySCFQ(ArrayPifoScheduler):
    """Self-Clocked Fair Queuing on the slab layout (deprecation shim)."""

    __slots__ = ()

    algorithm = "SCFQ"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(ArraySCFQ, type(self))
        super().__init__(
            ScfqRank(),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )


class ArrayWFQ(ArrayPifoScheduler):
    """Weighted Fair Queuing on the slab layout (deprecation shim)."""

    __slots__ = ()

    algorithm = "WFQ"

    def __init__(
        self,
        assumed_capacity: float,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(ArrayWFQ, type(self))
        super().__init__(
            WfqRank(assumed_capacity),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )


class ArrayFQS(ArrayPifoScheduler):
    """Fair Queuing based on Start-time on the slab layout (shim)."""

    __slots__ = ()

    algorithm = "FQS"

    def __init__(
        self,
        assumed_capacity: float,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(ArrayFQS, type(self))
        super().__init__(
            FqsRank(assumed_capacity),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )


class ArrayWF2Q(ArrayPifoScheduler):
    """Worst-case Fair WFQ on the slab layout (deprecation shim)."""

    __slots__ = ()

    algorithm = "WF2Q"

    def __init__(
        self,
        assumed_capacity: float,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(ArrayWF2Q, type(self))
        super().__init__(
            Wf2qRank(assumed_capacity),
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )


class ArrayVirtualClock(ArrayPifoScheduler):
    """Virtual Clock on the slab layout (deprecation shim)."""

    __slots__ = ()

    algorithm = "VirtualClock"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(ArrayVirtualClock, type(self))
        super().__init__(
            VcRank(),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )


class ArrayDelayEDD(ArrayPifoScheduler):
    """Delay Earliest-Due-Date on the slab layout.

    New with the PIFO core: the EAT recursion (eq. 37) already lives in
    slab columns, so DelayEDD's rank function runs unmodified over
    :class:`~repro.core.slab.FlowView`. Flows must be registered with
    ``add_flow_with_deadline`` (forwarded from the rank).
    """

    __slots__ = ()

    algorithm = "DelayEDD"

    def __init__(
        self,
        auto_register: bool = False,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(ArrayDelayEDD, type(self))
        super().__init__(
            DelayEddRank(),
            tie_break=TieBreak.fifo,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )


class ArrayLSTF(ArrayPifoScheduler):
    """Least Slack Time First on the slab layout."""

    __slots__ = ()

    algorithm = "LSTF"

    def __init__(
        self,
        default_slack: float = 0.01,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(
            LstfRank(default_slack),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
