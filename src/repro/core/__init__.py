"""Packet schedulers: the paper's SFQ plus every algorithm it compares.

The primary contribution is :class:`repro.core.sfq.SFQ`. Baselines:
WFQ/PGPS, FQS, SCFQ, DRR, WRR, Virtual Clock, Delay EDD, FIFO, and the
Fair Airport composite of Appendix B. :class:`HierarchicalScheduler`
implements Section 3's link-sharing tree over any of them.

Since the PIFO core, the tag disciplines are rank functions
(:mod:`repro.core.pifo`) on two shared engines —
:class:`~repro.core.pifo.PifoScheduler` (object backend) and
:class:`~repro.core.arrayheap.ArrayPifoScheduler` (slab backend) — plus
the :class:`~repro.core.pifo.SpPifoScheduler` band approximation. The
named discipline classes remain importable as deprecation shims;
construct through :func:`make_scheduler`.
"""

from repro.core.arrayheap import (
    ArrayDelayEDD,
    ArrayFQS,
    ArrayHeadHeapScheduler,
    ArrayLSTF,
    ArrayPifoScheduler,
    ArraySCFQ,
    ArraySFQ,
    ArrayVirtualClock,
    ArrayWF2Q,
    ArrayWFQ,
)
from repro.core.base import Scheduler, SchedulerError, TieBreak
from repro.core.delay_edd import DelayEDD
from repro.core.drr import DRR, WRR
from repro.core.fair_airport import FairAirport
from repro.core.fifo import FIFO
from repro.core.flow import EATTracker, FlowState
from repro.core.gps import GPSVirtualClock
from repro.core.headheap import HeadHeapScheduler
from repro.core.hierarchical import HierarchicalScheduler, SchedClass
from repro.core.jitter_edd import JitterEDD
from repro.core.packet import Packet, bits, kbps, mbps
from repro.core.pifo import (
    LSTF,
    DelayEddRank,
    FqsRank,
    LstfRank,
    PifoScheduler,
    RankFlow,
    RankFn,
    ScfqRank,
    SfqRank,
    SpPifoScheduler,
    VcRank,
    Wf2qRank,
    WfqRank,
)
from repro.core.registry import (
    ParamSpec,
    SchedulerSpec,
    available_schedulers,
    default_backend,
    describe_scheduler,
    list_schedulers,
    make_scheduler,
    register_scheduler,
    scheduler_spec,
    set_default_backend,
)
from repro.core.slab import FlowSlab, FlowView, SlabFlowMapping
from repro.core.scfq import SCFQ
from repro.core.sfq import SFQ
from repro.core.virtual_clock import VirtualClock
from repro.core.wf2q import WF2Q
from repro.core.wfq import FQS, WFQ

__all__ = [
    "Scheduler",
    "SchedulerError",
    "TieBreak",
    "Packet",
    "FlowState",
    "EATTracker",
    "GPSVirtualClock",
    "HeadHeapScheduler",
    "SFQ",
    "SCFQ",
    "WFQ",
    "FQS",
    "WF2Q",
    "DRR",
    "WRR",
    "FIFO",
    "VirtualClock",
    "DelayEDD",
    "JitterEDD",
    "FairAirport",
    "LSTF",
    "HierarchicalScheduler",
    "SchedClass",
    "bits",
    "kbps",
    "mbps",
    # PIFO core (repro.core.pifo)
    "PifoScheduler",
    "SpPifoScheduler",
    "RankFn",
    "RankFlow",
    "SfqRank",
    "ScfqRank",
    "WfqRank",
    "FqsRank",
    "Wf2qRank",
    "VcRank",
    "DelayEddRank",
    "LstfRank",
    # construction API (repro.core.registry)
    "make_scheduler",
    "available_schedulers",
    "list_schedulers",
    "describe_scheduler",
    "scheduler_spec",
    "register_scheduler",
    "SchedulerSpec",
    "ParamSpec",
    "default_backend",
    "set_default_backend",
    # array backend (repro.core.slab / repro.core.arrayheap)
    "FlowSlab",
    "FlowView",
    "SlabFlowMapping",
    "ArrayHeadHeapScheduler",
    "ArrayPifoScheduler",
    "ArraySFQ",
    "ArraySCFQ",
    "ArrayWFQ",
    "ArrayFQS",
    "ArrayWF2Q",
    "ArrayVirtualClock",
    "ArrayDelayEDD",
    "ArrayLSTF",
]

#: Back-compat name->class map. Prefer :func:`make_scheduler`, which
#: also validates parameters and handles ``assumed_capacity``.
ALGORITHMS = {
    "SFQ": SFQ,
    "SCFQ": SCFQ,
    "WFQ": WFQ,
    "FQS": FQS,
    "WF2Q": WF2Q,
    "DRR": DRR,
    "WRR": WRR,
    "FIFO": FIFO,
    "VirtualClock": VirtualClock,
    "DelayEDD": DelayEDD,
    "JitterEDD": JitterEDD,
    "FairAirport": FairAirport,
    "LSTF": LSTF,
}
