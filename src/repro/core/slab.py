"""Struct-of-arrays per-flow scheduler state (the million-flow layout).

The object backend keeps one :class:`repro.core.flow.FlowState` per flow
— a Python object with a dozen boxed attributes. At a few thousand flows
that is fine; at the paper's headline scale (Section 4 imagines *every
user* of a large network holding a flow) the object graph dominates:
~500 bytes and several pointer hops per flow, plus allocator churn every
time :class:`repro.faults.FlowChurn` cycles a flow.

This module stores the same state as a **slab of parallel arrays**
indexed by a dense integer *slot*:

* numeric columns live in ``array('d')`` / ``array('q')`` buffers —
  8 bytes per flow per column, contiguous, no per-flow boxing. Reading
  a ``'d'`` column yields the exact same Python float the object
  backend would hold, so tag arithmetic is bit-identical;
* per-flow FIFOs stay real ``deque`` objects (packets are objects), but
  they are allocated once per slot and *recycled* with the slot;
* a LIFO free list recycles slots when flows leave, so long-running
  churn (join/leave cycles) keeps the slab bounded by the *peak
  concurrent* flow count instead of growing with total joins.

The slab itself is scheduler-agnostic: :mod:`repro.core.arrayheap`
builds the int-keyed flow-head heap on top of it, and
:class:`FlowView` / :class:`SlabFlowMapping` give external consumers
(fault monitors, experiments, ``link.scheduler.flows[fid].weight``)
the same attribute surface as :class:`~repro.core.flow.FlowState`
without resident per-flow objects — views are created on demand and
read or write the arrays directly.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.core.packet import Packet
from repro.core.tagmath import eat_step

__all__ = ["FlowSlab", "FlowView", "SlabFlowMapping"]

_NEG_INF = float("-inf")


class FlowSlab:
    """Parallel-array storage for per-flow scheduler state.

    Columns are indexed by *slot* — a dense integer handed out by
    :meth:`alloc` and recycled by :meth:`release` through a LIFO free
    list. ``index`` maps external flow ids to slots and preserves
    registration order (it is a dict), mirroring the object backend's
    ``flows`` dict iteration order.
    """

    __slots__ = (
        "index",
        "ids",
        "free",
        "weight",
        "inv_weight",
        "last_finish",
        "eat_prev",
        "eat_service",
        "bits_enqueued",
        "bits_served",
        "packets_served",
        "max_length_seen",
        "queues",
        "tie_keys",
        "entries",
    )

    def __init__(self) -> None:
        #: external flow id -> slot (registration order preserved).
        self.index: Dict[Hashable, int] = {}
        #: slot -> external flow id (``None`` marks a free slot).
        self.ids: List[Optional[Hashable]] = []
        #: recycled slots, reused LIFO by :meth:`alloc`.
        self.free: List[int] = []
        # -- numeric columns (8 bytes per flow each) ---------------------
        self.weight: "array[float]" = array("d")
        self.inv_weight: "array[float]" = array("d")
        #: finish tag of the flow's last arrived packet (eq. 4 chain).
        self.last_finish: "array[float]" = array("d")
        #: EAT recursion state (eq. 37): previous EAT and l/r of the
        #: previous packet.
        self.eat_prev: "array[float]" = array("d")
        self.eat_service: "array[float]" = array("d")
        self.bits_enqueued: "array[int]" = array("q")
        self.bits_served: "array[int]" = array("q")
        self.packets_served: "array[int]" = array("q")
        self.max_length_seen: "array[int]" = array("q")
        # -- object columns ----------------------------------------------
        #: per-flow FIFO backlog; allocated with the slot, recycled.
        self.queues: List[Deque[Packet]] = []
        #: parallel deque of tie-break keys (non-FIFO tie rules only).
        self.tie_keys: List[Optional[Deque[Tuple[Any, ...]]]] = []
        #: live flow-head heap entry for the slot, or ``None``.
        self.entries: List[Optional[List[Any]]] = []

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------
    def alloc(self, flow_id: Hashable, weight: float) -> int:
        """Register ``flow_id``; return its slot (recycling freed ones)."""
        if weight <= 0:
            raise ValueError(f"flow weight must be positive, got {weight}")
        if flow_id in self.index:
            raise ValueError(f"flow {flow_id!r} already registered")
        w = float(weight)
        if self.free:
            slot = self.free.pop()
            self.ids[slot] = flow_id
            self.weight[slot] = w
            self.inv_weight[slot] = 1.0 / w
            self.last_finish[slot] = 0.0
            self.eat_prev[slot] = _NEG_INF
            self.eat_service[slot] = 0.0
            self.bits_enqueued[slot] = 0
            self.bits_served[slot] = 0
            self.packets_served[slot] = 0
            self.max_length_seen[slot] = 0
            # queue was drained before release; tie_keys/entries cleared.
        else:
            slot = len(self.ids)
            self.ids.append(flow_id)
            self.weight.append(w)
            self.inv_weight.append(1.0 / w)
            self.last_finish.append(0.0)
            self.eat_prev.append(_NEG_INF)
            self.eat_service.append(0.0)
            self.bits_enqueued.append(0)
            self.bits_served.append(0)
            self.packets_served.append(0)
            self.max_length_seen.append(0)
            self.queues.append(deque())
            self.tie_keys.append(None)
            self.entries.append(None)
        self.index[flow_id] = slot
        return slot

    def release(self, slot: int) -> None:
        """Return ``slot`` to the free list (flow must be idle)."""
        flow_id = self.ids[slot]
        if flow_id is None:
            raise ValueError(f"slot {slot} is already free")
        if self.queues[slot]:
            raise ValueError(f"cannot release backlogged slot {slot}")
        del self.index[flow_id]
        self.ids[slot] = None
        keys = self.tie_keys[slot]
        if keys is not None:
            keys.clear()
        self.entries[slot] = None
        self.free.append(slot)

    def slot_of(self, flow_id: Hashable) -> Optional[int]:
        return self.index.get(flow_id)

    # ------------------------------------------------------------------
    # Per-slot operations
    # ------------------------------------------------------------------
    def set_weight(self, slot: int, weight: float) -> None:
        value = float(weight)
        if value <= 0:
            raise ValueError(f"flow weight must be positive, got {value}")
        self.weight[slot] = value
        self.inv_weight[slot] = 1.0 / value

    def eat_on_arrival(self, slot: int, arrival: float, length: int, rate: float) -> float:
        """Incremental expected-arrival-time step (eq. 37) for ``slot``."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        # Same max/divide chain as EATTracker.on_arrival, by
        # construction: both call repro.core.tagmath.eat_step.
        eat, service = eat_step(
            arrival, self.eat_prev[slot], self.eat_service[slot], length, rate
        )
        self.eat_prev[slot] = eat
        self.eat_service[slot] = service
        return eat

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live (registered) flows."""
        return len(self.index)

    @property
    def capacity(self) -> int:
        """Allocated slots, live + free — the slab's high-water mark."""
        return len(self.ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowSlab(live={len(self.index)}, capacity={len(self.ids)}, "
            f"free={len(self.free)})"
        )


class FlowView:
    """On-demand :class:`~repro.core.flow.FlowState`-compatible proxy.

    Reads and writes go straight to the slab columns; no per-flow state
    lives on the view itself, so views can be created, dropped and
    recreated freely. External consumers (monitors, experiments) use
    the same attribute names as ``FlowState``.
    """

    __slots__ = ("_slab", "_slot")

    def __init__(self, slab: FlowSlab, slot: int) -> None:
        self._slab = slab
        self._slot = slot

    @property
    def slot(self) -> int:
        """The dense integer slot backing this view."""
        return self._slot

    @property
    def flow_id(self) -> Hashable:
        return self._slab.ids[self._slot]

    @property
    def weight(self) -> float:
        return self._slab.weight[self._slot]

    @weight.setter
    def weight(self, value: float) -> None:
        self._slab.set_weight(self._slot, value)

    @property
    def inv_weight(self) -> float:
        return self._slab.inv_weight[self._slot]

    @property
    def last_finish(self) -> float:
        return self._slab.last_finish[self._slot]

    @last_finish.setter
    def last_finish(self, value: float) -> None:
        self._slab.last_finish[self._slot] = value

    @property
    def queue(self) -> Deque[Packet]:
        return self._slab.queues[self._slot]

    @property
    def backlogged(self) -> bool:
        return bool(self._slab.queues[self._slot])

    @property
    def backlog_packets(self) -> int:
        return len(self._slab.queues[self._slot])

    @property
    def backlog_bits(self) -> int:
        return sum(p.length for p in self._slab.queues[self._slot])

    @property
    def bits_enqueued(self) -> int:
        return self._slab.bits_enqueued[self._slot]

    @property
    def bits_served(self) -> int:
        return self._slab.bits_served[self._slot]

    @property
    def packets_served(self) -> int:
        return self._slab.packets_served[self._slot]

    @property
    def max_length_seen(self) -> int:
        return self._slab.max_length_seen[self._slot]

    def head(self) -> Optional[Packet]:
        queue = self._slab.queues[self._slot]
        return queue[0] if queue else None

    def packet_rate(self, packet: Packet) -> float:
        """Rate assigned to ``packet``: its own rate or the flow weight."""
        rate = packet.rate
        return self._slab.weight[self._slot] if rate is None else rate

    def eat_on_arrival(self, arrival: float, length: int, rate: float) -> float:
        """Incremental expected-arrival-time step (eq. 37) for this flow."""
        return self._slab.eat_on_arrival(self._slot, arrival, length, rate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowView({self.flow_id!r}, slot={self._slot}, "
            f"w={self.weight:.9g}, backlog={self.backlog_packets}p)"
        )


class SlabFlowMapping(Mapping[Hashable, FlowView]):
    """Read-only ``flows``-style mapping over a :class:`FlowSlab`.

    Iteration follows flow registration order (the slab's ``index``
    dict), matching the object backend's ``Dict[Hashable, FlowState]``
    semantics so code like ``for fid in scheduler.flows`` behaves
    identically on both backends.
    """

    __slots__ = ("_slab",)

    def __init__(self, slab: FlowSlab) -> None:
        self._slab = slab

    def __getitem__(self, flow_id: Hashable) -> FlowView:
        slot = self._slab.index.get(flow_id)
        if slot is None:
            raise KeyError(flow_id)
        return FlowView(self._slab, slot)

    def __contains__(self, flow_id: object) -> bool:
        return flow_id in self._slab.index

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._slab.index)

    def __len__(self) -> int:
        return len(self._slab.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlabFlowMapping({len(self)} flows)"
