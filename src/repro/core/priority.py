"""Strict-priority composition of schedulers.

Section 2.3 of the paper discusses a server that "services flows with
two priorities and uses SFQ to schedule the packets of lower priority
flows": the high-priority traffic makes the link look like a
variable-rate (FC or EBF) server to the low band. The Figure 1
experiment is built exactly this way — the VBR video flow rides the
high band while two TCP flows share the low band under WFQ or SFQ.

:class:`PriorityBands` composes any schedulers into strict,
non-preemptive priority bands: band 0 is always served before band 1,
and so on. Each flow is assigned to exactly one band.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.core.base import Scheduler, SchedulerError
from repro.core.flow import FlowState
from repro.core.packet import Packet


class PriorityBands(Scheduler):
    """Strict priority over a list of inner schedulers."""

    __slots__ = ("bands", "_flow_band", "_packet_band")

    algorithm = "PriorityBands"

    def __init__(self, bands: Sequence[Scheduler]) -> None:
        super().__init__(auto_register=False)
        if not bands:
            raise SchedulerError("need at least one band")
        self.bands: List[Scheduler] = list(bands)
        self._flow_band: Dict[Hashable, int] = {}
        self._packet_band: Dict[int, int] = {}

    def assign_flow(self, flow_id: Hashable, band: int, weight: float = 1.0) -> None:
        """Register ``flow_id`` in priority band ``band`` (0 = highest)."""
        if not 0 <= band < len(self.bands):
            raise SchedulerError(f"band {band} out of range")
        if flow_id in self._flow_band:
            raise SchedulerError(f"flow {flow_id!r} already assigned")
        self._flow_band[flow_id] = band
        self.bands[band].add_flow(flow_id, weight)

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> None:
        band = self._flow_band.get(packet.flow)
        if band is None:
            raise SchedulerError(f"flow {packet.flow!r} not assigned to a band")
        self._backlog_packets += 1
        self._backlog_bits += packet.length
        self.bands[band].enqueue(packet, now)

    def dequeue(self, now: float) -> Optional[Packet]:
        for idx, band in enumerate(self.bands):
            packet = band.dequeue(now)
            if packet is not None:
                self._backlog_packets -= 1
                self._backlog_bits -= packet.length
                self._packet_band[packet.uid] = idx
                self.in_service = packet
                return packet
        return None

    def on_service_complete(self, packet: Packet, now: float) -> None:
        if self.in_service is packet:
            self.in_service = None
        band = self._packet_band.pop(packet.uid, None)
        if band is not None:
            self.bands[band].on_service_complete(packet, now)

    def peek(self, now: float) -> Optional[Packet]:
        for band in self.bands:
            packet = band.peek(now)
            if packet is not None:
                return packet
        return None

    def flow_backlog(self, flow_id: Hashable) -> int:
        band = self._flow_band.get(flow_id)
        if band is None:
            return 0
        return self.bands[band].flow_backlog(flow_id)

    # The abstract hooks are bypassed by the overridden public methods.
    def _do_enqueue(
        self, state: FlowState, packet: Packet, now: float
    ) -> None:  # pragma: no cover
        raise NotImplementedError

    def _do_dequeue(self, now: float) -> Optional[Packet]:  # pragma: no cover
        raise NotImplementedError
