"""Packet model.

A :class:`Packet` is the unit of transmission (Section 1.2 of the paper).
Lengths are in **bits** and times in **seconds** throughout the library.
Schedulers annotate packets with their tags (start tag / finish tag /
timestamp / deadline) in dedicated slots so that traces can be inspected
after a run.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, Optional

_packet_ids = itertools.count()


class Packet:
    """A network packet.

    Parameters
    ----------
    flow:
        Flow identifier (any hashable). The paper calls the packet
        sequence of one source a *flow*.
    length:
        Packet length in bits.
    arrival:
        Arrival time at the current server, in seconds. Updated by each
        hop's ingress in multi-hop topologies.
    seqno:
        Per-flow sequence number (0-based).
    rate:
        Optional per-packet rate :math:`r_f^j` (bits/s) for the
        generalized SFQ of Section 2.3 (eq. 36). ``None`` means "use the
        flow's weight".
    """

    __slots__ = (
        "uid",
        "flow",
        "length",
        "arrival",
        "seqno",
        "rate",
        "created",
        "start_tag",
        "finish_tag",
        "timestamp",
        "deadline",
        "eligible_at",
        "_meta_dict",
    )

    def __init__(
        self,
        flow: Hashable,
        length: int,
        arrival: float = 0.0,
        seqno: int = 0,
        rate: Optional[float] = None,
    ) -> None:
        if length <= 0:
            raise ValueError(f"packet length must be positive, got {length}")
        self.uid = next(_packet_ids)
        self.flow = flow
        self.length = int(length)
        self.arrival = float(arrival)
        self.seqno = int(seqno)
        self.rate = rate
        self.created = float(arrival)
        # Scheduler annotations -------------------------------------------------
        self.start_tag: Optional[float] = None  # S(p) for SFQ/WFQ/FQS/SCFQ
        self.finish_tag: Optional[float] = None  # F(p)
        self.timestamp: Optional[float] = None  # Virtual Clock stamp
        self.deadline: Optional[float] = None  # Delay EDD deadline
        self.eligible_at: Optional[float] = None  # Fair Airport regulator release
        self._meta_dict: Optional[Dict[str, Any]] = None

    @property
    def meta(self) -> Dict[str, Any]:
        """Lazy free-form metadata dict (TCP segment info, hop counts...)."""
        if self._meta_dict is None:
            self._meta_dict = {}
        return self._meta_dict

    @property
    def length_bytes(self) -> float:
        return self.length / 8

    def fork(self) -> "Packet":
        """Copy for re-injection at the next hop (fresh tags, same payload)."""
        clone = Packet(self.flow, self.length, self.arrival, self.seqno, self.rate)
        clone.created = self.created
        if self._meta_dict:
            meta = dict(self._meta_dict)
            # Scheduler-internal scratch must not leak across hops.
            meta.pop("hier_path", None)
            clone._meta_dict = meta
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(flow={self.flow!r}, seq={self.seqno}, len={self.length}b, "
            f"arr={self.arrival:.9g})"
        )


def bits(nbytes: float) -> int:
    """Convert bytes to bits (convenience for paper parameters)."""
    return int(round(nbytes * 8))


def kbps(value: float) -> float:
    """Kilobits/s → bits/s (paper uses Kb/s extensively)."""
    return value * 1e3


def mbps(value: float) -> float:
    """Megabits/s → bits/s."""
    return value * 1e6
