"""Scheduler abstract base class.

A :class:`Scheduler` is a pure queueing discipline: it orders packets but
never consults the link capacity — only :class:`repro.servers.link.Link`
knows the (possibly fluctuating) capacity process. This separation is
what distinguishes the "self-clocked" algorithms (SFQ, SCFQ) from WFQ and
FQS, which must be *told* a capacity to simulate the fluid GPS system
(and behave unfairly when that assumption is wrong — Example 2 of the
paper).

Protocol
--------
``enqueue(packet, now)``
    Called on packet arrival; the scheduler tags the packet and queues it.
``dequeue(now)``
    Called when the server is ready to transmit; returns the next packet
    (now "in service") or ``None`` when empty.
``on_service_complete(packet, now)``
    Called when the transmission of the packet returned by the previous
    ``dequeue`` finishes. Used for virtual-time / busy-period
    bookkeeping.
``peek(now)``
    Optional: the packet the next ``dequeue`` would return, without side
    effects. Required of schedulers used inside a hierarchy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.flow import FlowState
from repro.core.packet import Packet


class SchedulerError(Exception):
    """Raised on protocol violations (unknown flow, bad weight, ...)."""


class Scheduler(ABC):
    """Base class for all queueing disciplines."""

    __slots__ = (
        "flows",
        "auto_register",
        "default_weight",
        "_backlog_packets",
        "_backlog_bits",
        "in_service",
    )

    #: Human-readable algorithm name (e.g. "SFQ"); overridden by subclasses.
    algorithm = "abstract"

    def __init__(self, auto_register: bool = True, default_weight: float = 1.0) -> None:
        self.flows: Dict[Hashable, FlowState] = {}
        self.auto_register = auto_register
        self.default_weight = default_weight
        self._backlog_packets = 0
        self._backlog_bits = 0
        self.in_service: Optional[Packet] = None

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------
    def add_flow(self, flow_id: Hashable, weight: float = 1.0) -> FlowState:
        """Register ``flow_id`` with the given weight (rate, bits/s)."""
        if flow_id in self.flows:
            raise SchedulerError(f"flow {flow_id!r} already registered")
        state = FlowState(flow_id, weight)
        self.flows[flow_id] = state
        self._on_flow_added(state)
        return state

    def remove_flow(self, flow_id: Hashable) -> None:
        """Unregister an idle flow."""
        state = self.flows.get(flow_id)
        if state is None:
            raise SchedulerError(f"flow {flow_id!r} not registered")
        if state.backlogged:
            raise SchedulerError(f"cannot remove backlogged flow {flow_id!r}")
        del self.flows[flow_id]
        self._on_flow_removed(state)

    def set_weight(self, flow_id: Hashable, weight: float) -> None:
        """Change a flow's weight; applies to subsequently arriving packets."""
        if weight <= 0:
            raise SchedulerError(f"weight must be positive, got {weight}")
        self._flow(flow_id).weight = float(weight)

    def _flow(self, flow_id: Hashable) -> FlowState:
        state = self.flows.get(flow_id)
        if state is None:
            if not self.auto_register:
                raise SchedulerError(f"unknown flow {flow_id!r}")
            state = self.add_flow(flow_id, self.default_weight)
        return state

    def _on_flow_added(self, state: FlowState) -> None:
        """Hook for subclasses that keep per-flow side structures."""

    def _on_flow_removed(self, state: FlowState) -> None:
        """Hook for subclasses that keep per-flow side structures."""

    # ------------------------------------------------------------------
    # Queueing protocol
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> None:
        """Accept ``packet`` arriving at time ``now``."""
        state = self._flow(packet.flow)
        packet.arrival = now
        self._backlog_packets += 1
        self._backlog_bits += packet.length
        self._do_enqueue(state, packet, now)

    def dequeue(self, now: float) -> Optional[Packet]:
        """Select the next packet for transmission; ``None`` when empty."""
        packet = self._do_dequeue(now)
        if packet is not None:
            self._backlog_packets -= 1
            self._backlog_bits -= packet.length
            state = self.flows.get(packet.flow)
            if state is not None:
                state.record_service(packet)
            self.in_service = packet
        return packet

    def on_service_complete(self, packet: Packet, now: float) -> None:
        """Notify that the transmission of ``packet`` finished at ``now``."""
        if self.in_service is packet:
            self.in_service = None
        self._do_service_complete(packet, now)

    def peek(self, now: float) -> Optional[Packet]:
        """Packet the next ``dequeue`` would return (no side effects)."""
        raise NotImplementedError(
            f"{self.algorithm} does not support peek(); it cannot be used "
            "as an interior node of a hierarchy"
        )

    def discard_tail(self, flow_id: Hashable) -> Optional[Packet]:
        """Remove and return the *youngest* queued packet of ``flow_id``.

        Used by longest-queue-drop buffer management (Demers, Keshav &
        Shenker 1989 drop the packet nearest the tail of the longest
        queue). Returns ``None`` when the flow has no queued packets.
        Schedulers that cannot support removal raise
        ``NotImplementedError``.
        """
        state = self.flows.get(flow_id)
        if state is None or not state.backlogged:
            return None
        packet = self._do_discard_tail(state)
        if packet is not None:
            self._backlog_packets -= 1
            self._backlog_bits -= packet.length
        return packet

    def _do_discard_tail(self, state: FlowState) -> Optional[Packet]:
        raise NotImplementedError(
            f"{self.algorithm} does not support discard_tail(); use "
            "drop-tail buffering with it"
        )

    def next_eligible_time(self, now: float) -> Optional[float]:
        """For non-work-conserving disciplines: when, after ``now``, a
        backlogged packet becomes servable. Work-conserving schedulers
        return ``None`` (anything backlogged is servable now); the Link
        uses this to schedule a wake-up instead of idling forever."""
        return None

    @abstractmethod
    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        """Tag and queue the packet (subclass responsibility)."""

    @abstractmethod
    def _do_dequeue(self, now: float) -> Optional[Packet]:
        """Pick the next packet per the discipline (subclass)."""

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        """Busy-period bookkeeping hook; default is a no-op."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def backlog_packets(self) -> int:
        return self._backlog_packets

    @property
    def backlog_bits(self) -> int:
        return self._backlog_bits

    @property
    def is_empty(self) -> bool:
        return self._backlog_packets == 0

    def backlogged_flows(self) -> List[Hashable]:
        return [fid for fid, st in self.flows.items() if st.backlogged]

    def flow_backlog(self, flow_id: Hashable) -> int:
        state = self.flows.get(flow_id)
        return state.backlog_packets if state is not None else 0

    def total_weight(self, backlogged_only: bool = False) -> float:
        states: Iterable[FlowState] = self.flows.values()
        if backlogged_only:
            states = (s for s in states if s.backlogged)
        return sum(s.weight for s in states)

    def __len__(self) -> int:
        return self._backlog_packets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(flows={len(self.flows)}, "
            f"backlog={self._backlog_packets}p/{self._backlog_bits}b)"
        )


class TieBreak:
    """Tie-breaking rules for equal tags (Section 2.3).

    The delay guarantee of SFQ is independent of the rule, but a rule may
    e.g. favor low-throughput interactive flows to reduce their average
    delay. Rules map ``(state, packet)`` to a sortable secondary key.
    """

    __slots__ = ()

    @staticmethod
    def fifo(state: FlowState, packet: Packet) -> Tuple[Any, ...]:
        """Ties broken by arrival order (the default)."""
        return ()

    @staticmethod
    def lowest_weight_first(state: FlowState, packet: Packet) -> Tuple[float]:
        """Favor low-throughput (small-weight) flows on ties."""
        return (state.weight,)

    @staticmethod
    def highest_weight_first(state: FlowState, packet: Packet) -> Tuple[float]:
        return (-state.weight,)

    @staticmethod
    def shortest_packet_first(state: FlowState, packet: Packet) -> Tuple[int]:
        return (packet.length,)
