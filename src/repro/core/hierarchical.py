"""Hierarchical link sharing (paper Section 3).

The link-sharing structure is a tree of *classes*. Each class (other
than leaves) is treated as a virtual server: its scheduler — SFQ by
default, but any peekable :class:`~repro.core.base.Scheduler` — fairly
distributes the bandwidth the class receives among its subclasses. The
paper's key observation (Example 3) is that the virtual server seen by a
subclass has *fluctuating* capacity (siblings come and go), so the
per-node scheduler must be fair over variable-rate servers — which is
why SFQ is the only algorithm of the table that can implement this
recursion with guarantees: the virtual server corresponding to a class
of an FC link is itself FC (eq. 65), so Theorems 2–5 recurse down the
tree.

Implementation model
--------------------
Each interior node schedules its children's *offered packets*: a child
that has backlog keeps exactly one packet "offered" to its parent,
tagged by the parent's scheduler with the child's weight. On dequeue the
parent consumes the offer and the child immediately re-offers its next
packet (pulled recursively through its own scheduler). Leaves run a
scheduler over the actual flows attached to them. This is the standard
one-packet-lookahead realization of "recursively schedule the virtual
servers" and keeps every per-node discipline exactly the paper's SFQ.

Mixing disciplines is supported — e.g. a Delay EDD leaf under an SFQ
root implements Section 3's "separation of delay and throughput
allocation".
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from repro.core.base import Scheduler, SchedulerError
from repro.core.flow import FlowState
from repro.core.packet import Packet

SchedulerFactory = Callable[[], Scheduler]


def _default_node_scheduler() -> Scheduler:
    """Per-node default: SFQ, built through the construction registry.

    Imported lazily — hierarchical is imported by ``repro.core`` before
    the registry module finishes populating, so a module-level import
    would cycle.
    """
    from repro.core.registry import make_scheduler

    return make_scheduler("SFQ", auto_register=False)


class SchedClass:
    """One node of the link-sharing tree."""

    __slots__ = (
        "name",
        "weight",
        "scheduler",
        "parent",
        "children",
        "offered",
        "offer_wrapper",
        "bits_served",
        "packets_served",
    )

    def __init__(
        self,
        name: str,
        weight: float,
        scheduler: Optional[Scheduler] = None,
        parent: Optional["SchedClass"] = None,
    ) -> None:
        if weight <= 0:
            raise SchedulerError(f"class weight must be positive, got {weight}")
        self.name = name
        self.weight = float(weight)
        self.scheduler = (
            scheduler if scheduler is not None else _default_node_scheduler()
        )
        self.parent = parent
        self.children: Dict[str, "SchedClass"] = {}
        #: The packet this class has offered to its parent (at most one).
        self.offered: Optional[Packet] = None
        #: Wrapper packet representing the offer in the parent's scheduler.
        self.offer_wrapper: Optional[Packet] = None
        self.bits_served = 0
        self.packets_served = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def backlog_packets(self) -> int:
        """Packets queued anywhere in this class's subtree (the offered
        packet of each child is represented by its wrapper in this
        node's scheduler, so it is counted exactly once)."""
        if self.is_leaf:
            return self.scheduler.backlog_packets
        return sum(
            child.backlog_packets + (1 if child.offered is not None else 0)
            for child in self.children.values()
        )

    def pull(self, now: float) -> Optional[Packet]:
        """Produce this class's next packet per its own discipline."""
        if self.is_leaf:
            return self.scheduler.dequeue(now)
        wrapper = self.scheduler.dequeue(now)
        if wrapper is None:
            return None
        child = self.children[wrapper.flow]
        packet = child.offered
        assert packet is not None, "a scheduled child must hold an offer"
        child.offered = None
        child.offer_wrapper = None
        # Hot path: reach the meta dict directly (the ``meta`` property
        # plus setdefault costs two extra calls per hop per packet).
        meta = packet._meta_dict
        if meta is None:
            meta = packet._meta_dict = {}
        path = meta.get("hier_path")
        if path is None:
            path = meta["hier_path"] = []
        path.append((self, wrapper))
        self._refill(child, now)
        return packet

    def _refill(self, child: "SchedClass", now: float) -> None:
        """Re-offer the child's next packet, if it has one."""
        nxt = child.pull(now)
        if nxt is None:
            return
        child.offered = nxt
        wrapper = Packet(flow=child.name, length=nxt.length, arrival=now)
        child.offer_wrapper = wrapper
        self.scheduler.enqueue(wrapper, now)

    def path(self) -> str:
        parts: List[str] = []
        node: Optional[SchedClass] = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else f"interior[{len(self.children)}]"
        return f"SchedClass({self.path()}, w={self.weight:.9g}, {kind})"


class HierarchicalScheduler(Scheduler):
    """Link-sharing scheduler over a class tree.

    Usage::

        hs = HierarchicalScheduler()
        hs.add_class("root", "A", weight=1.0)
        hs.add_class("root", "B", weight=1.0)
        hs.add_class("A", "C", weight=1.0)
        hs.add_class("A", "D", weight=1.0)
        hs.attach_flow("f1", "C", weight=1.0)
        hs.attach_flow("f2", "D", weight=1.0)
    """

    __slots__ = ("_node_factory", "root", "_classes", "_flow_to_leaf")

    algorithm = "Hierarchical"

    def __init__(
        self,
        root_scheduler: Optional[Scheduler] = None,
        default_node_scheduler: SchedulerFactory = _default_node_scheduler,
    ) -> None:
        super().__init__(auto_register=False)
        self._node_factory = default_node_scheduler
        self.root = SchedClass("root", 1.0, scheduler=root_scheduler or default_node_scheduler())
        self._classes: Dict[str, SchedClass] = {"root": self.root}
        self._flow_to_leaf: Dict[Hashable, SchedClass] = {}

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def add_class(
        self,
        parent: str,
        name: str,
        weight: float,
        scheduler: Optional[Scheduler] = None,
    ) -> SchedClass:
        """Add class ``name`` under ``parent`` with the given weight."""
        if name in self._classes:
            raise SchedulerError(f"class {name!r} already exists")
        parent_node = self._classes.get(parent)
        if parent_node is None:
            raise SchedulerError(f"unknown parent class {parent!r}")
        if any(leaf is parent_node for leaf in self._flow_to_leaf.values()):
            raise SchedulerError(f"class {parent!r} already has flows attached")
        node = SchedClass(
            name,
            weight,
            scheduler=scheduler or self._node_factory(),
            parent=parent_node,
        )
        parent_node.children[name] = node
        # Register the child as a flow of the parent's scheduler so its
        # offers get tagged with the child's weight.
        parent_node.scheduler.add_flow(name, weight)
        self._classes[name] = node
        return node

    def attach_flow(self, flow_id: Hashable, class_name: str, weight: float = 1.0) -> None:
        """Bind ``flow_id`` to leaf class ``class_name``."""
        node = self._classes.get(class_name)
        if node is None:
            raise SchedulerError(f"unknown class {class_name!r}")
        if node.children:
            raise SchedulerError(f"class {class_name!r} is interior; attach to a leaf")
        if flow_id in self._flow_to_leaf:
            raise SchedulerError(f"flow {flow_id!r} already attached")
        if flow_id not in node.scheduler.flows:
            # Flows needing richer registration (e.g. DelayEDD deadlines)
            # may be pre-registered on the leaf scheduler directly.
            node.scheduler.add_flow(flow_id, weight)
        self._flow_to_leaf[flow_id] = node

    def detach_flow(self, flow_id: Hashable) -> None:
        """Unbind an idle ``flow_id`` from its leaf class.

        The inverse of :meth:`attach_flow`: the flow's state is removed
        from the leaf scheduler (on the array backend its slab slot
        returns to the free list), so long-running churn — users joining
        and leaving the link-sharing tree — keeps per-leaf state bounded
        by the peak concurrent population. The flow must be fully
        drained: no queued packets and no packet offered upward.
        """
        leaf = self._flow_to_leaf.get(flow_id)
        if leaf is None:
            raise SchedulerError(f"flow {flow_id!r} is not attached to any class")
        if self.flow_backlog(flow_id) > 0:
            raise SchedulerError(f"cannot detach backlogged flow {flow_id!r}")
        leaf.scheduler.remove_flow(flow_id)
        del self._flow_to_leaf[flow_id]

    def class_node(self, name: str) -> SchedClass:
        node = self._classes.get(name)
        if node is None:
            raise SchedulerError(f"unknown class {name!r}")
        return node

    def set_class_weight(self, name: str, weight: float) -> None:
        """Re-weight a class at runtime (link-sharing management).

        Applies from the class's next offered packet onward — the same
        take-effect-at-the-next-packet semantics as
        :meth:`Scheduler.set_weight` for flows.
        """
        if weight <= 0:
            raise SchedulerError(f"weight must be positive, got {weight}")
        node = self.class_node(name)
        if node.parent is None:
            raise SchedulerError("the root class has no weight to set")
        node.weight = float(weight)
        node.parent.scheduler.set_weight(name, weight)

    # ------------------------------------------------------------------
    # Scheduler protocol (overridden wholesale: flows live in the leaves)
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> None:
        leaf = self._flow_to_leaf.get(packet.flow)
        if leaf is None:
            raise SchedulerError(
                f"flow {packet.flow!r} is not attached to any class; "
                "call attach_flow first"
            )
        packet.arrival = now
        self._backlog_packets += 1
        self._backlog_bits += packet.length
        leaf.scheduler.enqueue(packet, now)
        self._offer_upward(leaf, now)

    def _offer_upward(self, node: SchedClass, now: float) -> None:
        """Ensure every ancestor holds an offer after a new arrival."""
        while node.parent is not None:
            if node.offered is not None:
                break  # parent already sees this subtree; ordering is set
            parent = node.parent
            parent._refill(node, now)
            if node.offered is None:
                break
            node = parent

    def dequeue(self, now: float) -> Optional[Packet]:
        packet = self.root.pull(now)
        if packet is None:
            return None
        self._backlog_packets -= 1
        self._backlog_bits -= packet.length
        self.in_service = packet
        # Account the service at every class on the packet's path.
        leaf = self._flow_to_leaf[packet.flow]
        node: Optional[SchedClass] = leaf
        while node is not None:
            node.bits_served += packet.length
            node.packets_served += 1
            node = node.parent
        return packet

    def on_service_complete(self, packet: Packet, now: float) -> None:
        if self.in_service is packet:
            self.in_service = None
        meta = packet._meta_dict if packet._meta_dict is not None else {}
        for node, wrapper in meta.pop("hier_path", []):
            node.scheduler.on_service_complete(wrapper, now)
        leaf = self._flow_to_leaf.get(packet.flow)
        if leaf is not None:
            leaf.scheduler.on_service_complete(packet, now)

    def peek(self, now: float) -> Optional[Packet]:
        wrapper = self.root.scheduler.peek(now)
        if wrapper is None:
            return None
        node = self.root.children[wrapper.flow]
        if node.offered is None:  # pragma: no cover - defensive
            raise SchedulerError("scheduled child lost its offer")
        return node.offered

    # The abstract hooks are bypassed by the overridden public methods.
    def _do_enqueue(
        self, state: FlowState, packet: Packet, now: float
    ) -> None:  # pragma: no cover
        raise NotImplementedError

    def _do_dequeue(self, now: float) -> Optional[Packet]:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def flow_backlog(self, flow_id: Hashable) -> int:
        leaf = self._flow_to_leaf.get(flow_id)
        if leaf is None:
            return 0
        backlog = leaf.scheduler.flow_backlog(flow_id)
        if leaf.offered is not None and leaf.offered.flow == flow_id:
            backlog += 1
        return backlog

    def class_bits_served(self) -> Dict[str, int]:
        return {name: node.bits_served for name, node in self._classes.items()}

    def describe(self) -> str:
        """ASCII rendering of the class tree (for docs/examples)."""
        lines: List[str] = []

        def walk(node: SchedClass, depth: int) -> None:
            flows = [
                f for f, leaf in self._flow_to_leaf.items() if leaf is node
            ]
            suffix = f" flows={flows}" if flows else ""
            lines.append(
                "  " * depth
                + f"{node.name} (w={node.weight:g}, "
                + f"{node.scheduler.algorithm}){suffix}"
            )
            for child in node.children.values():
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)
