"""FIFO — first-come first-served baseline.

Not part of the paper's comparison table, but the natural null
hypothesis for the fairness/delay experiments (it has no isolation at
all) and a useful leaf discipline inside hierarchies.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.core.base import Scheduler
from repro.core.flow import FlowState
from repro.core.packet import Packet


class FIFO(Scheduler):
    """First-in first-out across all flows."""

    __slots__ = ("_queue",)

    algorithm = "FIFO"

    def __init__(self, auto_register: bool = True, default_weight: float = 1.0) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._queue: Deque[Packet] = deque()

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        state.push(packet)
        self._queue.append(packet)

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def _do_discard_tail(self, state: FlowState) -> Optional[Packet]:
        packet = state.queue.pop()
        self._queue.remove(packet)  # O(n); FIFO is a baseline, not a fast path
        return packet
