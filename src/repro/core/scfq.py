"""Self-Clocked Fair Queuing (SCFQ) — Golestani 1994; paper Section 1.2.

SCFQ computes start/finish tags exactly like SFQ but (a) schedules
packets in increasing order of **finish** tags, and (b) defines the
system virtual time ``v(t)`` as the *finish* tag of the packet in
service.

Its fairness measure equals SFQ's,
:math:`l_f^{max}/r_f + l_m^{max}/r_m`, but its maximum delay is larger by
:math:`l_f^j/r_f^j - l_f^j/C` (paper eq. 56–57) — the property the
delay-bound benchmarks quantify (24.4 ms for a 64 Kb/s flow with 200-byte
packets on a 100 Mb/s link).

The discipline itself lives in :class:`repro.core.pifo.ScfqRank`; this
class is a deprecation shim. Construct through
``repro.make_scheduler("SCFQ", ...)``.
"""

from __future__ import annotations

from repro.core.base import TieBreak
from repro.core.headheap import TieBreakRule
from repro.core.pifo import PifoScheduler, ScfqRank, warn_direct_construction

__all__ = ["SCFQ"]


class SCFQ(PifoScheduler):
    """Self-Clocked Fair Queuing (deprecation shim over the PIFO engine)."""

    __slots__ = ()

    algorithm = "SCFQ"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(SCFQ, type(self))
        super().__init__(
            ScfqRank(),
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
