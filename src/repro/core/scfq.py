"""Self-Clocked Fair Queuing (SCFQ) — Golestani 1994; paper Section 1.2.

SCFQ computes start/finish tags exactly like SFQ but (a) schedules
packets in increasing order of **finish** tags, and (b) defines the
system virtual time ``v(t)`` as the *finish* tag of the packet in
service.

Its fairness measure equals SFQ's,
:math:`l_f^{max}/r_f + l_m^{max}/r_m`, but its maximum delay is larger by
:math:`l_f^j/r_f^j - l_f^j/C` (paper eq. 56–57) — the property the
delay-bound benchmarks quantify (24.4 ms for a 64 Kb/s flow with 200-byte
packets on a 100 Mb/s link).

Like every tag scheduler here, SCFQ runs on the flow-head heap of
:class:`repro.core.headheap.HeadHeapScheduler` (finish tags are monotone
within a flow), so per-packet cost is logarithmic in backlogged flows.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import TieBreak
from repro.core.flow import FlowState
from repro.core.headheap import HeadHeapScheduler, TieBreakRule
from repro.core.packet import Packet
from repro.core.tagmath import start_finish


class SCFQ(HeadHeapScheduler):
    """Self-Clocked Fair Queuing."""

    __slots__ = ("v", "_max_served_finish")

    algorithm = "SCFQ"

    def __init__(
        self,
        tie_break: TieBreakRule = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(
            tie_break=tie_break,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
        self.v = 0.0
        self._max_served_finish = 0.0

    def _tag_packet(self, state: FlowState, packet: Packet, now: float) -> float:
        # The exact-float tag recursion is shared with the slab backend
        # via repro.core.tagmath (see its module docstring).
        start, finish = start_finish(
            self.v, state.last_finish, packet.length, state._weight, packet.rate
        )
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        return finish

    def _head_key(self, packet: Packet) -> float:
        return packet.finish_tag  # type: ignore[return-value]  # stamped on enqueue

    def _on_dequeued(self, state: FlowState, packet: Packet) -> None:
        # Self-clocking: v(t) approximates GPS round number with the
        # finish tag of the packet in service.
        finish: float = packet.finish_tag  # type: ignore[assignment]  # stamped on enqueue
        self.v = finish
        if finish > self._max_served_finish:
            self._max_served_finish = finish

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        if self._backlog_packets == 0:
            self.v = max(self.v, self._max_served_finish)

    def _do_discard_tail(self, state: FlowState) -> Optional[Packet]:
        packet = self._pop_tail(state)
        tail = state.queue[-1] if state.queue else None
        state.last_finish = (  # type: ignore[assignment]  # tags stamped on enqueue
            tail.finish_tag if tail is not None else packet.start_tag
        )
        return packet

    @property
    def virtual_time(self) -> float:
        """Current system virtual time ``v(t)``."""
        return self.v
