"""Self-Clocked Fair Queuing (SCFQ) — Golestani 1994; paper Section 1.2.

SCFQ computes start/finish tags exactly like SFQ but (a) schedules
packets in increasing order of **finish** tags, and (b) defines the
system virtual time ``v(t)`` as the *finish* tag of the packet in
service.

Its fairness measure equals SFQ's,
:math:`l_f^{max}/r_f + l_m^{max}/r_m`, but its maximum delay is larger by
:math:`l_f^j/r_f^j - l_f^j/C` (paper eq. 56–57) — the property the
delay-bound benchmarks quantify (24.4 ms for a 64 Kb/s flow with 200-byte
packets on a 100 Mb/s link).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.core.base import Scheduler, TieBreak
from repro.core.flow import FlowState
from repro.core.packet import Packet


class SCFQ(Scheduler):
    """Self-Clocked Fair Queuing."""

    algorithm = "SCFQ"

    def __init__(
        self,
        tie_break: Callable[[FlowState, Packet], Tuple] = TieBreak.fifo,
        auto_register: bool = True,
        default_weight: float = 1.0,
    ) -> None:
        super().__init__(auto_register=auto_register, default_weight=default_weight)
        self._tie_break = tie_break
        self._heap: List[Tuple] = []
        self.v = 0.0
        self._max_served_finish = 0.0
        self._discarded: set = set()

    def _do_enqueue(self, state: FlowState, packet: Packet, now: float) -> None:
        rate = state.packet_rate(packet)
        start = max(self.v, state.last_finish)
        finish = start + packet.length / rate
        packet.start_tag = start
        packet.finish_tag = finish
        state.last_finish = finish
        state.push(packet)
        key = self._tie_break(state, packet)
        heapq.heappush(self._heap, (finish, key, packet.uid, packet))

    def _do_dequeue(self, now: float) -> Optional[Packet]:
        while self._heap and self._heap[0][2] in self._discarded:
            self._discarded.discard(heapq.heappop(self._heap)[2])
        if not self._heap:
            return None
        finish, _key, _uid, packet = heapq.heappop(self._heap)
        state = self.flows[packet.flow]
        popped = state.pop()
        assert popped is packet, "per-flow FIFO must match global tag order"
        # Self-clocking: v(t) approximates GPS round number with the
        # finish tag of the packet in service.
        self.v = finish
        if finish > self._max_served_finish:
            self._max_served_finish = finish
        return packet

    def _do_service_complete(self, packet: Packet, now: float) -> None:
        if self._backlog_packets == 0:
            self.v = max(self.v, self._max_served_finish)

    def _do_discard_tail(self, state: FlowState) -> Optional[Packet]:
        packet = state.queue.pop()
        self._discarded.add(packet.uid)
        tail = state.queue[-1] if state.queue else None
        state.last_finish = tail.finish_tag if tail is not None else packet.start_tag
        return packet

    def peek(self, now: float) -> Optional[Packet]:
        while self._heap and self._heap[0][2] in self._discarded:
            self._discarded.discard(heapq.heappop(self._heap)[2])
        return self._heap[0][3] if self._heap else None

    @property
    def virtual_time(self) -> float:
        return self.v
