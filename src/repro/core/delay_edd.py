"""Delay Earliest-Due-Date — Section 3, Theorem 7.

Delay EDD assigns packet :math:`p_f^j` the deadline

.. math:: D(p_f^j) = EAT(p_f^j, r_f) + d_f

(eq. 66) and transmits packets in increasing deadline order. The paper
uses it inside an SFQ hierarchy to *separate delay from throughput
allocation*: Theorem 7 shows that on a Fluctuation Constrained server
satisfying the schedulability condition (eq. 67), every packet departs by
:math:`D(p) + l_{max}/C + \\delta(C)/C` — and the virtual server an SFQ
hierarchy presents to a class *is* FC (eq. 65), so the bound survives
hierarchical composition.

The schedulability test (eq. 67) lives in
:func:`repro.analysis.admission.delay_edd_schedulable`.

Deadlines are monotone within a flow (EAT recursion plus a constant
offset), so Delay EDD runs on the flow-head heap of
:class:`repro.core.headheap.HeadHeapScheduler`.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.core.base import SchedulerError, TieBreak
from repro.core.flow import FlowState
from repro.core.headheap import HeadHeapScheduler
from repro.core.packet import Packet


class DelayEDD(HeadHeapScheduler):
    """Delay Earliest-Due-Date scheduler.

    Flows must be registered with :meth:`add_flow_with_deadline` (each
    flow has a deadline parameter :math:`d_f` in addition to its rate).
    """

    __slots__ = ("deadlines",)

    algorithm = "DelayEDD"

    def __init__(
        self,
        auto_register: bool = False,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        super().__init__(
            tie_break=TieBreak.fifo,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
        self.deadlines: Dict[Hashable, float] = {}

    def add_flow_with_deadline(
        self, flow_id: Hashable, rate: float, deadline: float
    ) -> FlowState:
        """Register a flow with rate ``rate`` (bits/s) and per-packet
        deadline offset ``deadline`` (seconds)."""
        if deadline <= 0:
            raise SchedulerError(f"deadline must be positive, got {deadline}")
        state = self.add_flow(flow_id, rate)
        self.deadlines[flow_id] = float(deadline)
        return state

    def _tag_packet(self, state: FlowState, packet: Packet, now: float) -> float:
        deadline_offset = self.deadlines.get(packet.flow)
        if deadline_offset is None:
            raise SchedulerError(
                f"flow {packet.flow!r} has no deadline; use add_flow_with_deadline"
            )
        rate = state.packet_rate(packet)
        eat = state.eat.on_arrival(now, packet.length, rate)
        deadline = eat + deadline_offset
        packet.deadline = deadline
        packet.start_tag = eat
        return deadline

    def _head_key(self, packet: Packet) -> float:
        return packet.deadline  # type: ignore[return-value]  # stamped on enqueue
