"""Delay Earliest-Due-Date — Section 3, Theorem 7.

Delay EDD assigns packet :math:`p_f^j` the deadline

.. math:: D(p_f^j) = EAT(p_f^j, r_f) + d_f

(eq. 66) and transmits packets in increasing deadline order. The paper
uses it inside an SFQ hierarchy to *separate delay from throughput
allocation*: Theorem 7 shows that on a Fluctuation Constrained server
satisfying the schedulability condition (eq. 67), every packet departs by
:math:`D(p) + l_{max}/C + \\delta(C)/C` — and the virtual server an SFQ
hierarchy presents to a class *is* FC (eq. 65), so the bound survives
hierarchical composition.

The schedulability test (eq. 67) lives in
:func:`repro.analysis.admission.delay_edd_schedulable`.

The discipline itself lives in :class:`repro.core.pifo.DelayEddRank`;
this class is a deprecation shim (``add_flow_with_deadline`` and
``deadlines`` are forwarded from the rank). Construct through
``repro.make_scheduler("DelayEDD", ...)``.
"""

from __future__ import annotations

from repro.core.base import TieBreak
from repro.core.pifo import DelayEddRank, PifoScheduler, warn_direct_construction

__all__ = ["DelayEDD"]


class DelayEDD(PifoScheduler):
    """Delay Earliest-Due-Date (deprecation shim over the PIFO engine).

    Flows must be registered with ``add_flow_with_deadline`` (each flow
    has a deadline parameter :math:`d_f` in addition to its rate).
    """

    __slots__ = ()

    algorithm = "DelayEDD"

    def __init__(
        self,
        auto_register: bool = False,
        default_weight: float = 1.0,
        debug_checks: bool = False,
    ) -> None:
        warn_direct_construction(DelayEDD, type(self))
        super().__init__(
            DelayEddRank(),
            tie_break=TieBreak.fifo,
            auto_register=auto_register,
            default_weight=default_weight,
            debug_checks=debug_checks,
        )
