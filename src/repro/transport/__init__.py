"""Transport layer: simplified TCP Reno and packet sinks."""

from repro.transport.sink import PacketSink
from repro.transport.tcp import TcpReceiver, TcpSender

__all__ = ["TcpSender", "TcpReceiver", "PacketSink"]
