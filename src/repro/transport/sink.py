"""Packet sinks: terminal consumers with per-flow receive logs."""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.packet import Packet


class PacketSink:
    """Records every packet delivered to it; optional per-flow callbacks.

    Figure 1(b) of the paper plots "sequence number of packets of
    sources 2 and 3 received by the destination" — exactly the
    ``(time, seqno)`` series this sink accumulates.
    """

    def __init__(self, name: str = "sink") -> None:
        self.name = name
        self.received: Dict[Hashable, List[Tuple[float, int]]] = {}
        self.bits: Dict[Hashable, int] = {}
        self.end_to_end_delays: Dict[Hashable, List[float]] = {}
        self._callbacks: List[Callable[[Packet, float], None]] = []

    def subscribe(self, callback: Callable[[Packet, float], None]) -> None:
        self._callbacks.append(callback)

    def on_packet(self, packet: Packet, now: float) -> None:
        """Wire into a link's departure hooks."""
        self.received.setdefault(packet.flow, []).append((now, packet.seqno))
        self.bits[packet.flow] = self.bits.get(packet.flow, 0) + packet.length
        self.end_to_end_delays.setdefault(packet.flow, []).append(now - packet.created)
        for callback in self._callbacks:
            callback(packet, now)

    # ------------------------------------------------------------------
    def count(self, flow: Hashable, t1: float = 0.0, t2: float = float("inf")) -> int:
        """Packets of ``flow`` received in ``[t1, t2]``."""
        return sum(1 for t, _s in self.received.get(flow, []) if t1 <= t <= t2)

    def series(self, flow: Hashable) -> List[Tuple[float, int]]:
        """(time, seqno) receive series for ``flow``."""
        return list(self.received.get(flow, []))

    def throughput(self, flow: Hashable, t1: float, t2: float) -> float:
        """Average received bit rate of ``flow`` over [t1, t2]."""
        if t2 <= t1:
            return 0.0
        packets = self.received.get(flow, [])
        if not packets:
            return 0.0
        in_window = sum(1 for t, _s in packets if t1 <= t <= t2)
        per_packet = self.bits.get(flow, 0) / len(packets)
        return in_window * per_packet / (t2 - t1)
