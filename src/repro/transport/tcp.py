"""Simplified TCP Reno for the Figure 1 experiment.

The paper's Figure 1(b) compares WFQ and SFQ with "TCP Reno sources"
from the REAL simulator. What the experiment needs from TCP is the
closed feedback loop: window growth gated by returning ACKs, multiplicative
decrease on loss, slow start after timeouts — because that loop is what
starves the late-starting flow when WFQ mis-accounts the residual
bandwidth. This module implements a compact Reno:

* slow start and congestion avoidance (cwnd in segments);
* duplicate-ACK counting, fast retransmit + fast recovery;
* RTT estimation (SRTT/RTTVAR, RFC 6298 style) with exponential
  backoff on timeout;
* a receiver producing cumulative ACKs with out-of-order buffering.

Segments travel through the simulated network (any composition of
switches/links); ACKs return over a fixed-delay path (the reverse
direction is uncongested in the paper's topology).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.packet import Packet
from repro.simulation.engine import Simulator
from repro.simulation.events import Event

Ingress = Callable[[Packet], object]


class TcpReceiver:
    """Cumulative-ACK receiver with out-of-order buffering.

    ``delayed_ack`` enables RFC 1122-style delayed ACKs: in-order
    segments are acknowledged every ``ack_every`` segments or after
    ``delayed_ack_timeout``, whichever first; anything out of order is
    acknowledged immediately (dup-ACKs must flow for fast retransmit).
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ack_path_delay: float = 0.0,
        delayed_ack: bool = False,
        ack_every: int = 2,
        delayed_ack_timeout: float = 0.2,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.ack_path_delay = float(ack_path_delay)
        self.delayed_ack = delayed_ack
        self.ack_every = int(ack_every)
        self.delayed_ack_timeout = float(delayed_ack_timeout)
        self.sender: Optional["TcpSender"] = None
        self._next_expected = 0
        self._out_of_order: Set[int] = set()
        self._held_acks = 0
        self._delack_event: Optional[Event] = None
        self.received: List[Tuple[float, int]] = []  # (time, seqno)
        self.bytes_received = 0
        self.acks_sent = 0

    def on_packet(self, packet: Packet, now: float) -> None:
        """Deliver a data segment (wire into the last link's hooks)."""
        if packet.flow != self.flow_id:
            return
        self.received.append((now, packet.seqno))
        self.bytes_received += packet.length // 8
        in_order = packet.seqno == self._next_expected
        if in_order:
            self._next_expected += 1
            while self._next_expected in self._out_of_order:
                self._out_of_order.discard(self._next_expected)
                self._next_expected += 1
        elif packet.seqno > self._next_expected:
            self._out_of_order.add(packet.seqno)
        # else: duplicate of an already-delivered segment; ACK anyway.
        if not self.delayed_ack or not in_order or self._out_of_order:
            self._send_ack()
            return
        self._held_acks += 1
        if self._held_acks >= self.ack_every:
            self._send_ack()
        elif self._delack_event is None or not self._delack_event.pending:
            self._delack_event = self.sim.after(
                self.delayed_ack_timeout, self._delack_fire
            )

    def _delack_fire(self) -> None:
        if self._held_acks > 0:
            self._send_ack()

    def _send_ack(self) -> None:
        self._held_acks = 0
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        if self.sender is None:
            return
        ackno = self._next_expected  # cumulative: next byte expected
        self.acks_sent += 1
        self.sim.call_after(self.ack_path_delay, self.sender.on_ack, ackno)

    @property
    def in_order_count(self) -> int:
        return self._next_expected


class TcpSender:
    """TCP Reno sender emitting fixed-size segments."""

    #: Initial slow-start threshold (segments), effectively "infinite".
    INITIAL_SSTHRESH = 1 << 20

    def __init__(
        self,
        sim: Simulator,
        flow_id: Hashable,
        ingress: Ingress,
        receiver: TcpReceiver,
        segment_bytes: int = 200,
        start_time: float = 0.0,
        max_segments: Optional[int] = None,
        initial_cwnd: float = 1.0,
        rto_min: float = 0.2,
        rto_max: float = 60.0,
        receiver_window: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.ingress = ingress
        self.receiver = receiver
        receiver.sender = self
        self.segment_bits = int(segment_bytes) * 8
        self.start_time = float(start_time)
        self.max_segments = max_segments

        self.cwnd = float(initial_cwnd)  # segments
        #: Advertised receive window in segments (None = unlimited).
        self.receiver_window = receiver_window
        self.ssthresh = float(self.INITIAL_SSTHRESH)
        self.next_seq = 0  # next new segment to send
        self.highest_acked = 0  # cumulative: all < this are delivered
        self.dup_acks = 0
        self.in_fast_recovery = False
        self._recover_point = 0

        # RTT estimation (RFC 6298 flavor).
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = 1.0
        self.rto_min = float(rto_min)
        self.rto_max = float(rto_max)
        self._backoff = 1
        self._rto_event: Optional[Event] = None
        self._send_times: Dict[int, float] = {}
        self._retransmitted: Set[int] = set()

        self.segments_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.at(self.start_time, self._try_send)

    @property
    def outstanding(self) -> int:
        return self.next_seq - self.highest_acked

    def _done_sending(self) -> bool:
        return self.max_segments is not None and self.next_seq >= self.max_segments

    @property
    def effective_window(self) -> int:
        """min(cwnd, advertised receive window), in whole segments."""
        window = int(self.cwnd)
        if self.receiver_window is not None:
            window = min(window, self.receiver_window)
        return window

    def _try_send(self) -> None:
        while self.outstanding < self.effective_window and not self._done_sending():
            self._transmit(self.next_seq)
            self.next_seq += 1
        if self.outstanding > 0 and self._rto_event is None:
            self._arm_rto()

    def _transmit(self, seqno: int, is_retransmit: bool = False) -> None:
        packet = Packet(self.flow_id, self.segment_bits, self.sim.now, seqno=seqno)
        if is_retransmit:
            self.retransmissions += 1
            self._retransmitted.add(seqno)
            self._send_times.pop(seqno, None)  # Karn: don't sample RTT
        else:
            self._send_times[seqno] = self.sim.now
        self.segments_sent += 1
        self.ingress(packet)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, ackno: int) -> None:
        now = self.sim.now
        if ackno > self.highest_acked:
            self._on_new_ack(ackno, now)
        elif ackno == self.highest_acked and self.outstanding > 0:
            self._on_dup_ack(ackno)
        self._try_send()

    def _on_new_ack(self, ackno: int, now: float) -> None:
        newly_acked = ackno - self.highest_acked
        # RTT sample from the highest newly acked, Karn-filtered.
        sample_seq = ackno - 1
        sent_at = self._send_times.pop(sample_seq, None)
        if sent_at is not None and sample_seq not in self._retransmitted:
            self._update_rtt(now - sent_at)
        for seq in range(self.highest_acked, ackno):
            self._send_times.pop(seq, None)
            self._retransmitted.discard(seq)
        self.highest_acked = ackno
        self.dup_acks = 0
        self._backoff = 1

        if self.in_fast_recovery:
            if ackno >= self._recover_point:
                # Full ACK: leave recovery, deflate to ssthresh.
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
            else:
                # Partial ACK (NewReno-lite): retransmit the next hole.
                self._transmit(ackno, is_retransmit=True)
                self.cwnd = max(1.0, self.cwnd - newly_acked + 1)
        elif self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance

        if self.outstanding > 0:
            self._arm_rto(restart=True)
        else:
            self._cancel_rto()

    def _on_dup_ack(self, ackno: int) -> None:
        self.dup_acks += 1
        if self.in_fast_recovery:
            self.cwnd += 1.0  # inflate per extra dupack
        elif self.dup_acks == 3:
            # Fast retransmit + fast recovery.
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self.cwnd = self.ssthresh + 3.0
            self.in_fast_recovery = True
            self._recover_point = self.next_seq
            self._transmit(ackno, is_retransmit=True)
            self._arm_rto(restart=True)

    # ------------------------------------------------------------------
    # RTO machinery
    # ------------------------------------------------------------------
    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(
            self.rto_max, max(self.rto_min, self.srtt + 4 * self.rttvar)
        )

    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_event is not None:
            if not restart:
                return
            self._rto_event.cancel()
        self._rto_event = self.sim.after(self.rto * self._backoff, self._on_timeout)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_timeout(self) -> None:
        self._rto_event = None
        if self.outstanding == 0:
            return
        self.timeouts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.in_fast_recovery = False
        self._backoff = min(self._backoff * 2, 64)
        self._transmit(self.highest_acked, is_retransmit=True)
        self._arm_rto()
