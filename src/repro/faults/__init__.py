"""Fault injection and runtime invariant monitoring.

The paper proves SFQ's fairness and delay bounds hold on servers whose
rate *fluctuates*; this package asks what happens when the network
actually *breaks* — link outages and flaps, flow churn, lost and
misrouted and reordered packets — and watches the guarantees online
while it happens.

Two halves:

* :mod:`repro.faults.injectors` — :class:`LinkOutage`,
  :class:`FlowChurn`, :class:`PacketFaults`, :class:`ServerStall`
  (short scheduler freezes) and :class:`WeightReconfig` (mid-run flow
  re-weighting); deterministic or seeded via
  :class:`repro.simulation.random.RandomStreams`, so every faulted
  run is a pure function of its seed. Pause-driving injectors compose
  through the link's counted pause depth, so overlapping fault windows
  never double-pause or lose the in-flight packet.
* :mod:`repro.faults.monitors` — :class:`FairnessMonitor` (Theorem 1,
  online), :class:`VirtualTimeMonitor`, :class:`ConservationAuditor`;
  each raises or records structured :class:`InvariantViolation`\\ s.

See ``repro/experiments/fault_tolerance.py`` (CLI: ``python -m repro
run faults``) for the headline result: SFQ re-converges to fair shares
after an outage while WFQ starves the late joiner.
"""

from repro.faults.injectors import (
    FlowChurn,
    LinkOutage,
    PacketFaults,
    ServerStall,
    WeightReconfig,
)
from repro.faults.monitors import (
    ConservationAuditor,
    FairnessMonitor,
    InvariantViolation,
    Monitor,
    MonitorSuite,
    VirtualTimeMonitor,
    install_monitors,
)

__all__ = [
    "LinkOutage",
    "FlowChurn",
    "PacketFaults",
    "ServerStall",
    "WeightReconfig",
    "InvariantViolation",
    "Monitor",
    "FairnessMonitor",
    "VirtualTimeMonitor",
    "ConservationAuditor",
    "MonitorSuite",
    "install_monitors",
]
